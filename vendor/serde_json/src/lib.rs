#![warn(missing_docs)]

//! Offline API shim for the `serde_json` crate.
//!
//! Renders and parses JSON text against the `serde` shim's [`Value`]
//! tree: [`to_string`] / [`to_vec`] serialize, [`from_str`] /
//! [`from_slice`] parse. Numbers round-trip exactly (floats are printed
//! with Rust's shortest-round-trip formatting); strings are escaped per
//! RFC 8259. See `vendor/README.md` for the shim policy.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// A JSON serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e)
    }
}

/// The result alias used by every function in this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` as JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Parses a value of type `T` from JSON bytes (must be UTF-8).
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest representation that parses back
                // to the same f64, and always keeps a `.` or exponent.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // Fast path: consume a run of plain ASCII bytes at once
                    // (re-validating the whole tail per char is quadratic).
                    let start = self.pos;
                    while matches!(self.bytes.get(self.pos), Some(&b) if b < 0x80 && b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("ASCII run is valid UTF-8"),
                    );
                }
                Some(_) => {
                    // Multi-byte char: decode just its 1-4 byte window.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(window) {
                        Ok(s) => s.chars().next(),
                        // A trailing valid char plus partial garbage still
                        // yields the leading chars via error_len bookkeeping.
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .expect("validated prefix")
                                .chars()
                                .next()
                        }
                        Err(e) => return Err(Error::new(format!("invalid UTF-8 in string: {e}"))),
                    }
                    .expect("non-empty by construction");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalars_round_trip() {
        let s = to_string(&1.25f64).unwrap();
        assert_eq!(s, "1.25");
        assert_eq!(from_str::<f64>(&s).unwrap(), 1.25);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert!(from_str::<bool>(" true ").unwrap());
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn float_shortest_form_round_trips() {
        for x in [0.1, 1.0 / 3.0, 1e-12, 123456.789, f64::MAX] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "via {s}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "a\"b\\c\nd\te\u{1}ü漢".to_string();
        let s = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), original);
    }

    #[test]
    fn nested_containers_round_trip() {
        let v: Vec<(u32, String)> = vec![(1, "x".into()), (2, "y".into())];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u32, String)>>(&s).unwrap(), v);

        let m: BTreeMap<String, Vec<f64>> =
            [("k".to_string(), vec![1.5, -2.25])].into_iter().collect();
        let s = to_string(&m).unwrap();
        assert_eq!(from_str::<BTreeMap<String, Vec<f64>>>(&s).unwrap(), m);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
