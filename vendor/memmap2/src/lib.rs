#![warn(missing_docs)]

//! Offline API shim for the `memmap2` crate.
//!
//! Exposes the read-only mapping surface the workspace uses —
//! [`Mmap::map`] over an open [`File`] yielding a
//! `Deref<Target = [u8]>` view of the file's bytes. The shim reads the
//! file eagerly into an owned buffer instead of establishing a true
//! OS-level memory mapping (no `unsafe`, no platform syscalls), so the
//! view is a point-in-time snapshot: later writes to the file are not
//! reflected, which is strictly more conservative than real `mmap`
//! semantics and exactly what an immutable on-disk store wants. Swapping
//! in the real crate (`memmap2 = "0.9"`) turns the same call sites into
//! demand-paged zero-copy mappings with no source changes. See
//! `vendor/README.md` for the shim policy.

use std::fs::File;
use std::io;
use std::ops::Deref;
#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// An immutable byte view of a file's contents.
///
/// ```
/// use std::io::Write;
///
/// let dir = std::env::temp_dir().join("memmap2-shim-doc");
/// std::fs::create_dir_all(&dir).unwrap();
/// let path = dir.join("sample.bin");
/// std::fs::File::create(&path).unwrap().write_all(b"abc").unwrap();
///
/// let file = std::fs::File::open(&path).unwrap();
/// let map = memmap2::Mmap::map(&file).unwrap();
/// assert_eq!(&map[..], b"abc");
/// ```
#[derive(Debug)]
pub struct Mmap {
    buf: Vec<u8>,
}

impl Mmap {
    /// Map `file`'s full contents as an immutable byte view.
    ///
    /// The real crate marks this `unsafe` because a live mapping can be
    /// invalidated by concurrent file truncation; the shim's eager read
    /// has no such hazard, so the safe signature is a strict superset.
    pub fn map(file: &File) -> io::Result<Mmap> {
        // Positional reads from offset 0: like a real mapping, the view
        // covers the whole file and the caller's read cursor is untouched.
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::OutOfMemory, "file too large to buffer"))?;
        let mut buf = vec![0u8; len];
        let mut at = 0usize;
        while at < len {
            let n = file.read_at(&mut buf[at..], at as u64)?;
            if n == 0 {
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            at += n;
        }
        Ok(Mmap { buf })
    }

    /// Length of the mapped view in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the mapped file was empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn scratch(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("memmap2-shim-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        File::create(&path).unwrap().write_all(bytes).unwrap();
        path
    }

    #[test]
    fn maps_full_contents() {
        let path = scratch("full.bin", &[1, 2, 3, 4, 5]);
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(map.len(), 5);
        assert_eq!(&map[..], &[1, 2, 3, 4, 5]);
        assert_eq!(map.as_ref(), &map[..]);
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = scratch("empty.bin", b"");
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
    }

    #[test]
    fn view_is_a_snapshot() {
        let path = scratch("snap.bin", b"before");
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        std::fs::write(&path, b"after!!").unwrap();
        assert_eq!(&map[..], b"before", "eager read ignores later writes");
    }

    #[test]
    fn mapping_ignores_the_file_cursor() {
        // Like a real mapping, `map` covers the whole file from offset 0
        // no matter where the caller's read cursor sits.
        use std::io::Read;
        let path = scratch("cursor.bin", b"abcdef");
        let mut file = File::open(&path).unwrap();
        let mut first = [0u8; 3];
        file.read_exact(&mut first).unwrap();
        let map = Mmap::map(&file).unwrap();
        assert_eq!(&map[..], b"abcdef");
    }
}
