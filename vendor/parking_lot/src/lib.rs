#![warn(missing_docs)]

//! Offline API shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives and strips lock poisoning, matching the
//! `parking_lot` API surface this workspace uses (`Mutex::new`, `lock`,
//! `into_inner`, plus `RwLock` for symmetry). See `vendor/README.md` for
//! the shim policy.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }
}
