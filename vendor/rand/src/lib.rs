#![warn(missing_docs)]

//! Offline API shim for the `rand` crate (0.8-style API).
//!
//! Implements the exact surface this workspace uses — `StdRng` seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] over
//! integer/float ranges, [`Rng::gen_bool`] and [`seq::SliceRandom`]
//! shuffling — on top of a deterministic xoshiro256** generator. Streams
//! are stable across runs and platforms (the workspace's reproduction
//! guarantees depend on that), but they are NOT the streams the real
//! `rand` crate would produce. See `vendor/README.md` for the shim policy.

/// A value type that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits; uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range form accepted by [`Rng::gen_range`]. Mirrors rand 0.8's shape —
/// `T` as a trait parameter with blanket impls over [`SampleUniform`] — so
/// integer-literal ranges infer `i32` the way they do with real rand.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types drawable uniformly from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` or, when `inclusive`, `[lo, hi]`.
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// Rejection-free bounded integer draw via 128-bit multiply-shift.
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return <u64 as Standard>::sample(rng) as $t;
                    }
                    (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
                } else {
                    (lo as i128 + bounded_u64(rng, span) as i128) as $t
                }
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = <f64 as Standard>::sample(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// The random-number-generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Extension trait: in-place Fisher-Yates shuffling and random choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Shuffles the slice in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=4u8);
            assert!(w <= 4);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_probability_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
