#![warn(missing_docs)]

//! Offline API shim for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `sample_size`, `measurement_time`, the
//! `criterion_group!` / `criterion_main!` macros and `black_box` — backed
//! by a simple adaptive timing loop instead of criterion's statistical
//! machinery. Each benchmark reports the mean wall-clock time per
//! iteration (plus throughput when configured) on stdout.
//!
//! Command-line compatibility: a positional argument filters benchmarks
//! by substring (like real criterion), and the `--bench`/`--test`-style
//! flags cargo passes are accepted and ignored. Set the environment
//! variable `CRITERION_SHIM_QUICK=1` to cap measurement at one sample per
//! benchmark for smoke runs. See `vendor/README.md` for the shim policy.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: a name plus an optional
/// parameter rendered as `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `umc/5000` from a function name and a parameter value.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter (used with group names).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId { id: s.clone() }
    }
}

/// Throughput declaration for per-element / per-byte rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured block processes this many elements.
    Elements(u64),
    /// The measured block processes this many bytes.
    Bytes(u64),
}

/// The timing callback handed to benchmark closures.
pub struct Bencher {
    /// Mean seconds per iteration, filled by [`Bencher::iter`].
    elapsed_per_iter: f64,
    max_samples: usize,
    target: Duration,
}

impl Bencher {
    /// Times `f`, adaptively choosing an iteration count that fills the
    /// measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and single-shot estimate.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));

        // Size each sample so that max_samples of them roughly fill the
        // measurement window.
        let per_sample = (self.target.as_secs_f64() / once.as_secs_f64() / self.max_samples as f64)
            .clamp(1.0, 1e6);
        let iters = per_sample as usize;
        let mut best = f64::INFINITY;
        let budget_start = Instant::now();
        for _ in 0..self.max_samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let mean = start.elapsed().as_secs_f64() / iters as f64;
            if mean < best {
                best = mean;
            }
            // Stop early only when the wall-clock already spent exceeds
            // twice the window (slow benchmarks whose single sample
            // overshot the estimate).
            if budget_start.elapsed() > 2 * self.target {
                break;
            }
        }
        self.elapsed_per_iter = best;
    }
}

fn format_seconds(s: f64) -> String {
    if s < 1e-6 {
        format!("{:8.2} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:8.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:8.2} ms", s * 1e3)
    } else {
        format!("{s:8.2} s ")
    }
}

#[derive(Debug, Clone)]
struct Settings {
    filter: Option<String>,
    quick: bool,
}

impl Settings {
    fn from_env_and_args() -> Self {
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                // Flags cargo-bench / libtest pass through; ignore values
                // where applicable.
                "--bench" | "--test" | "--nocapture" | "--quiet" | "-q" | "--exact" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--sample-size"
                | "--warm-up-time" => {
                    let _ = args.next();
                }
                s if s.starts_with('-') => {
                    // Unknown flag: warn. If it takes a value, that value
                    // will be announced as the filter below rather than
                    // silently matching nothing.
                    eprintln!("criterion shim: ignoring unknown flag `{s}`");
                }
                s => filter = Some(s.to_owned()),
            }
        }
        if let Some(f) = &filter {
            eprintln!("criterion shim: filtering benchmarks by substring `{f}`");
        }
        let quick = std::env::var("CRITERION_SHIM_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
        Settings { filter, quick }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    settings: Settings,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            settings: Settings::from_env_and_args(),
            measurement_time: Duration::from_millis(400),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement window.
    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.measurement_time = dur;
        self
    }

    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            measurement_time: None,
            sample_size: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mt = self.measurement_time;
        let ss = self.sample_size;
        self.run_one(&id.id.clone(), mt, ss, f);
        self
    }

    fn run_one<F>(&mut self, full_id: &str, mt: Duration, ss: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.settings.matches(full_id) {
            return;
        }
        let (mt, ss) = if self.settings.quick {
            (Duration::from_millis(50), 1)
        } else {
            (mt, ss)
        };
        let mut b = Bencher {
            elapsed_per_iter: 0.0,
            max_samples: ss.max(1),
            target: mt,
        };
        f(&mut b);
        println!("{full_id:<60} time: {}", format_seconds(b.elapsed_per_iter));
    }

    /// Accepted for API compatibility; argument parsing happens in
    /// [`Criterion::default`].
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// No-op in the shim (criterion prints its summary here).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing throughput/size settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    measurement_time: Option<Duration>,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Declares the work per iteration for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the group's measurement window.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = Some(dur);
        self
    }

    /// Overrides the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.dispatch(&id.id.clone(), f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.dispatch(&id.id.clone(), |b| f(b, input));
        self
    }

    fn dispatch<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        let mt = self
            .measurement_time
            .unwrap_or(self.criterion.measurement_time);
        let ss = self.sample_size.unwrap_or(self.criterion.sample_size);
        let throughput = self.throughput;
        self.criterion.run_one(&full, mt, ss, |b| {
            f(b);
            if let Some(t) = throughput {
                let per_s = match t {
                    Throughput::Elements(n) => n as f64 / b.elapsed_per_iter,
                    Throughput::Bytes(n) => n as f64 / b.elapsed_per_iter,
                };
                let unit = match t {
                    Throughput::Elements(_) => "elem/s",
                    Throughput::Bytes(_) => "B/s",
                };
                println!("{full:<60} thrpt: {per_s:12.0} {unit}");
            }
        });
    }

    /// Ends the group (printing is immediate in the shim, so this is a
    /// no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_function("sum", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("sum_n", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn format_spans_units() {
        assert!(format_seconds(3e-9).contains("ns"));
        assert!(format_seconds(3e-6).contains("µs"));
        assert!(format_seconds(3e-3).contains("ms"));
        assert!(format_seconds(3.0).contains('s'));
    }
}
