#![warn(missing_docs)]

//! Offline API shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::thread::scope` with the crossbeam calling
//! convention (spawn closures receive the scope, the scope call returns a
//! `Result` capturing worker panics) on top of `std::thread::scope`. See
//! `vendor/README.md` for the shim policy.

/// Scoped threads in the style of `crossbeam::thread`.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The error half carries the payload of whichever thread panicked.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle passed to `scope` and to every spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it can
        /// spawn further work, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Creates a scope in which threads can borrow from the enclosing
    /// stack frame. Returns `Err` with the panic payload if the scope body
    /// or any unjoined spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_share_borrowed_state() {
        let counter = AtomicUsize::new(0);
        let out = thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        });
        assert!(out.is_ok());
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_panic_surfaces_as_err() {
        let out = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(out.is_err());
    }
}
