#![warn(missing_docs)]

//! Derive macros for the offline `serde` shim.
//!
//! Parses the item's `TokenStream` by hand (the container has no network
//! access, so `syn`/`quote` are unavailable) and emits `Serialize` /
//! `Deserialize` impls against the shim's `Value` data model. Supported
//! shapes — the exact set this workspace uses:
//!
//! * structs with named fields (plus unit structs),
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde),
//! * the `#[serde(skip)]` field attribute (skipped on serialize,
//!   `Default::default()` on deserialize).
//!
//! Generics are rejected with a compile error rather than silently
//! mishandled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match (&item.shape, mode) {
        (Shape::Struct(fields), Mode::Serialize) => struct_serialize(&item.name, fields),
        (Shape::Struct(fields), Mode::Deserialize) => struct_deserialize(&item.name, fields),
        (Shape::Enum(variants), Mode::Serialize) => enum_serialize(&item.name, variants),
        (Shape::Enum(variants), Mode::Deserialize) => enum_deserialize(&item.name, variants),
    };
    code.parse().expect("derive shim generated invalid Rust")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Consumes leading `#[...]` attributes; returns whether any of them
    /// was `#[serde(skip)]`.
    fn skip_attributes(&mut self) -> bool {
        let mut skip = false;
        while self.at_punct('#') {
            self.next();
            if let Some(TokenTree::Group(g)) = self.next() {
                skip |= attr_is_serde_skip(&g.stream());
            }
        }
        skip
    }

    /// Consumes `pub`, `pub(crate)`, `pub(in path)` etc.
    fn skip_visibility(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Consumes tokens of a type expression up to a top-level `,`,
    /// tracking `<`/`>` nesting (groups are atomic tokens already).
    fn skip_type(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => return,
                    _ => {}
                }
            }
            self.next();
        }
    }
}

fn attr_is_serde_skip(inner: &TokenStream) -> bool {
    // inner is e.g. `serde(skip)` or `doc = "..."`.
    let tokens: Vec<TokenTree> = inner.clone().into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == "skip")),
        _ => false,
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();

    let kind = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    if c.at_punct('<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }

    match kind.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                shape: Shape::Struct(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
                name,
                shape: Shape::Struct(Vec::new()),
            }),
            other => Err(format!(
                "serde shim derive supports only named-field or unit structs \
                 (`{name}` has {other:?})"
            )),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                shape: Shape::Enum(parse_variants(g.stream())?),
            }),
            other => Err(format!("expected enum body for `{name}`, found {other:?}")),
        },
        other => Err(format!("cannot derive for item kind `{other}`")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let skip = c.skip_attributes();
        c.skip_visibility();
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        if !c.at_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        c.next();
        c.skip_type();
        if c.at_punct(',') {
            c.next();
        }
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.skip_attributes();
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                c.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if c.at_punct('=') {
            c.next();
            c.skip_type();
        }
        if c.at_punct(',') {
            c.next();
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

/// Counts the fields of a tuple variant: top-level commas at angle depth 0,
/// ignoring a trailing comma.
fn tuple_arity(inner: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = inner.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle_depth = 0i32;
    for (i, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 && i + 1 < tokens.len() => arity += 1,
                _ => {}
            }
        }
    }
    arity
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text, then re-parsed)
// ---------------------------------------------------------------------------

fn struct_serialize(name: &str, fields: &[Field]) -> String {
    let mut pushes = String::new();
    for f in fields.iter().filter(|f| !f.skip) {
        let fname = &f.name;
        pushes.push_str(&format!(
            "entries.push(({fname:?}.to_string(), \
             ::serde::Serialize::to_value(&self.{fname})));\n"
        ));
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Map(entries)\n\
             }}\n\
         }}"
    )
}

fn struct_deserialize(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        let fname = &f.name;
        if f.skip {
            inits.push_str(&format!("{fname}: ::std::default::Default::default(),\n"));
        } else {
            inits.push_str(&format!(
                "{fname}: ::serde::Deserialize::from_value(\
                 ::serde::map_field(entries, {fname:?})?)?,\n"
            ));
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let entries = v.as_map().ok_or_else(|| \
                     ::serde::Error::custom(concat!(\"expected map for \", {name:?})))?;\n\
                 let _ = entries;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}"
    )
}

fn enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            VariantShape::Unit => arms.push_str(&format!(
                "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),\n"
            )),
            VariantShape::Tuple(1) => arms.push_str(&format!(
                "{name}::{vname}(f0) => ::serde::Value::Map(vec![({vname:?}.to_string(), \
                 ::serde::Serialize::to_value(f0))]),\n"
            )),
            VariantShape::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                let items: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vname}({}) => ::serde::Value::Map(vec![({vname:?}.to_string(), \
                     ::serde::Value::Seq(vec![{}]))]),\n",
                    binders.join(", "),
                    items.join(", ")
                ));
            }
            VariantShape::Struct(fields) => {
                let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let items: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "({:?}.to_string(), ::serde::Serialize::to_value({}))",
                            f.name, f.name
                        )
                    })
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vname} {{ {} }} => ::serde::Value::Map(vec![({vname:?}.to_string(), \
                     ::serde::Value::Map(vec![{}]))]),\n",
                    binders.join(", "),
                    items.join(", ")
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            VariantShape::Unit => unit_arms.push_str(&format!(
                "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
            )),
            VariantShape::Tuple(1) => tagged_arms.push_str(&format!(
                "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                 ::serde::Deserialize::from_value(payload)?)),\n"
            )),
            VariantShape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "{vname:?} => {{\n\
                         let items = payload.as_seq().ok_or_else(|| \
                             ::serde::Error::custom(\"expected tuple-variant payload\"))?;\n\
                         if items.len() != {n} {{\n\
                             return ::std::result::Result::Err(\
                                 ::serde::Error::custom(\"tuple variant arity mismatch\"));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}::{vname}({}))\n\
                     }}\n",
                    items.join(", ")
                ));
            }
            VariantShape::Struct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        if f.skip {
                            format!("{}: ::std::default::Default::default()", f.name)
                        } else {
                            format!(
                                "{}: ::serde::Deserialize::from_value(\
                                 ::serde::map_field(entries, {:?})?)?",
                                f.name, f.name
                            )
                        }
                    })
                    .collect();
                tagged_arms.push_str(&format!(
                    "{vname:?} => {{\n\
                         let entries = payload.as_map().ok_or_else(|| \
                             ::serde::Error::custom(\"expected struct-variant payload\"))?;\n\
                         let _ = entries;\n\
                         ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                     }}\n",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                         let (tag, payload) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\
                         concat!(\"expected variant of \", {name:?}))),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
