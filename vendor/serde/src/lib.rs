#![warn(missing_docs)]

//! Offline API shim for the `serde` crate.
//!
//! Real serde serializes through a zero-copy visitor pipeline; this shim
//! routes everything through an owned [`Value`] tree instead — a model
//! that is dramatically simpler and fully sufficient for the workspace's
//! needs (JSON caching of run records via the `serde_json` shim). The
//! derive macros come from `serde_shim_derive`, a hand-rolled proc macro
//! covering named structs and unit/tuple/struct enum variants plus
//! `#[serde(skip)]`. See `vendor/README.md` for the shim policy.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

pub use serde_shim_derive::{Deserialize, Serialize};

/// The self-describing data model every value serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / `None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (struct fields, enum tags).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error carrying `msg`.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up a struct field in a deserialized map (derive-macro helper).
pub fn map_field<'a>(entries: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("unsigned out of range")),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("negative for unsigned")),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("signed out of range")),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("signed out of range")),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::custom("expected tuple"))?;
                let expected = [$($n),+].len();
                if s.len() != expected {
                    return Err(Error::custom("tuple arity mismatch"));
                }
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

fn seq_of_pairs<'a, K: Serialize + 'a, V: Serialize + 'a>(
    it: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Seq(
        it.map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
            .collect(),
    )
}

fn pairs_from<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    v.as_seq()
        .ok_or_else(|| Error::custom("expected map-as-pairs"))?
        .iter()
        .map(<(K, V)>::from_value)
        .collect()
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        seq_of_pairs(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(pairs_from(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        seq_of_pairs(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(pairs_from(v)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(v)?.into_iter().collect())
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash, S: std::hash::BuildHasher + Default> Deserialize
    for HashSet<T, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(v)?.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u8>::from_value(&None::<u8>.to_value()).unwrap(),
            None
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let back = Vec::<(u32, String)>::from_value(&v.to_value()).unwrap();
        assert_eq!(v, back);

        let m: BTreeMap<String, f64> = [("x".to_string(), 0.5)].into_iter().collect();
        let back = BTreeMap::<String, f64>::from_value(&m.to_value()).unwrap();
        assert_eq!(m, back);
    }
}
