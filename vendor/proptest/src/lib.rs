#![warn(missing_docs)]

//! Offline API shim for the `proptest` crate.
//!
//! Implements the surface this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `prop_filter`,
//! range and tuple strategies, [`collection`] (`vec`, `btree_map`,
//! `btree_set`), [`sample`] (`select`, `subsequence`), [`string`]
//! (`string_regex` over a regex subset), the [`proptest!`] macro with
//! `#![proptest_config(...)]`, and `prop_assert!` / `prop_assert_eq!` /
//! `prop_assert_ne!` / `prop_assume!`.
//!
//! Differences from real proptest, by design: failing cases are **not
//! shrunk** and the generated inputs are not printed — instead, a failure
//! reports the case index and seed, and because value streams come from a
//! deterministic per-test RNG seeded from the test's name, re-running the
//! test reproduces the identical failing draw (attach a debugger or add a
//! `dbg!`). See `vendor/README.md` for the shim policy.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// The RNG handed to strategies (deterministic per test).
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds a generator; the `proptest!` macro derives the seed from the
    /// test's name so every test has its own reproducible stream.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    fn gen_index(&mut self, bound: usize) -> usize {
        self.0.gen_range(0..bound)
    }
}

/// FNV-1a, used by the macro to derive a per-test seed from its name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a generated case did not run to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!` — skipped, not failed.
    Reject,
}

/// Runtime configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases each property must pass.
    pub cases: u32,
    /// Upper bound on generator/assume rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of a given type.
///
/// `generate` returns `None` when a `prop_filter` rejected the draw; the
/// test runner then retries with fresh randomness.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value, or `None` on filter rejection.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Discards generated values failing `pred`; `reason` is reported if
    /// too many draws are rejected.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            base: self,
            reason,
            pred,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.base.generate(rng).map(&self.f)
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let inner = (self.f)(self.base.generate(rng)?);
        inner.generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    #[allow(dead_code)]
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.base.generate(rng).filter(|v| (self.pred)(v))
    }
}

/// String literals are regex strategies, as in real proptest
/// (`s in "[a-z]{3}"`). The pattern must be valid for the [`string`]
/// module's regex subset; it is compiled on first use per case.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> Option<String> {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {}", e.0))
            .generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.0.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.0.gen_range(self.clone()))
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($t,)+) = self;
                Some(($($t.generate(rng)?,)+))
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---------------------------------------------------------------------------
// collection
// ---------------------------------------------------------------------------

/// Collection strategies: `vec`, `btree_map`, `btree_set`.
pub mod collection {
    use super::*;

    /// A size specification: a fixed length or a range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        pub(crate) fn draw(&self, rng: &mut TestRng) -> usize {
            if self.hi_inclusive <= self.lo {
                self.lo
            } else {
                self.lo + rng.gen_index(self.hi_inclusive - self.lo + 1)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = self.size.draw(rng);
            let mut out = Vec::with_capacity(n);
            let mut attempts = 0usize;
            while out.len() < n {
                attempts += 1;
                if attempts > n * 20 + 100 {
                    // Heavily filtered element strategy: reject the whole draw.
                    return None;
                }
                if let Some(v) = self.element.generate(rng) {
                    out.push(v);
                }
            }
            Some(out)
        }
    }

    /// Strategy for `BTreeMap<K, V>` with entry counts drawn from `size`.
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    /// Generates maps; duplicate keys collapse, so maps may come out
    /// smaller than the drawn size (matching real proptest).
    pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            keys,
            values,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
            let n = self.size.draw(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 20 + 100 {
                attempts += 1;
                let (Some(k), Some(v)) = (self.keys.generate(rng), self.values.generate(rng))
                else {
                    continue;
                };
                out.insert(k, v);
            }
            Some(out)
        }
    }

    /// Strategy for `BTreeSet<T>` with element counts drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates sets; duplicates collapse as in [`btree_map`].
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
            let n = self.size.draw(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 20 + 100 {
                attempts += 1;
                if let Some(v) = self.element.generate(rng) {
                    out.insert(v);
                }
            }
            Some(out)
        }
    }
}

// ---------------------------------------------------------------------------
// sample
// ---------------------------------------------------------------------------

/// Strategies drawing from explicit value lists.
pub mod sample {
    use super::*;

    /// Strategy yielding one element of a fixed list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select of empty list");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            let i = rng.gen_index(self.options.len());
            Some(self.options[i].clone())
        }
    }

    /// Strategy yielding an order-preserving subsequence of a fixed list.
    pub struct Subsequence<T> {
        options: Vec<T>,
        size: collection::SizeRange,
    }

    /// Picks a subsequence whose length is drawn from `size` (clamped to
    /// the list length), preserving the original order.
    pub fn subsequence<T: Clone>(
        options: Vec<T>,
        size: impl Into<collection::SizeRange>,
    ) -> Subsequence<T> {
        Subsequence {
            options,
            size: size.into(),
        }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<T>> {
            let n = self.size.draw(rng).min(self.options.len());
            // Floyd's algorithm for n distinct indices, then sort to
            // preserve order.
            let mut picked = BTreeSet::new();
            for j in self.options.len() - n..self.options.len() {
                let t = rng.gen_index(j + 1);
                if !picked.insert(t) {
                    picked.insert(j);
                }
            }
            Some(picked.iter().map(|&i| self.options[i].clone()).collect())
        }
    }
}

// ---------------------------------------------------------------------------
// string
// ---------------------------------------------------------------------------

/// String strategies from regular expressions (a generation-oriented
/// subset: literals, `[...]` classes with ranges, `.`, and the `{m,n}`,
/// `{n}`, `?`, `*`, `+` quantifiers).
pub mod string {
    use super::*;

    /// A parse error for an unsupported or malformed pattern.
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    enum Atom {
        Literal(char),
        Class(Vec<char>),
        Any,
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// Strategy yielding strings matching a regex subset.
    pub struct RegexStrategy {
        pieces: Vec<Piece>,
    }

    /// Compiles `pattern` into a generator. Unsupported syntax
    /// (alternation, groups, anchors, backreferences) is an `Err`.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0usize;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| p + i + 1)
                        .ok_or_else(|| Error("unterminated class".into()))?;
                    let mut set = Vec::new();
                    let inner = &chars[i + 1..close];
                    let mut j = 0usize;
                    while j < inner.len() {
                        if inner[j] == '\\' && j + 1 < inner.len() {
                            match inner[j + 1] {
                                // Unicode category escapes (`\PC`, `\p{L}`, ...):
                                // approximate with a representative char set.
                                'p' | 'P' => {
                                    set.extend(' '..='~');
                                    set.extend(['é', 'ß', 'Ω', '漢']);
                                    j += 2;
                                    if inner.get(j) == Some(&'{') {
                                        while j < inner.len() && inner[j] != '}' {
                                            j += 1;
                                        }
                                        j += 1;
                                    } else {
                                        j += 1; // single-letter category name
                                    }
                                }
                                'n' => {
                                    set.push('\n');
                                    j += 2;
                                }
                                't' => {
                                    set.push('\t');
                                    j += 2;
                                }
                                c => {
                                    set.push(c);
                                    j += 2;
                                }
                            }
                        } else if j + 2 < inner.len() && inner[j + 1] == '-' {
                            let (lo, hi) = (inner[j], inner[j + 2]);
                            if lo > hi {
                                return Err(Error("inverted class range".into()));
                            }
                            for c in lo..=hi {
                                set.push(c);
                            }
                            j += 3;
                        } else {
                            set.push(inner[j]);
                            j += 1;
                        }
                    }
                    if set.is_empty() {
                        return Err(Error("empty class".into()));
                    }
                    i = close + 1;
                    Atom::Class(set)
                }
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '\\' => {
                    let c = *chars
                        .get(i + 1)
                        .ok_or_else(|| Error("trailing backslash".into()))?;
                    i += 2;
                    Atom::Literal(c)
                }
                '(' | ')' | '|' | '^' | '$' => {
                    return Err(Error(format!("unsupported regex syntax `{}`", chars[i])));
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| p + i + 1)
                        .ok_or_else(|| Error("unterminated repetition".into()))?;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    let parse = |s: &str| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|_| Error("bad repeat".into()))
                    };
                    match body.split_once(',') {
                        Some((lo, hi)) => (parse(lo)?, parse(hi)?),
                        None => {
                            let n = parse(&body)?;
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            if min > max {
                return Err(Error("inverted repetition".into()));
            }
            pieces.push(Piece { atom, min, max });
        }
        Ok(RegexStrategy { pieces })
    }

    impl Strategy for RegexStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> Option<String> {
            let mut out = String::new();
            for piece in &self.pieces {
                let reps = piece.min + rng.gen_index(piece.max - piece.min + 1);
                for _ in 0..reps {
                    match &piece.atom {
                        Atom::Literal(c) => out.push(*c),
                        Atom::Class(set) => out.push(set[rng.gen_index(set.len())]),
                        Atom::Any => {
                            // Printable ASCII.
                            out.push(char::from(b' ' + rng.gen_index(95) as u8));
                        }
                    }
                }
            }
            Some(out)
        }
    }
}

// ---------------------------------------------------------------------------
// Runner + macros
// ---------------------------------------------------------------------------

/// Drives one property: `body` generates inputs and runs the assertions;
/// it reports `Err(TestCaseError::Reject)` for vetoed draws and `Ok(false)`
/// when generation itself rejected (filter miss).
pub fn run_property<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<bool, TestCaseError>,
{
    let seed = seed_from_name(name);
    let mut rng = TestRng::from_seed(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        match attempt {
            Err(payload) => {
                // The failing draw is reproducible: the stream is a pure
                // function of the seed, and `passed + rejected` draws
                // preceded this one.
                eprintln!(
                    "property `{name}` failed on case {} (seed {seed:#x}, \
                     {rejected} rejects before it); the stream is \
                     deterministic, so re-running reproduces it",
                    passed + 1
                );
                std::panic::resume_unwind(payload);
            }
            Ok(Ok(true)) => passed += 1,
            Ok(Ok(false)) | Ok(Err(TestCaseError::Reject)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "property `{name}`: gave up after {rejected} rejected draws \
                         ({passed}/{} cases passed)",
                        config.cases
                    );
                }
            }
        }
    }
}

/// Declares property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Strategies are built once; generation draws from them per case.
            let strategies = ($($strat,)+);
            $crate::run_property(&config, stringify!($name), |rng| {
                let inputs = match $crate::Strategy::generate(&strategies, rng) {
                    Some(v) => v,
                    None => return Ok(false),
                };
                let ($($arg,)+) = inputs;
                #[allow(clippy::redundant_closure_call)]
                let out: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                out.map(|()| true)
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            panic!("prop_assert_eq failed: {left:?} != {right:?}");
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            panic!(
                "prop_assert_eq failed: {left:?} != {right:?}: {}",
                format!($($fmt)+)
            );
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            panic!("prop_assert_ne failed: both {left:?}");
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            panic!(
                "prop_assert_ne failed: both {left:?}: {}",
                format!($($fmt)+)
            );
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pairs() -> impl Strategy<Value = Vec<(u32, f64)>> {
        crate::collection::vec((0u32..50, 0.0f64..1.0), 0..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_in_bounds(a in 3u32..17, b in 0.25f64..=0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((0.25..=0.75).contains(&b));
        }

        #[test]
        fn collections_respect_sizes(v in arb_pairs()) {
            prop_assert!(v.len() < 20);
            for (k, x) in v {
                prop_assert!(k < 50 && (0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn flat_map_and_filter_compose(
            v in (1usize..6).prop_flat_map(|n| crate::collection::vec(0u32..10, n))
                .prop_filter("nonempty", |v| !v.is_empty())
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn regex_strings_match_class(s in crate::string::string_regex("[a-c]{2,5}").unwrap()) {
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn subsequence_preserves_order(
            sub in crate::sample::subsequence((0..20u32).collect::<Vec<_>>(), 0..=20usize)
        ) {
            prop_assert!(sub.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn select_draws_each_option() {
        let strat = crate::sample::select(vec![1, 2, 3]);
        let mut rng = crate::TestRng::from_seed(1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(strat.generate(&mut rng).unwrap());
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn btree_map_respects_key_filter() {
        let strat = crate::collection::btree_map(
            (0u32..10, 0u32..10).prop_filter("no diagonal", |(a, b)| a != b),
            0.0f64..1.0,
            0..30,
        );
        let mut rng = crate::TestRng::from_seed(2);
        for _ in 0..50 {
            for ((a, b), _) in strat.generate(&mut rng).unwrap() {
                assert_ne!(a, b);
            }
        }
    }
}
