#![warn(missing_docs)]

//! # er-dirty — graph clustering baselines for Dirty ER
//!
//! The paper restricts its study to *Clean-Clean* ER, where the bipartite
//! structure admits the unique-mapping constraint. Its related-work
//! section positions the study against graph clustering for **Dirty ER**
//! (a single collection that contains duplicates in itself — e.g. two
//! clean sources merged into one): the framework of Hassanzadeh et al.
//! (VLDB 2009), from which the paper adapts `RSR`, and the more recent
//! clique/consistency methods it cites. This crate implements those
//! baselines so the workspace can quantify — on the same similarity
//! graphs — what the CCER-specific algorithms gain by exploiting the
//! bipartite structure:
//!
//! | Algorithm | Function | Source |
//! |-----------|----------|--------|
//! | Connected Components | [`connected_components`] | transitive-closure baseline |
//! | Center | [`center_clustering`] | Hassanzadeh et al., star clusters |
//! | Merge-Center | [`merge_center_clustering`] | Hassanzadeh et al., merging stars |
//! | Star | [`star_clustering`] | Hassanzadeh et al., degree-driven hubs |
//! | Sequential Rippling | [`sequential_rippling`] | Ricochet family — the ancestor of the paper's RSR |
//! | Markov Clustering | [`markov_clustering`] | van Dongen's flow simulation (expansion + inflation) |
//! | Global Edge Consistency Gain | [`global_edge_consistency_gain`] | triangle-consistency local search |
//! | Maximum Clique Clustering | [`maximum_clique_clustering`] | iterated maximum-clique removal |
//! | Extended Maximum Clique Clustering | [`extended_maximum_clique_clustering`] | clique removal + ε-attachment |
//!
//! All consume a [`DirtyGraph`] (unipartite, weighted) with an inclusive
//! similarity threshold and produce a [`Partition`] of the node set;
//! [`pairwise_scores`] evaluates partitions at the pair level. The
//! [`merge`] module converts CCER inputs/outputs into this representation.

pub mod center;
pub mod clique;
pub mod connected;
pub mod consistency;
pub mod graph;
pub mod markov;
pub mod merge;
pub mod partition;
pub mod rippling;
pub mod star;

pub use center::{center_clustering, merge_center_clustering};
pub use clique::{extended_maximum_clique_clustering, maximum_clique_clustering};
pub use connected::connected_components;
pub use consistency::{global_edge_consistency_gain, GecgConfig};
pub use graph::{DirtyAdjacency, DirtyEdge, DirtyGraph, DirtyGraphBuilder, DirtyGraphError};
pub use markov::{markov_clustering, MclConfig};
pub use merge::{is_ccer_shaped, matching_to_partition, merge_bipartite, merge_ground_truth};
pub use partition::{pairwise_scores, PairScores, Partition};
pub use rippling::sequential_rippling;
pub use star::star_clustering;

/// The Dirty ER clustering algorithms of this crate, enumerable for
/// uniform sweeps (mirrors `er_matchers::AlgorithmKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DirtyAlgorithm {
    /// Transitive closure over retained edges.
    ConnectedComponents,
    /// Star clusters around greedily chosen centers.
    Center,
    /// Center with cluster merging on center contact.
    MergeCenter,
    /// Degree-driven hubs absorbing their whole neighborhood.
    Star,
    /// Ricochet Sequential Rippling (the paper's RSR, un-adapted).
    SequentialRippling,
    /// Markov Clustering (flow simulation, inflation 2.0).
    Markov,
    /// Triangle-consistency local search.
    EdgeConsistency,
    /// Iterated maximum-clique removal.
    MaxClique,
    /// Clique removal with ε-attachment extension (ε = 0.5).
    ExtendedMaxClique,
}

impl DirtyAlgorithm {
    /// All algorithms in presentation order.
    pub const ALL: [DirtyAlgorithm; 9] = [
        DirtyAlgorithm::ConnectedComponents,
        DirtyAlgorithm::Center,
        DirtyAlgorithm::MergeCenter,
        DirtyAlgorithm::Star,
        DirtyAlgorithm::SequentialRippling,
        DirtyAlgorithm::Markov,
        DirtyAlgorithm::EdgeConsistency,
        DirtyAlgorithm::MaxClique,
        DirtyAlgorithm::ExtendedMaxClique,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            DirtyAlgorithm::ConnectedComponents => "CC",
            DirtyAlgorithm::Center => "Center",
            DirtyAlgorithm::MergeCenter => "MergeCenter",
            DirtyAlgorithm::Star => "Star",
            DirtyAlgorithm::SequentialRippling => "SR",
            DirtyAlgorithm::Markov => "MCL",
            DirtyAlgorithm::EdgeConsistency => "GECG",
            DirtyAlgorithm::MaxClique => "MCC",
            DirtyAlgorithm::ExtendedMaxClique => "EMCC",
        }
    }

    /// Run the algorithm on `g` at inclusive threshold `t`.
    pub fn run(&self, g: &DirtyGraph, t: f64) -> Partition {
        match self {
            DirtyAlgorithm::ConnectedComponents => connected_components(g, t),
            DirtyAlgorithm::Center => center_clustering(g, t),
            DirtyAlgorithm::MergeCenter => merge_center_clustering(g, t),
            DirtyAlgorithm::Star => star_clustering(g, t),
            DirtyAlgorithm::SequentialRippling => sequential_rippling(g, t),
            DirtyAlgorithm::Markov => markov_clustering(g, t, MclConfig::default()),
            DirtyAlgorithm::EdgeConsistency => {
                global_edge_consistency_gain(g, t, GecgConfig::default())
            }
            DirtyAlgorithm::MaxClique => maximum_clique_clustering(g, t),
            DirtyAlgorithm::ExtendedMaxClique => extended_maximum_clique_clustering(g, t, 0.5),
        }
    }
}

impl std::fmt::Display for DirtyAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_runs_every_algorithm() {
        let mut b = DirtyGraphBuilder::new(4);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.8).unwrap();
        b.add_edge(0, 2, 0.7).unwrap();
        let g = b.build();
        for a in DirtyAlgorithm::ALL {
            let p = a.run(&g, 0.5);
            assert_eq!(p.n_nodes(), 4, "{a} returned a partition over all nodes");
            assert!(!a.name().is_empty());
            assert_eq!(format!("{a}"), a.name());
        }
    }
}
