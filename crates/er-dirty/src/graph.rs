//! The unipartite similarity graph of Dirty ER.
//!
//! Unlike the bipartite [`SimilarityGraph`](er_core::SimilarityGraph) of
//! CCER, a dirty collection may contain duplicates *within itself*, so the
//! similarity graph is a general undirected weighted graph over a single
//! node set. Edges are stored canonically with `a < b`.

use serde::{Deserialize, Serialize};

use er_core::FxHashSet;

/// An undirected weighted edge; invariant `a < b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirtyEdge {
    /// Lower endpoint id.
    pub a: u32,
    /// Higher endpoint id.
    pub b: u32,
    /// Similarity score in `[0, 1]`.
    pub weight: f64,
}

/// Errors raised while building a [`DirtyGraph`].
#[derive(Debug, Clone, PartialEq)]
pub enum DirtyGraphError {
    /// An endpoint id is `>= n_nodes`.
    NodeOutOfBounds {
        /// The offending id.
        id: u32,
        /// The number of nodes in the graph.
        n_nodes: u32,
    },
    /// A self-loop `(v, v)` was added; similarity to oneself is not an edge.
    SelfLoop(u32),
    /// The weight is not a finite value in `[0, 1]`.
    InvalidWeight(f64),
    /// The (unordered) node pair appears more than once.
    DuplicateEdge(u32, u32),
}

impl std::fmt::Display for DirtyGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirtyGraphError::NodeOutOfBounds { id, n_nodes } => {
                write!(f, "node id {id} out of bounds for {n_nodes} nodes")
            }
            DirtyGraphError::SelfLoop(v) => write!(f, "self-loop on node {v}"),
            DirtyGraphError::InvalidWeight(w) => {
                write!(f, "weight {w} is not a finite value in [0, 1]")
            }
            DirtyGraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge ({a}, {b})"),
        }
    }
}

impl std::error::Error for DirtyGraphError {}

/// An undirected similarity graph over one (dirty) entity collection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DirtyGraph {
    n_nodes: u32,
    edges: Vec<DirtyEdge>,
}

impl DirtyGraph {
    /// Number of nodes (entity profiles).
    #[inline]
    pub fn n_nodes(&self) -> u32 {
        self.n_nodes
    }

    /// Number of edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// All edges, in insertion order, each with `a < b`.
    #[inline]
    pub fn edges(&self) -> &[DirtyEdge] {
        &self.edges
    }

    /// Whether the graph has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The weight of the edge between `u` and `v` in either order.
    pub fn weight_of(&self, u: u32, v: u32) -> Option<f64> {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges
            .iter()
            .find(|e| e.a == a && e.b == b)
            .map(|e| e.weight)
    }

    /// Per-node neighbor lists over edges with `weight >= t`, each sorted by
    /// descending weight (ties: ascending neighbor id).
    ///
    /// The Dirty ER algorithms of Hassanzadeh et al. prune edges *below*
    /// the threshold, hence the inclusive comparison.
    pub fn adjacency_at(&self, t: f64) -> DirtyAdjacency {
        let n = self.n_nodes as usize;
        let mut lists: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for e in &self.edges {
            if e.weight >= t {
                lists[e.a as usize].push((e.b, e.weight));
                lists[e.b as usize].push((e.a, e.weight));
            }
        }
        for l in &mut lists {
            l.sort_unstable_by(|x, y| y.1.total_cmp(&x.1).then_with(|| x.0.cmp(&y.0)));
        }
        DirtyAdjacency { lists }
    }
}

/// Validating builder for [`DirtyGraph`].
#[derive(Debug)]
pub struct DirtyGraphBuilder {
    n_nodes: u32,
    edges: Vec<DirtyEdge>,
    seen: FxHashSet<(u32, u32)>,
}

impl DirtyGraphBuilder {
    /// Start a graph over `n_nodes` entities.
    pub fn new(n_nodes: u32) -> Self {
        DirtyGraphBuilder {
            n_nodes,
            edges: Vec::new(),
            seen: FxHashSet::default(),
        }
    }

    /// Add the undirected edge `{u, v}` with the given similarity.
    pub fn add_edge(&mut self, u: u32, v: u32, weight: f64) -> Result<(), DirtyGraphError> {
        if u >= self.n_nodes {
            return Err(DirtyGraphError::NodeOutOfBounds {
                id: u,
                n_nodes: self.n_nodes,
            });
        }
        if v >= self.n_nodes {
            return Err(DirtyGraphError::NodeOutOfBounds {
                id: v,
                n_nodes: self.n_nodes,
            });
        }
        if u == v {
            return Err(DirtyGraphError::SelfLoop(u));
        }
        if !(weight.is_finite() && (0.0..=1.0).contains(&weight)) {
            return Err(DirtyGraphError::InvalidWeight(weight));
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        if !self.seen.insert((a, b)) {
            return Err(DirtyGraphError::DuplicateEdge(a, b));
        }
        self.edges.push(DirtyEdge { a, b, weight });
        Ok(())
    }

    /// Number of edges added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges were added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finish building.
    pub fn build(self) -> DirtyGraph {
        DirtyGraph {
            n_nodes: self.n_nodes,
            edges: self.edges,
        }
    }
}

/// Per-node neighbor lists over retained edges (built by
/// [`DirtyGraph::adjacency_at`]).
#[derive(Debug, Clone)]
pub struct DirtyAdjacency {
    lists: Vec<Vec<(u32, f64)>>,
}

impl DirtyAdjacency {
    /// Neighbors of `v` as `(node, weight)`, sorted by descending weight.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[(u32, f64)] {
        &self.lists[v as usize]
    }

    /// Degree of `v` among retained edges.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.lists[v as usize].len()
    }

    /// Average retained-edge weight around `v` (0 for isolated nodes).
    pub fn avg_weight(&self, v: u32) -> f64 {
        let l = &self.lists[v as usize];
        if l.is_empty() {
            0.0
        } else {
            l.iter().map(|&(_, w)| w).sum::<f64>() / l.len() as f64
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.lists.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_canonicalizes_and_validates() {
        let mut b = DirtyGraphBuilder::new(4);
        b.add_edge(2, 1, 0.5).unwrap();
        assert_eq!(
            b.add_edge(1, 2, 0.9),
            Err(DirtyGraphError::DuplicateEdge(1, 2)),
            "same unordered pair in either order is a duplicate"
        );
        assert_eq!(b.add_edge(3, 3, 0.5), Err(DirtyGraphError::SelfLoop(3)));
        assert_eq!(
            b.add_edge(0, 4, 0.5),
            Err(DirtyGraphError::NodeOutOfBounds { id: 4, n_nodes: 4 })
        );
        assert!(matches!(
            b.add_edge(0, 1, f64::NAN),
            Err(DirtyGraphError::InvalidWeight(w)) if w.is_nan()
        ));
        assert_eq!(
            b.add_edge(0, 1, 1.5),
            Err(DirtyGraphError::InvalidWeight(1.5))
        );
        let g = b.build();
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.edges()[0].a, 1);
        assert_eq!(g.edges()[0].b, 2);
        assert_eq!(g.weight_of(2, 1), Some(0.5));
        assert_eq!(g.weight_of(0, 1), None);
    }

    #[test]
    fn invalid_weight_nan_rendering() {
        let e = DirtyGraphError::InvalidWeight(f64::NAN);
        assert!(e.to_string().contains("NaN"));
    }

    #[test]
    fn adjacency_sorts_desc_and_prunes_inclusively() {
        let mut b = DirtyGraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(0, 2, 0.9).unwrap();
        b.add_edge(0, 3, 0.2).unwrap();
        let g = b.build();
        let adj = g.adjacency_at(0.5);
        // 0.2 pruned, 0.5 retained (inclusive).
        assert_eq!(adj.neighbors(0), &[(2, 0.9), (1, 0.5)]);
        assert_eq!(adj.degree(3), 0);
        assert!((adj.avg_weight(0) - 0.7).abs() < 1e-12);
        assert_eq!(adj.avg_weight(3), 0.0);
        assert_eq!(adj.n_nodes(), 4);
    }

    #[test]
    fn adjacency_tie_breaks_by_node_id() {
        let mut b = DirtyGraphBuilder::new(4);
        b.add_edge(0, 3, 0.5).unwrap();
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(0, 2, 0.5).unwrap();
        let g = b.build();
        let adj = g.adjacency_at(0.0);
        assert_eq!(adj.neighbors(0), &[(1, 0.5), (2, 0.5), (3, 0.5)]);
    }
}
