//! Bridging CCER and Dirty ER.
//!
//! The paper's related work (Hassanzadeh et al.) targets "a scenario where
//! … two clean sources are merged into a dirty source that contains
//! duplicates in itself". This module performs that merge: the two node
//! sets of a bipartite [`er_core::SimilarityGraph`] are
//! concatenated into one collection (`V2` ids offset by `|V1|`), yielding
//! a [`DirtyGraph`] the Dirty ER algorithms can consume — which is how the
//! extension experiment quantifies what the unique-mapping constraint
//! buys the CCER-specific algorithms.

use er_core::{GroundTruth, Matching, SimilarityGraph};

use crate::graph::{DirtyGraph, DirtyGraphBuilder};
use crate::partition::Partition;

/// Merge a bipartite similarity graph into a unipartite one: node ids
/// `0..n_left` keep their id, right ids become `n_left + r`.
///
/// Clean sources contain no intra-source duplicates, so the merged graph
/// has no intra-source edges — exactly the structure Dirty ER algorithms
/// would face after concatenating two clean files.
pub fn merge_bipartite(g: &SimilarityGraph) -> DirtyGraph {
    let offset = g.n_left();
    let mut b = DirtyGraphBuilder::new(g.n_left() + g.n_right());
    for e in g.edges() {
        b.add_edge(e.left, offset + e.right, e.weight)
            .expect("bipartite edges are valid unipartite edges");
    }
    b.build()
}

/// Translate bipartite ground truth into merged-id duplicate pairs.
pub fn merge_ground_truth(gt: &GroundTruth, n_left: u32) -> Vec<(u32, u32)> {
    gt.pairs().iter().map(|&(l, r)| (l, n_left + r)).collect()
}

/// View a CCER matching as a partition of the merged collection (matched
/// pairs become 2-node clusters; everything else is a singleton).
pub fn matching_to_partition(m: &Matching, n_left: u32, n_right: u32) -> Partition {
    let clusters: Vec<Vec<u32>> = m.iter().map(|(l, r)| vec![l, n_left + r]).collect();
    Partition::from_clusters(&clusters, n_left + n_right)
}

/// Check whether a partition of the merged collection is a valid CCER
/// output: every cluster has at most two nodes, at most one from each
/// side.
pub fn is_ccer_shaped(p: &Partition, n_left: u32) -> bool {
    p.clusters()
        .iter()
        .all(|c| c.len() <= 2 && (c.len() < 2 || (c[0] < n_left) != (c[1] < n_left)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::GraphBuilder;

    fn bipartite() -> SimilarityGraph {
        let mut b = GraphBuilder::new(2, 3);
        b.add_edge(0, 0, 0.9).unwrap();
        b.add_edge(0, 2, 0.4).unwrap();
        b.add_edge(1, 1, 0.8).unwrap();
        b.build()
    }

    #[test]
    fn merge_offsets_right_ids() {
        let g = bipartite();
        let d = merge_bipartite(&g);
        assert_eq!(d.n_nodes(), 5);
        assert_eq!(d.n_edges(), 3);
        assert_eq!(d.weight_of(0, 2), Some(0.9)); // right 0 → merged 2
        assert_eq!(d.weight_of(0, 4), Some(0.4)); // right 2 → merged 4
        assert_eq!(d.weight_of(1, 3), Some(0.8));
        assert_eq!(d.weight_of(0, 1), None, "no intra-source edges");
    }

    #[test]
    fn ground_truth_translation() {
        let gt = GroundTruth::new(vec![(0, 0), (1, 2)]);
        assert_eq!(merge_ground_truth(&gt, 2), vec![(0, 2), (1, 4)]);
    }

    #[test]
    fn matching_round_trip_and_shape_check() {
        let m = Matching::new(vec![(0, 0), (1, 2)]);
        let p = matching_to_partition(&m, 2, 3);
        assert_eq!(p.n_intra_pairs(), 2);
        assert!(p.same_cluster(0, 2));
        assert!(p.same_cluster(1, 4));
        assert!(is_ccer_shaped(&p, 2));
    }

    #[test]
    fn non_ccer_shapes_are_detected() {
        // Three-node cluster.
        let p = Partition::from_clusters(&[vec![0, 2, 3]], 5);
        assert!(!is_ccer_shaped(&p, 2));
        // Two nodes from the same side.
        let p = Partition::from_clusters(&[vec![0, 1]], 5);
        assert!(!is_ccer_shaped(&p, 2));
        // Singletons only: trivially CCER-shaped.
        assert!(is_ccer_shaped(&Partition::singletons(5), 2));
    }
}
