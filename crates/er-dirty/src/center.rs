//! Center and Merge-Center clustering (Hassanzadeh et al., VLDB 2009).
//!
//! Both scan the retained edges in descending weight order and grow
//! star-shaped clusters around *center* nodes:
//!
//! * **Center**: the first endpoint of the heaviest edge touching two
//!   unassigned nodes becomes a center; later edges attach unassigned
//!   nodes to adjacent centers. Edges between two assigned nodes, or
//!   between an unassigned node and a non-center member, are skipped.
//! * **Merge-Center**: identical scan, but an edge that connects a node of
//!   one cluster to the *center* of another merges the two clusters,
//!   trading Center's high precision for recall.
//!
//! These are the Dirty ER ancestors of the paper's `RSR` (which adapts the
//! same framework's Ricochet family to bipartite graphs). Both run in
//! `O(m log m)` — the sort dominates.

use er_core::UnionFind;

use crate::graph::{DirtyEdge, DirtyGraph};
use crate::partition::Partition;

/// Per-node state during the scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Unassigned,
    Center,
    Member,
}

/// Retained edges in descending weight order with deterministic
/// tie-breaking (lower `(a, b)` first).
fn sorted_edges(g: &DirtyGraph, t: f64) -> Vec<DirtyEdge> {
    let mut edges: Vec<DirtyEdge> = g
        .edges()
        .iter()
        .copied()
        .filter(|e| e.weight >= t)
        .collect();
    edges.sort_unstable_by(|x, y| {
        y.weight
            .total_cmp(&x.weight)
            .then_with(|| x.a.cmp(&y.a))
            .then_with(|| x.b.cmp(&y.b))
    });
    edges
}

/// Center clustering: star clusters around greedily chosen centers.
pub fn center_clustering(g: &DirtyGraph, t: f64) -> Partition {
    let n = g.n_nodes() as usize;
    let mut state = vec![State::Unassigned; n];
    let mut cluster = vec![u32::MAX; n];
    let mut next = 0u32;

    for e in sorted_edges(g, t) {
        let (a, b) = (e.a as usize, e.b as usize);
        match (state[a], state[b]) {
            (State::Unassigned, State::Unassigned) => {
                // The lower-id endpoint of the heaviest edge becomes the
                // center; the other joins its star.
                state[a] = State::Center;
                state[b] = State::Member;
                cluster[a] = next;
                cluster[b] = next;
                next += 1;
            }
            (State::Center, State::Unassigned) => {
                state[b] = State::Member;
                cluster[b] = cluster[a];
            }
            (State::Unassigned, State::Center) => {
                state[a] = State::Member;
                cluster[a] = cluster[b];
            }
            // Member-unassigned, member-member, center-center,
            // center-member: skipped — stars never chain.
            _ => {}
        }
    }

    for c in &mut cluster {
        if *c == u32::MAX {
            *c = next;
            next += 1;
        }
    }
    Partition::from_assignments(&cluster)
}

/// Merge-Center clustering: like Center, but clusters merge when an edge
/// reaches another cluster's center.
pub fn merge_center_clustering(g: &DirtyGraph, t: f64) -> Partition {
    let n = g.n_nodes() as usize;
    let mut state = vec![State::Unassigned; n];
    // Union-find over *nodes*; a cluster is the set of nodes merged with
    // its center(s).
    let mut uf = UnionFind::new(n);

    for e in sorted_edges(g, t) {
        let (a, b) = (e.a as usize, e.b as usize);
        match (state[a], state[b]) {
            (State::Unassigned, State::Unassigned) => {
                state[a] = State::Center;
                state[b] = State::Member;
                uf.union(e.a, e.b);
            }
            (State::Center, State::Unassigned) => {
                state[b] = State::Member;
                uf.union(e.a, e.b);
            }
            (State::Unassigned, State::Center) => {
                state[a] = State::Member;
                uf.union(e.a, e.b);
            }
            // An edge into a center from any *assigned* node merges the
            // two clusters (this is the one rule Merge-Center adds).
            (State::Center, State::Member)
            | (State::Member, State::Center)
            | (State::Center, State::Center) => {
                uf.union(e.a, e.b);
            }
            _ => {}
        }
    }

    let raw: Vec<u32> = (0..g.n_nodes()).map(|v| uf.find(v)).collect();
    Partition::from_assignments(&raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DirtyGraphBuilder;

    /// A chain 0-1-2 with strong edges: Center splits it (stars do not
    /// chain), Merge-Center may merge through the shared center.
    fn chain() -> DirtyGraph {
        let mut b = DirtyGraphBuilder::new(3);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.8).unwrap();
        b.build()
    }

    #[test]
    fn center_stars_do_not_chain() {
        let p = center_clustering(&chain(), 0.5);
        // Edge (0,1): 0 center, 1 member. Edge (1,2): 1 is a member →
        // skipped, 2 stays singleton.
        assert!(p.same_cluster(0, 1));
        assert!(!p.same_cluster(1, 2));
        assert_eq!(p.n_clusters(), 2);
    }

    #[test]
    fn merge_center_merges_through_centers() {
        // Two stars {0 ← 1} and {2 ← 3}; the late member-to-center edge
        // (1, 2) merges them under Merge-Center but not under Center.
        let mut b = DirtyGraphBuilder::new(4);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(2, 3, 0.85).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        let g = b.build();
        let m = merge_center_clustering(&g, 0.0);
        assert!(m.same_cluster(0, 1));
        assert!(m.same_cluster(2, 3));
        assert!(m.same_cluster(1, 2), "member-to-center contact merges");
        assert_eq!(m.n_clusters(), 1);
        let c = center_clustering(&g, 0.0);
        assert!(!c.same_cluster(1, 2), "Center never merges stars");
        assert_eq!(c.n_clusters(), 2);
    }

    #[test]
    fn center_prefers_heaviest_edges() {
        // 1-2 is the heaviest edge, so 1 centers {1,2}; 0 then attaches to
        // nobody (its only edge reaches member 2? no — center 1).
        let mut b = DirtyGraphBuilder::new(3);
        b.add_edge(1, 2, 0.9).unwrap();
        b.add_edge(0, 1, 0.8).unwrap();
        let p = center_clustering(&b.build(), 0.0);
        assert!(p.same_cluster(1, 2));
        assert!(p.same_cluster(0, 1), "0 attaches to center 1");
        assert_eq!(p.n_clusters(), 1);
    }

    #[test]
    fn both_respect_threshold() {
        let mut b = DirtyGraphBuilder::new(2);
        b.add_edge(0, 1, 0.4).unwrap();
        let g = b.build();
        assert_eq!(center_clustering(&g, 0.5).n_clusters(), 2);
        assert_eq!(merge_center_clustering(&g, 0.5).n_clusters(), 2);
        assert_eq!(center_clustering(&g, 0.4).n_clusters(), 1);
    }

    #[test]
    fn deterministic_under_ties() {
        let mut b = DirtyGraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(2, 3, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        let g = b.build();
        let p1 = center_clustering(&g, 0.0);
        let p2 = center_clustering(&g, 0.0);
        assert_eq!(p1, p2);
        // Tie-break order: (0,1) first → 0 centers {0,1}; then (1,2):
        // member-unassigned, skipped; then (2,3): 2 centers {2,3}.
        assert!(p1.same_cluster(0, 1));
        assert!(p1.same_cluster(2, 3));
        assert!(!p1.same_cluster(1, 2));
    }

    #[test]
    fn merge_center_is_at_least_as_coarse_as_center() {
        let g = chain();
        let c = center_clustering(&g, 0.0);
        let m = merge_center_clustering(&g, 0.0);
        assert!(m.n_clusters() <= c.n_clusters());
    }
}
