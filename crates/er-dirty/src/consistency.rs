//! Global Edge Consistency Gain clustering.
//!
//! One of the recent Dirty ER methods cited by the paper's related work:
//! "after estimating the connected components, \[it\] iteratively switches
//! the label of edges so as to maximize the overall consistency, i.e., the
//! number of triangles with the same label in all edges."
//!
//! An edge label is *positive* (the endpoints co-refer) or *negative*. A
//! triangle is **consistent** when its labels are transitively coherent —
//! all three positive, or at most one positive. Exactly two positive edges
//! violate transitivity (`a ~ b`, `b ~ c`, but `a ≁ c`). The algorithm is
//! a deterministic local search: sweep the edges, flip any label whose
//! flip strictly increases the number of consistent triangles, repeat
//! until a sweep makes no flip (or the sweep budget is exhausted — the
//! search space is finite and each flip strictly increases a bounded
//! objective, so termination is guaranteed even without the budget).
//! Clusters are the connected components of the finally-positive edges.

use er_core::{FxHashMap, UnionFind};

use crate::graph::DirtyGraph;
use crate::partition::Partition;

/// Configuration for [`global_edge_consistency_gain`].
#[derive(Debug, Clone, Copy)]
pub struct GecgConfig {
    /// Maximum number of full edge sweeps (defensive bound; the search
    /// terminates by itself).
    pub max_sweeps: usize,
}

impl Default for GecgConfig {
    fn default() -> Self {
        GecgConfig { max_sweeps: 32 }
    }
}

/// Run Global Edge Consistency Gain over edges with `weight >= t`.
///
/// Complexity: triangle enumeration is `O(Σ min(deg))` over retained
/// edges; each sweep is `O(m + T)` with `T` the triangle count.
pub fn global_edge_consistency_gain(g: &DirtyGraph, t: f64, cfg: GecgConfig) -> Partition {
    let n = g.n_nodes() as usize;

    // Retained edges, indexed; all start positive (they survived the
    // threshold, i.e. the connected-components estimate).
    let retained: Vec<(u32, u32)> = g
        .edges()
        .iter()
        .filter(|e| e.weight >= t)
        .map(|e| (e.a, e.b))
        .collect();
    let m = retained.len();
    if m == 0 {
        return Partition::singletons(g.n_nodes());
    }
    let mut edge_id: FxHashMap<(u32, u32), usize> = FxHashMap::default();
    edge_id.reserve(m);
    for (i, &e) in retained.iter().enumerate() {
        edge_id.insert(e, i);
    }

    // Neighbor sets (sorted) for triangle enumeration.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(a, b) in &retained {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    }
    for l in &mut adj {
        l.sort_unstable();
    }

    // Enumerate each triangle once (a < b < c) and record, per edge, the
    // triangles it participates in.
    let mut triangles: Vec<[usize; 3]> = Vec::new();
    let mut edge_triangles: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (i, &(a, b)) in retained.iter().enumerate() {
        // Common neighbors c > b keep each triangle unique.
        let (la, lb) = (&adj[a as usize], &adj[b as usize]);
        let mut pa = la.partition_point(|&x| x <= b);
        let mut pb = lb.partition_point(|&x| x <= b);
        while pa < la.len() && pb < lb.len() {
            match la[pa].cmp(&lb[pb]) {
                std::cmp::Ordering::Less => pa += 1,
                std::cmp::Ordering::Greater => pb += 1,
                std::cmp::Ordering::Equal => {
                    let c = la[pa];
                    let j = edge_id[&(a, c)];
                    let k = edge_id[&(b, c)];
                    let tid = triangles.len();
                    triangles.push([i, j, k]);
                    edge_triangles[i].push(tid);
                    edge_triangles[j].push(tid);
                    edge_triangles[k].push(tid);
                    pa += 1;
                    pb += 1;
                }
            }
        }
    }

    let mut positive = vec![true; m];
    // positives_in[t] = number of positive edges in triangle t (0..=3).
    let mut positives_in: Vec<u8> = vec![3; triangles.len()];

    // A triangle is consistent unless exactly two of its edges are
    // positive.
    let consistent = |p: u8| p != 2;

    for _ in 0..cfg.max_sweeps {
        let mut flipped = false;
        for e in 0..m {
            // Gain of flipping edge e = Δ(consistent triangles).
            let delta: i64 = edge_triangles[e]
                .iter()
                .map(|&tid| {
                    let p = positives_in[tid];
                    let np = if positive[e] { p - 1 } else { p + 1 };
                    consistent(np) as i64 - consistent(p) as i64
                })
                .sum();
            if delta > 0 {
                positive[e] = !positive[e];
                for &tid in &edge_triangles[e] {
                    if positive[e] {
                        positives_in[tid] += 1;
                    } else {
                        positives_in[tid] -= 1;
                    }
                }
                flipped = true;
            }
        }
        if !flipped {
            break;
        }
    }

    let mut uf = UnionFind::new(n);
    for (e, &(a, b)) in retained.iter().enumerate() {
        if positive[e] {
            uf.union(a, b);
        }
    }
    let raw: Vec<u32> = (0..g.n_nodes()).map(|v| uf.find(v)).collect();
    Partition::from_assignments(&raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connected::connected_components;
    use crate::graph::DirtyGraphBuilder;

    #[test]
    fn triangle_free_graph_equals_connected_components() {
        // No triangles → no flip can ever gain → identical to CC.
        let mut b = DirtyGraphBuilder::new(5);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.8).unwrap();
        b.add_edge(3, 4, 0.7).unwrap();
        let g = b.build();
        let gecg = global_edge_consistency_gain(&g, 0.5, GecgConfig::default());
        let cc = connected_components(&g, 0.5);
        assert_eq!(gecg, cc);
    }

    #[test]
    fn open_triangle_resolution() {
        // Two triangles sharing edge (1,2): {0,1,2} closed, {1,2,3} open
        // at (1,3)… build a "bowtie" where one wing is a full triangle and
        // the other is a path. All labels positive: triangle 1 consistent
        // (3 positives), no other triangles exist → nothing flips and all
        // four nodes join one component.
        let mut b = DirtyGraphBuilder::new(4);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(0, 2, 0.9).unwrap();
        b.add_edge(1, 2, 0.9).unwrap();
        b.add_edge(2, 3, 0.9).unwrap();
        let p = global_edge_consistency_gain(&b.build(), 0.5, GecgConfig::default());
        assert_eq!(p.n_clusters(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = DirtyGraphBuilder::new(4).build();
        let p = global_edge_consistency_gain(&g, 0.0, GecgConfig::default());
        assert_eq!(p, Partition::singletons(4));
    }

    #[test]
    fn consistency_never_below_initial() {
        // K4 minus one edge has two triangles, each with 3 positives
        // initially (consistent) — flipping anything would break one, so
        // the labeling is stable and the cluster stays whole.
        let mut b = DirtyGraphBuilder::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v, 0.9).unwrap();
        }
        let p = global_edge_consistency_gain(&b.build(), 0.5, GecgConfig::default());
        assert_eq!(p.n_clusters(), 1);
        assert_eq!(p.max_cluster_size(), 4);
    }

    #[test]
    fn sweep_budget_is_respected() {
        let mut b = DirtyGraphBuilder::new(3);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.9).unwrap();
        b.add_edge(0, 2, 0.9).unwrap();
        let g = b.build();
        // Zero sweeps: everything stays positive, one component.
        let p = global_edge_consistency_gain(&g, 0.0, GecgConfig { max_sweeps: 0 });
        assert_eq!(p.n_clusters(), 1);
    }
}
