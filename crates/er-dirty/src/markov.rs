//! Markov Clustering (MCL) — van Dongen's flow-simulation clustering, one
//! of the algorithms in Hassanzadeh et al.'s Dirty ER framework.
//!
//! MCL simulates random walks on the similarity graph: *expansion* (matrix
//! self-multiplication) spreads probability mass along paths, *inflation*
//! (entry-wise power followed by column re-normalization) sharpens the
//! distribution toward the strongest flows. Iterating the two drives the
//! column-stochastic matrix to a doubly-idempotent limit whose attractor
//! structure defines the clusters — dense regions keep their flow,
//! inter-cluster edges starve.
//!
//! Implementation notes:
//! * columns are stored sparsely; entries below a pruning floor are
//!   dropped each round to keep expansion near `O(Σ col_nnz²)`;
//! * self-loops of weight 1 are added before normalization (the standard
//!   regularization, preventing parity oscillation);
//! * clusters are read as the connected components of the non-negligible
//!   support of the limit matrix, which also assigns overlapping
//!   attractors deterministically.

use er_core::{FxHashMap, UnionFind};

use crate::graph::DirtyGraph;
use crate::partition::Partition;

/// Configuration for [`markov_clustering`].
#[derive(Debug, Clone, Copy)]
pub struct MclConfig {
    /// Inflation exponent `r > 1`; higher values yield finer clusters.
    pub inflation: f64,
    /// Maximum expansion/inflation rounds.
    pub max_iterations: usize,
    /// Entries below this are pruned after every round.
    pub prune_below: f64,
    /// Convergence: stop when no entry changes by more than this.
    pub tolerance: f64,
}

impl Default for MclConfig {
    fn default() -> Self {
        MclConfig {
            inflation: 2.0,
            max_iterations: 64,
            prune_below: 1e-5,
            tolerance: 1e-6,
        }
    }
}

/// Sparse column-stochastic matrix: one map per column.
type Columns = Vec<FxHashMap<u32, f64>>;

/// Run Markov Clustering over edges with `weight >= t`.
pub fn markov_clustering(g: &DirtyGraph, t: f64, cfg: MclConfig) -> Partition {
    let n = g.n_nodes() as usize;
    if n == 0 {
        return Partition::singletons(0);
    }

    // Initial matrix: retained weights + unit self-loops, column-normalized.
    let mut cols: Columns = vec![FxHashMap::default(); n];
    for (v, col) in cols.iter_mut().enumerate() {
        col.insert(v as u32, 1.0);
    }
    for e in g.edges() {
        if e.weight >= t {
            cols[e.a as usize].insert(e.b, e.weight);
            cols[e.b as usize].insert(e.a, e.weight);
        }
    }
    normalize(&mut cols);

    for _ in 0..cfg.max_iterations {
        let expanded = expand(&cols, cfg.prune_below);
        let mut next = expanded;
        inflate(&mut next, cfg.inflation, cfg.prune_below);
        let delta = max_delta(&cols, &next);
        cols = next;
        if delta <= cfg.tolerance {
            break;
        }
    }

    // Clusters: connected components of the limit support.
    let mut uf = UnionFind::new(n);
    for (v, col) in cols.iter().enumerate() {
        for (&u, &p) in col {
            if p > cfg.prune_below {
                uf.union(v as u32, u);
            }
        }
    }
    let raw: Vec<u32> = (0..n as u32).map(|v| uf.find(v)).collect();
    Partition::from_assignments(&raw)
}

/// Column-normalize in place; empty columns get a self-loop.
fn normalize(cols: &mut Columns) {
    for (v, col) in cols.iter_mut().enumerate() {
        let sum: f64 = col.values().sum();
        if sum <= 0.0 {
            col.clear();
            col.insert(v as u32, 1.0);
        } else {
            for p in col.values_mut() {
                *p /= sum;
            }
        }
    }
}

/// One expansion step `M ← M²` with pruning.
fn expand(cols: &Columns, prune: f64) -> Columns {
    let mut out: Columns = vec![FxHashMap::default(); cols.len()];
    for (j, col) in cols.iter().enumerate() {
        let dst = &mut out[j];
        // Column j of M² = Σ_k M[·,k] · M[k,j].
        for (&k, &pkj) in col {
            for (&i, &pik) in &cols[k as usize] {
                *dst.entry(i).or_insert(0.0) += pik * pkj;
            }
        }
        dst.retain(|_, p| *p >= prune);
    }
    out
}

/// Inflation: entry-wise power, prune, re-normalize.
fn inflate(cols: &mut Columns, r: f64, prune: f64) {
    for col in cols.iter_mut() {
        for p in col.values_mut() {
            *p = p.powf(r);
        }
        col.retain(|_, p| *p >= prune);
    }
    normalize(cols);
}

/// Largest absolute entry-wise difference between two matrices.
fn max_delta(a: &Columns, b: &Columns) -> f64 {
    let mut d = 0.0f64;
    for (ca, cb) in a.iter().zip(b) {
        for (&i, &p) in ca {
            d = d.max((p - cb.get(&i).copied().unwrap_or(0.0)).abs());
        }
        for (&i, &p) in cb {
            d = d.max((p - ca.get(&i).copied().unwrap_or(0.0)).abs());
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DirtyGraphBuilder;

    #[test]
    fn two_dense_communities_with_a_weak_bridge() {
        // Two triangles joined by one weak edge: MCL must cut the bridge.
        let mut b = DirtyGraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 0.9).unwrap();
        }
        b.add_edge(2, 3, 0.15).unwrap();
        let p = markov_clustering(&b.build(), 0.1, MclConfig::default());
        assert_eq!(p.n_clusters(), 2);
        assert!(p.same_cluster(0, 2));
        assert!(p.same_cluster(3, 5));
        assert!(!p.same_cluster(2, 3), "the weak bridge is cut");
    }

    #[test]
    fn strong_bridge_is_kept() {
        let mut b = DirtyGraphBuilder::new(4);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.9).unwrap();
        b.add_edge(2, 3, 0.9).unwrap();
        // A short equal-weight path coheres into one cluster.
        let p = markov_clustering(&b.build(), 0.5, MclConfig::default());
        assert!(p.same_cluster(0, 1));
        assert!(p.same_cluster(2, 3));
    }

    #[test]
    fn higher_inflation_is_at_least_as_fine() {
        let mut b = DirtyGraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 0.8).unwrap();
        }
        b.add_edge(2, 3, 0.5).unwrap();
        let g = b.build();
        let coarse = markov_clustering(
            &g,
            0.0,
            MclConfig {
                inflation: 1.2,
                ..MclConfig::default()
            },
        );
        let fine = markov_clustering(
            &g,
            0.0,
            MclConfig {
                inflation: 6.0,
                ..MclConfig::default()
            },
        );
        assert!(fine.n_clusters() >= coarse.n_clusters());
    }

    #[test]
    fn threshold_and_empty_graph() {
        let mut b = DirtyGraphBuilder::new(2);
        b.add_edge(0, 1, 0.4).unwrap();
        let g = b.build();
        assert_eq!(
            markov_clustering(&g, 0.5, MclConfig::default()).n_clusters(),
            2
        );
        let empty = DirtyGraphBuilder::new(3).build();
        assert_eq!(
            markov_clustering(&empty, 0.0, MclConfig::default()),
            Partition::singletons(3)
        );
        assert_eq!(
            markov_clustering(
                &DirtyGraphBuilder::new(0).build(),
                0.0,
                MclConfig::default()
            )
            .n_nodes(),
            0
        );
    }

    #[test]
    fn deterministic() {
        let mut b = DirtyGraphBuilder::new(5);
        for (u, v, w) in [
            (0, 1, 0.7),
            (1, 2, 0.6),
            (2, 3, 0.8),
            (3, 4, 0.5),
            (0, 4, 0.4),
        ] {
            b.add_edge(u, v, w).unwrap();
        }
        let g = b.build();
        let a = markov_clustering(&g, 0.0, MclConfig::default());
        let b2 = markov_clustering(&g, 0.0, MclConfig::default());
        assert_eq!(a, b2);
    }
}
