//! Connected-components clustering for Dirty ER.
//!
//! The transitive-closure baseline of Hassanzadeh et al.'s evaluation
//! framework: retain edges with `weight >= t` and emit each connected
//! component as one cluster. Unlike the CCER `CNC`, components of *any*
//! size are kept — a dirty collection may hold many duplicates of the same
//! real-world entity.

use er_core::UnionFind;

use crate::graph::DirtyGraph;
use crate::partition::Partition;

/// Cluster a dirty similarity graph into its connected components over
/// edges with `weight >= t`. Runs in `O(n + m α(n))`.
pub fn connected_components(g: &DirtyGraph, t: f64) -> Partition {
    let n = g.n_nodes();
    let mut uf = UnionFind::new(n as usize);
    for e in g.edges() {
        if e.weight >= t {
            uf.union(e.a, e.b);
        }
    }
    let raw: Vec<u32> = (0..n).map(|v| uf.find(v)).collect();
    Partition::from_assignments(&raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DirtyGraphBuilder;

    fn path_graph(weights: &[f64]) -> DirtyGraph {
        let mut b = DirtyGraphBuilder::new(weights.len() as u32 + 1);
        for (i, &w) in weights.iter().enumerate() {
            b.add_edge(i as u32, i as u32 + 1, w).unwrap();
        }
        b.build()
    }

    #[test]
    fn components_respect_threshold() {
        // 0-1 (0.9), 1-2 (0.3), 2-3 (0.8): at t=0.5 the middle edge breaks.
        let g = path_graph(&[0.9, 0.3, 0.8]);
        let p = connected_components(&g, 0.5);
        assert_eq!(p.n_clusters(), 2);
        assert!(p.same_cluster(0, 1));
        assert!(p.same_cluster(2, 3));
        assert!(!p.same_cluster(1, 2));
    }

    #[test]
    fn threshold_is_inclusive() {
        let g = path_graph(&[0.5]);
        assert_eq!(connected_components(&g, 0.5).n_clusters(), 1);
        assert_eq!(connected_components(&g, 0.5 + 1e-9).n_clusters(), 2);
    }

    #[test]
    fn empty_graph_gives_singletons() {
        let g = DirtyGraphBuilder::new(3).build();
        let p = connected_components(&g, 0.0);
        assert_eq!(p.n_clusters(), 3);
        assert_eq!(p.n_intra_pairs(), 0);
    }

    #[test]
    fn large_component_is_kept_whole() {
        // A triangle plus a pendant: all one cluster at t=0 — Dirty ER
        // keeps components of any size.
        let mut b = DirtyGraphBuilder::new(4);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.9).unwrap();
        b.add_edge(0, 2, 0.9).unwrap();
        b.add_edge(2, 3, 0.6).unwrap();
        let p = connected_components(&b.build(), 0.5);
        assert_eq!(p.n_clusters(), 1);
        assert_eq!(p.max_cluster_size(), 4);
    }
}
