//! Sequential Rippling clustering (Wijaya & Bressan's Ricochet family, as
//! evaluated for Dirty ER by Hassanzadeh et al.).
//!
//! This is the direct ancestor of the paper's `RSR`: seeds are taken from
//! the node list in descending order of average adjacent weight; each new
//! seed "ripples" outward, claiming every neighbor that is unassigned or
//! strictly closer to the new seed than to its current cluster's center.
//! A cluster whose re-assignments reduce it to a lone center is dissolved
//! into the nearest assigned neighbor's cluster. The CCER adaptation in
//! `er_matchers::rsr` restricts claims to one node per seed and filters
//! the output to valid one-per-side pairs; here clusters grow without
//! bound, as Dirty ER requires.
//!
//! Complexity: `O(n·m)` worst case (each seed scans its adjacency; every
//! node is a seed candidate once).

use crate::graph::DirtyGraph;
use crate::partition::Partition;

/// Marker: node not assigned to any cluster.
const FREE: u32 = u32::MAX;

/// Sequential Rippling over edges with `weight >= t`.
pub fn sequential_rippling(g: &DirtyGraph, t: f64) -> Partition {
    let n = g.n_nodes() as usize;
    let adj = g.adjacency_at(t);

    // Seed order: average adjacent weight descending, id ascending.
    let mut order: Vec<u32> = (0..g.n_nodes()).collect();
    order.sort_by(|&a, &b| {
        adj.avg_weight(b)
            .total_cmp(&adj.avg_weight(a))
            .then_with(|| a.cmp(&b))
    });

    // Cluster state, keyed by the center's node id.
    let mut center_of = vec![FREE; n]; // cluster (center id) per node
    let mut sim_with_center = vec![0.0f64; n];
    let mut is_center = vec![false; n];
    let mut size = vec![0u32; n]; // members incl. center, per center id

    for v in order {
        let vu = v as usize;
        if is_center[vu] {
            continue; // already anchors a cluster
        }

        // Ripple: claim every neighbor that is free or strictly closer.
        let mut orphaned_centers: Vec<u32> = Vec::new();
        let mut claimed: Vec<(u32, f64)> = Vec::new();
        for &(u, sim) in adj.neighbors(v) {
            let uu = u as usize;
            if is_center[uu] || sim <= sim_with_center[uu] {
                continue;
            }
            let old = center_of[uu];
            if old != FREE {
                size[old as usize] -= 1;
                if size[old as usize] == 1 {
                    orphaned_centers.push(old);
                }
            }
            claimed.push((u, sim));
        }

        if !claimed.is_empty() {
            // v becomes a center; detach it from any previous cluster.
            let old = center_of[vu];
            if old != FREE && old != v {
                size[old as usize] -= 1;
                if size[old as usize] == 1 {
                    orphaned_centers.push(old);
                }
            }
            is_center[vu] = true;
            center_of[vu] = v;
            sim_with_center[vu] = 1.0;
            size[vu] = 1 + claimed.len() as u32;
            for (u, sim) in claimed {
                center_of[u as usize] = v;
                sim_with_center[u as usize] = sim;
            }
        }

        // Dissolve clusters reduced to their lone center: the center joins
        // its most similar assigned neighbor's cluster (if any).
        for c in orphaned_centers {
            let cu = c as usize;
            if size[cu] != 1 || !is_center[cu] {
                continue; // regained members or already dissolved
            }
            let target = adj
                .neighbors(c)
                .iter()
                .find(|&&(u, _)| center_of[u as usize] != FREE && center_of[u as usize] != c);
            if let Some(&(u, sim)) = target {
                let host = center_of[u as usize];
                is_center[cu] = false;
                size[cu] = 0;
                center_of[cu] = host;
                sim_with_center[cu] = sim;
                size[host as usize] += 1;
            }
        }
    }

    // Unassigned nodes are singletons (their own cluster id).
    let raw: Vec<u32> = center_of
        .iter()
        .enumerate()
        .map(|(v, &c)| if c == FREE { v as u32 } else { c })
        .collect();
    Partition::from_assignments(&raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DirtyGraphBuilder;

    #[test]
    fn seed_ripples_over_all_neighbors() {
        // Hub 0 with three spokes: the hub has the highest average weight
        // among... actually node 1 (single 0.9 edge) sorts first, claims 0;
        // then 0 is a member but becomes a seed later and steals nothing
        // (its neighbors are closer to it? 2 and 3 are free → claimed).
        let mut b = DirtyGraphBuilder::new(4);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(0, 2, 0.8).unwrap();
        b.add_edge(0, 3, 0.7).unwrap();
        let p = sequential_rippling(&b.build(), 0.5);
        // All four nodes end up connected to 0's cluster structure: 1
        // seeds {1, 0}, then 0 seeds and claims 2 and 3 (free), detaching
        // from 1, whose cluster dissolves into 0's.
        assert_eq!(p.n_clusters(), 1);
        assert_eq!(p.max_cluster_size(), 4);
    }

    #[test]
    fn closer_seed_steals_members() {
        // Chain: 0-1 (0.6), 1-2 (0.9). Seed order by avg: 2 (0.9),
        // 1 (0.75), 0 (0.6). Seed 2 claims 1. Seed 1: is a member; its
        // neighbors: 2 is a center (skip), 0 free → claims 0, becomes a
        // center, detaches from 2 → cluster {2} dissolves into 1's cluster
        // via its nearest assigned neighbor.
        let mut b = DirtyGraphBuilder::new(3);
        b.add_edge(0, 1, 0.6).unwrap();
        b.add_edge(1, 2, 0.9).unwrap();
        let p = sequential_rippling(&b.build(), 0.5);
        assert_eq!(p.n_clusters(), 1);
        assert!(p.same_cluster(0, 1) && p.same_cluster(1, 2));
    }

    #[test]
    fn threshold_respected() {
        let mut b = DirtyGraphBuilder::new(2);
        b.add_edge(0, 1, 0.4).unwrap();
        let g = b.build();
        assert_eq!(sequential_rippling(&g, 0.5).n_clusters(), 2);
        assert_eq!(sequential_rippling(&g, 0.4).n_clusters(), 1);
    }

    #[test]
    fn empty_graph_gives_singletons() {
        let g = DirtyGraphBuilder::new(5).build();
        assert_eq!(sequential_rippling(&g, 0.0), Partition::singletons(5));
    }

    #[test]
    fn two_separate_pairs_stay_separate() {
        let mut b = DirtyGraphBuilder::new(4);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(2, 3, 0.8).unwrap();
        let p = sequential_rippling(&b.build(), 0.5);
        assert_eq!(p.n_clusters(), 2);
        assert!(p.same_cluster(0, 1));
        assert!(p.same_cluster(2, 3));
        assert!(!p.same_cluster(1, 2));
    }

    #[test]
    fn deterministic() {
        let mut b = DirtyGraphBuilder::new(5);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(2, 3, 0.5).unwrap();
        b.add_edge(3, 4, 0.5).unwrap();
        let g = b.build();
        assert_eq!(sequential_rippling(&g, 0.0), sequential_rippling(&g, 0.0));
    }
}
