//! Node partitions (clusterings) and pairwise evaluation.
//!
//! Dirty ER output is a partition of the node set into equivalence
//! clusters of *any* size (unlike CCER's ≤ 2). Effectiveness is measured
//! at the pair level: a predicted pair is every unordered node pair that
//! shares a cluster; precision/recall/F1 follow against the ground-truth
//! duplicate pairs, exactly as in Hassanzadeh et al.'s evaluation
//! framework.

use serde::{Deserialize, Serialize};

use er_core::FxHashSet;

/// A partition of nodes `0..n` into disjoint clusters.
///
/// Stored as a dense cluster-id assignment; cluster ids are consecutive
/// from 0 in order of first appearance, which makes equal partitions
/// structurally equal regardless of how they were produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    assign: Vec<u32>,
    n_clusters: u32,
}

impl Partition {
    /// Build from a raw per-node cluster-id vector (ids may be arbitrary;
    /// they are renumbered by first appearance).
    pub fn from_assignments(raw: &[u32]) -> Self {
        let mut remap: er_core::FxHashMap<u32, u32> = er_core::FxHashMap::default();
        let mut assign = Vec::with_capacity(raw.len());
        for &c in raw {
            let next = remap.len() as u32;
            let id = *remap.entry(c).or_insert(next);
            assign.push(id);
        }
        Partition {
            n_clusters: remap.len() as u32,
            assign,
        }
    }

    /// Build from explicit clusters; nodes absent from every cluster get a
    /// singleton each.
    ///
    /// # Panics
    /// Panics if a node id is `>= n` or appears in two clusters.
    pub fn from_clusters(clusters: &[Vec<u32>], n: u32) -> Self {
        const UNSET: u32 = u32::MAX;
        let mut raw = vec![UNSET; n as usize];
        let mut next = 0u32;
        for c in clusters {
            if c.is_empty() {
                continue;
            }
            for &v in c {
                assert!(v < n, "node {v} out of bounds for {n} nodes");
                assert_eq!(raw[v as usize], UNSET, "node {v} in two clusters");
                raw[v as usize] = next;
            }
            next += 1;
        }
        for slot in &mut raw {
            if *slot == UNSET {
                *slot = next;
                next += 1;
            }
        }
        Partition::from_assignments(&raw)
    }

    /// The all-singletons partition over `n` nodes.
    pub fn singletons(n: u32) -> Self {
        Partition {
            assign: (0..n).collect(),
            n_clusters: n,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n_nodes(&self) -> u32 {
        self.assign.len() as u32
    }

    /// Number of clusters (including singletons).
    #[inline]
    pub fn n_clusters(&self) -> u32 {
        self.n_clusters
    }

    /// Cluster id of a node.
    #[inline]
    pub fn cluster_of(&self, v: u32) -> u32 {
        self.assign[v as usize]
    }

    /// Whether two nodes share a cluster.
    #[inline]
    pub fn same_cluster(&self, u: u32, v: u32) -> bool {
        self.assign[u as usize] == self.assign[v as usize]
    }

    /// Materialize the clusters, each sorted ascending, ordered by id.
    pub fn clusters(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.n_clusters as usize];
        for (v, &c) in self.assign.iter().enumerate() {
            out[c as usize].push(v as u32);
        }
        out
    }

    /// Number of intra-cluster (predicted duplicate) pairs: `Σ |c|·(|c|−1)/2`.
    pub fn n_intra_pairs(&self) -> u64 {
        let mut sizes = vec![0u64; self.n_clusters as usize];
        for &c in &self.assign {
            sizes[c as usize] += 1;
        }
        sizes.iter().map(|&s| s * (s - 1) / 2).sum()
    }

    /// Size of the largest cluster (0 for an empty partition).
    pub fn max_cluster_size(&self) -> usize {
        let mut sizes = vec![0usize; self.n_clusters as usize];
        for &c in &self.assign {
            sizes[c as usize] += 1;
        }
        sizes.into_iter().max().unwrap_or(0)
    }
}

/// Pair-level effectiveness of a partition against ground-truth duplicate
/// pairs (unordered node-id pairs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairScores {
    /// Correct predicted pairs / all predicted pairs (1 when nothing is
    /// predicted).
    pub precision: f64,
    /// Correct predicted pairs / all true pairs (1 when there are none).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Number of correctly predicted pairs.
    pub true_positives: u64,
    /// Number of predicted (intra-cluster) pairs.
    pub predicted: u64,
    /// Number of ground-truth pairs.
    pub actual: u64,
}

/// Score a partition against ground-truth duplicate pairs.
///
/// `truth` pairs may be in either order; self-pairs are ignored.
pub fn pairwise_scores(p: &Partition, truth: &[(u32, u32)]) -> PairScores {
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut tp = 0u64;
    let mut actual = 0u64;
    for &(u, v) in truth {
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if !seen.insert(key) {
            continue;
        }
        actual += 1;
        if key.0 < p.n_nodes() && key.1 < p.n_nodes() && p.same_cluster(key.0, key.1) {
            tp += 1;
        }
    }
    let predicted = p.n_intra_pairs();
    let precision = if predicted == 0 {
        1.0
    } else {
        tp as f64 / predicted as f64
    };
    let recall = if actual == 0 {
        1.0
    } else {
        tp as f64 / actual as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PairScores {
        precision,
        recall,
        f1,
        true_positives: tp,
        predicted,
        actual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_assignments_renumbers() {
        let p = Partition::from_assignments(&[7, 7, 3, 7, 3, 9]);
        assert_eq!(p.n_nodes(), 6);
        assert_eq!(p.n_clusters(), 3);
        assert!(p.same_cluster(0, 1));
        assert!(p.same_cluster(2, 4));
        assert!(!p.same_cluster(0, 2));
        assert_eq!(p.cluster_of(0), 0);
        assert_eq!(p.cluster_of(2), 1);
        assert_eq!(p.cluster_of(5), 2);
    }

    #[test]
    fn from_clusters_fills_singletons() {
        let p = Partition::from_clusters(&[vec![1, 3], vec![], vec![0]], 5);
        assert_eq!(p.n_clusters(), 4); // {1,3}, {0}, {2}, {4}
        assert!(p.same_cluster(1, 3));
        assert!(!p.same_cluster(0, 2));
        assert_eq!(p.clusters().iter().map(Vec::len).sum::<usize>(), 5);
    }

    #[test]
    #[should_panic(expected = "two clusters")]
    fn from_clusters_rejects_overlap() {
        let _ = Partition::from_clusters(&[vec![0, 1], vec![1, 2]], 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_clusters_rejects_out_of_bounds() {
        let _ = Partition::from_clusters(&[vec![5]], 3);
    }

    #[test]
    fn intra_pair_counting() {
        // Cluster sizes 3, 2, 1 → 3 + 1 + 0 pairs.
        let p = Partition::from_assignments(&[0, 0, 0, 1, 1, 2]);
        assert_eq!(p.n_intra_pairs(), 4);
        assert_eq!(p.max_cluster_size(), 3);
        assert_eq!(Partition::singletons(4).n_intra_pairs(), 0);
        assert_eq!(Partition::singletons(0).max_cluster_size(), 0);
    }

    #[test]
    fn pairwise_scores_basics() {
        let p = Partition::from_assignments(&[0, 0, 1, 1, 2]);
        // Truth: (0,1) correct, (2,4) missed; duplicate + self entries
        // ignored.
        let s = pairwise_scores(&p, &[(1, 0), (0, 1), (4, 2), (3, 3)]);
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.predicted, 2);
        assert_eq!(s.actual, 2);
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 0.5).abs() < 1e-12);
        assert!((s.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pairwise_scores_degenerate_cases() {
        let p = Partition::singletons(3);
        let s = pairwise_scores(&p, &[]);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
        let s = pairwise_scores(&p, &[(0, 1)]);
        assert_eq!(s.precision, 1.0); // nothing predicted
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
    }
}
