//! Maximum Clique and Extended Maximum Clique clustering.
//!
//! From the paper's related work on recent Dirty ER methods:
//!
//! * **Maximum Clique Clustering (MCC)** "ignores edge weights and
//!   iteratively removes the maximum clique along with its vertices until
//!   all nodes have been assigned to an equivalence cluster."
//! * **Extended Maximum Clique Clustering (EMCC)** "generalizes this
//!   approach … removes maximal cliques from the similarity graph and
//!   enlarges them by adding \[vertices\] that are incident to a minimum
//!   portion of their nodes."
//!
//! Maximum clique is NP-hard in general; we use a Bron–Kerbosch search
//! with pivoting, which is exact and fast on the sparse, small-clique
//! graphs ER produces (cliques are bounded by duplicate-group sizes). The
//! iteration removes one cluster per round, so the overall cost is
//! `O(rounds · BK)`; callers control the worst case through the
//! similarity threshold.

use er_core::FxHashSet;

use crate::graph::DirtyGraph;
use crate::partition::Partition;

/// Cluster by iteratively extracting the maximum clique (ties: the
/// lexicographically smallest vertex set).
pub fn maximum_clique_clustering(g: &DirtyGraph, t: f64) -> Partition {
    clique_clustering(g, t, None)
}

/// Extended variant: each extracted maximum clique `C` is enlarged with
/// every remaining vertex adjacent to at least `min_portion · |C|` of its
/// members (computed against the original clique, then removed together).
///
/// `min_portion` is clamped to `(0, 1]`; `1.0` degenerates to [`maximum_clique_clustering`]
/// on clique-closed neighborhoods.
pub fn extended_maximum_clique_clustering(g: &DirtyGraph, t: f64, min_portion: f64) -> Partition {
    let p = min_portion.clamp(f64::MIN_POSITIVE, 1.0);
    clique_clustering(g, t, Some(p))
}

fn clique_clustering(g: &DirtyGraph, t: f64, extend_portion: Option<f64>) -> Partition {
    let n = g.n_nodes() as usize;
    let mut adj: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); n];
    for e in g.edges() {
        if e.weight >= t {
            adj[e.a as usize].insert(e.b);
            adj[e.b as usize].insert(e.a);
        }
    }

    let mut alive: Vec<bool> = (0..n).map(|v| !adj[v].is_empty()).collect();
    let mut clusters: Vec<Vec<u32>> = Vec::new();

    loop {
        let clique = max_clique(&adj, &alive);
        if clique.len() < 2 {
            break;
        }
        let mut cluster = clique.clone();
        if let Some(portion) = extend_portion {
            let need = (portion * clique.len() as f64).ceil() as usize;
            let members: FxHashSet<u32> = clique.iter().copied().collect();
            let mut extension: Vec<u32> = (0..n as u32)
                .filter(|&v| alive[v as usize] && !members.contains(&v))
                .filter(|&v| {
                    let hits = adj[v as usize]
                        .iter()
                        .filter(|u| members.contains(u))
                        .count();
                    hits >= need.max(1)
                })
                .collect();
            cluster.append(&mut extension);
        }
        for &v in &cluster {
            alive[v as usize] = false;
        }
        cluster.sort_unstable();
        clusters.push(cluster);
    }

    Partition::from_clusters(&clusters, g.n_nodes())
}

/// Exact maximum clique over the `alive` vertices (Bron–Kerbosch with
/// pivoting, tracking the best clique). Ties prefer the clique found
/// first under ascending-id expansion, making the result deterministic.
fn max_clique(adj: &[FxHashSet<u32>], alive: &[bool]) -> Vec<u32> {
    let candidates: Vec<u32> = (0..adj.len() as u32)
        .filter(|&v| alive[v as usize])
        .collect();
    let mut best: Vec<u32> = Vec::new();
    let mut current: Vec<u32> = Vec::new();
    let alive_neighbors = |v: u32| -> Vec<u32> {
        let mut ns: Vec<u32> = adj[v as usize]
            .iter()
            .copied()
            .filter(|&u| alive[u as usize])
            .collect();
        ns.sort_unstable();
        ns
    };
    bron_kerbosch(
        &|v| alive_neighbors(v),
        &mut current,
        candidates,
        Vec::new(),
        &mut best,
    );
    best
}

fn bron_kerbosch(
    neighbors: &dyn Fn(u32) -> Vec<u32>,
    current: &mut Vec<u32>,
    mut p: Vec<u32>,
    mut x: Vec<u32>,
    best: &mut Vec<u32>,
) {
    if p.is_empty() && x.is_empty() {
        if current.len() > best.len() {
            *best = current.clone();
        }
        return;
    }
    // Bound: even taking all of P cannot beat the best found.
    if current.len() + p.len() <= best.len() {
        return;
    }
    // Pivot: the vertex of P ∪ X with the most neighbors in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| {
            let ns = neighbors(u);
            p.iter().filter(|v| ns.binary_search(v).is_ok()).count()
        })
        .expect("P ∪ X non-empty");
    let pivot_ns = neighbors(pivot);
    let expand: Vec<u32> = p
        .iter()
        .copied()
        .filter(|v| pivot_ns.binary_search(v).is_err())
        .collect();

    for v in expand {
        let ns = neighbors(v);
        let p2: Vec<u32> = p
            .iter()
            .copied()
            .filter(|u| ns.binary_search(u).is_ok())
            .collect();
        let x2: Vec<u32> = x
            .iter()
            .copied()
            .filter(|u| ns.binary_search(u).is_ok())
            .collect();
        current.push(v);
        bron_kerbosch(neighbors, current, p2, x2, best);
        current.pop();
        p.retain(|&u| u != v);
        x.push(v);
        x.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DirtyGraphBuilder;

    fn graph(n: u32, edges: &[(u32, u32)]) -> DirtyGraph {
        let mut b = DirtyGraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v, 0.9).unwrap();
        }
        b.build()
    }

    #[test]
    fn extracts_the_triangle_before_the_edge() {
        // Triangle {0,1,2} plus edge {3,4}.
        let g = graph(5, &[(0, 1), (0, 2), (1, 2), (3, 4)]);
        let p = maximum_clique_clustering(&g, 0.5);
        assert!(p.same_cluster(0, 1) && p.same_cluster(1, 2));
        assert!(p.same_cluster(3, 4));
        assert!(!p.same_cluster(0, 3));
        assert_eq!(p.n_clusters(), 2);
    }

    #[test]
    fn clique_extraction_splits_overlaps() {
        // K4 {0,1,2,3} sharing node 3 with triangle {3,4,5}: MCC takes the
        // K4 first, leaving only edge (4,5).
        let g = graph(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (3, 5),
                (4, 5),
            ],
        );
        let p = maximum_clique_clustering(&g, 0.5);
        assert_eq!(p.max_cluster_size(), 4);
        assert!(p.same_cluster(4, 5));
        assert!(!p.same_cluster(3, 4), "3 left with the K4");
    }

    #[test]
    fn weights_are_ignored_above_threshold() {
        let mut b = DirtyGraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.99).unwrap();
        b.add_edge(0, 2, 0.5).unwrap();
        let p = maximum_clique_clustering(&b.build(), 0.5);
        assert_eq!(p.n_clusters(), 1, "the triangle wins regardless of weights");
    }

    #[test]
    fn emcc_extends_with_well_attached_vertices() {
        // Triangle {0,1,2}; vertex 3 adjacent to two of its members.
        let g = graph(4, &[(0, 1), (0, 2), (1, 2), (3, 0), (3, 1)]);
        // Portion 0.5: 3 needs ≥ 2 of 3 members (ceil(1.5)=2) → included.
        let p = extended_maximum_clique_clustering(&g, 0.5, 0.5);
        assert_eq!(p.n_clusters(), 1);
        assert!(p.same_cluster(0, 3));
        // Portion 1.0: 3 needs all 3 members → excluded.
        let p = extended_maximum_clique_clustering(&g, 0.5, 1.0);
        assert!(!p.same_cluster(0, 3));
        assert_eq!(p.max_cluster_size(), 3);
    }

    #[test]
    fn emcc_with_tiny_portion_extends_with_any_neighbor() {
        let g = graph(4, &[(0, 1), (0, 2), (1, 2), (3, 2)]);
        let p = extended_maximum_clique_clustering(&g, 0.5, 1e-9);
        assert_eq!(p.n_clusters(), 1, "one shared edge suffices at ε→0");
    }

    #[test]
    fn isolated_nodes_stay_singletons() {
        let g = graph(4, &[(0, 1)]);
        let p = maximum_clique_clustering(&g, 0.5);
        assert_eq!(p.n_clusters(), 3);
        assert!(!p.same_cluster(2, 3));
    }

    #[test]
    fn empty_graph() {
        let g = DirtyGraphBuilder::new(3).build();
        assert_eq!(maximum_clique_clustering(&g, 0.0), Partition::singletons(3));
        assert_eq!(
            extended_maximum_clique_clustering(&g, 0.0, 0.5),
            Partition::singletons(3)
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let g = graph(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (6, 0),
            ],
        );
        let a = maximum_clique_clustering(&g, 0.0);
        let b = maximum_clique_clustering(&g, 0.0);
        assert_eq!(a, b);
    }
}
