//! Star clustering (Hassanzadeh et al.'s framework).
//!
//! A degree-driven relative of Center clustering: instead of scanning
//! edges by weight, Star repeatedly promotes the unassigned node with the
//! highest retained *degree* to a star center and claims **all** its
//! still-unassigned neighbors as satellites. Unlike Center, a single hub
//! absorbs its whole retained neighborhood at once, trading precision for
//! recall on hub-shaped graphs.
//!
//! Determinism: centers are chosen by (degree desc, average weight desc,
//! node id asc); satellites are the center's retained neighbors in
//! adjacency order. Complexity: `O(n log n + m)` after the adjacency
//! build.

use crate::graph::DirtyGraph;
use crate::partition::Partition;

/// Star clustering over edges with `weight >= t`.
pub fn star_clustering(g: &DirtyGraph, t: f64) -> Partition {
    let n = g.n_nodes() as usize;
    let adj = g.adjacency_at(t);

    // Candidate centers by descending degree (ties: average weight, id).
    let mut order: Vec<u32> = (0..g.n_nodes()).collect();
    order.sort_by(|&a, &b| {
        adj.degree(b)
            .cmp(&adj.degree(a))
            .then_with(|| adj.avg_weight(b).total_cmp(&adj.avg_weight(a)))
            .then_with(|| a.cmp(&b))
    });

    const UNSET: u32 = u32::MAX;
    let mut cluster = vec![UNSET; n];
    let mut next = 0u32;
    for v in order {
        if cluster[v as usize] != UNSET || adj.degree(v) == 0 {
            continue;
        }
        // v becomes a star center; all unassigned neighbors join it.
        cluster[v as usize] = next;
        for &(u, _) in adj.neighbors(v) {
            if cluster[u as usize] == UNSET {
                cluster[u as usize] = next;
            }
        }
        next += 1;
    }
    for c in &mut cluster {
        if *c == UNSET {
            *c = next;
            next += 1;
        }
    }
    Partition::from_assignments(&cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DirtyGraphBuilder;

    #[test]
    fn hub_absorbs_whole_neighborhood() {
        // Node 0 is a hub with three heavy spokes; Center would only take
        // the single heaviest edge per scan step, Star takes all three.
        let mut b = DirtyGraphBuilder::new(4);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(0, 2, 0.8).unwrap();
        b.add_edge(0, 3, 0.7).unwrap();
        let p = star_clustering(&b.build(), 0.5);
        assert_eq!(p.n_clusters(), 1);
        assert_eq!(p.max_cluster_size(), 4);
    }

    #[test]
    fn highest_degree_wins_the_center() {
        // Node 0 (degree 2) is promoted before either leaf, so its star
        // takes both neighbors regardless of the weight imbalance.
        let mut b = DirtyGraphBuilder::new(3);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(0, 2, 0.2).unwrap();
        let p = star_clustering(&b.build(), 0.0);
        assert_eq!(p.n_clusters(), 1);
        assert!(p.same_cluster(0, 1) && p.same_cluster(0, 2));
    }

    #[test]
    fn satellites_do_not_chain() {
        // Path 0-1-2-3 with equal weights: node 1 (degree 2, lower id than
        // the equally-heavy 2) centers {0,1,2}; 3's only neighbor is taken,
        // so it stays a singleton star.
        let mut b = DirtyGraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(2, 3, 0.5).unwrap();
        let p = star_clustering(&b.build(), 0.0);
        assert!(p.same_cluster(0, 1) && p.same_cluster(1, 2));
        assert!(!p.same_cluster(2, 3));
        assert_eq!(p.n_clusters(), 2);
    }

    #[test]
    fn threshold_prunes_inclusively() {
        let mut b = DirtyGraphBuilder::new(2);
        b.add_edge(0, 1, 0.5).unwrap();
        let g = b.build();
        assert_eq!(star_clustering(&g, 0.5).n_clusters(), 1);
        assert_eq!(star_clustering(&g, 0.51).n_clusters(), 2);
    }

    #[test]
    fn empty_graph_gives_singletons() {
        let g = DirtyGraphBuilder::new(3).build();
        assert_eq!(star_clustering(&g, 0.0), Partition::singletons(3));
    }

    #[test]
    fn deterministic_under_ties() {
        let mut b = DirtyGraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(2, 3, 0.5).unwrap();
        let g = b.build();
        assert_eq!(star_clustering(&g, 0.0), star_clustering(&g, 0.0));
        let p = star_clustering(&g, 0.0);
        assert!(p.same_cluster(0, 1));
        assert!(p.same_cluster(2, 3));
    }
}
