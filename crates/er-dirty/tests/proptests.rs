//! Property-based tests over random dirty similarity graphs.
//!
//! Invariants:
//! 1. every algorithm outputs a partition over exactly the input nodes;
//! 2. connected components puts two nodes together iff a retained path
//!    joins them — and every other algorithm *refines* it (no cluster
//!    crosses a component boundary);
//! 3. Merge-Center is a coarsening of Center (their scans make identical
//!    state transitions; Merge-Center only adds unions);
//! 4. every Maximum-Clique cluster of size ≥ 2 is a clique of the
//!    retained graph;
//! 5. every Center cluster of size ≥ 2 is a star (some member is adjacent
//!    to all others);
//! 6. pairwise scores stay in [0, 1] and the F1 is the harmonic mean.

use er_dirty::{
    center_clustering, connected_components, merge_center_clustering, pairwise_scores,
    star_clustering, DirtyAlgorithm, DirtyGraph, DirtyGraphBuilder, Partition,
};
use proptest::prelude::*;

/// Random graph over up to 14 nodes with weights on the 0.05 grid.
fn arb_graph() -> impl Strategy<Value = DirtyGraph> {
    (2u32..14).prop_flat_map(|n| {
        let max_edges = (n * (n - 1) / 2) as usize;
        proptest::collection::btree_map(
            (0..n, 0..n).prop_filter("no self-loops", |(u, v)| u != v),
            0u32..=20,
            0..=max_edges.min(32),
        )
        .prop_map(move |edges| {
            let mut b = DirtyGraphBuilder::new(n);
            for ((u, v), w) in edges {
                // The btree keys are ordered pairs; skip the reversed
                // duplicate of a pair that was already inserted.
                let _ = b.add_edge(u, v, w as f64 * 0.05);
            }
            b.build()
        })
    })
}

fn arb_threshold() -> impl Strategy<Value = f64> {
    (0u32..=20).prop_map(|i| i as f64 * 0.05)
}

/// Reference connectivity: BFS over retained edges.
fn reachable(g: &DirtyGraph, t: f64, from: u32) -> Vec<bool> {
    let n = g.n_nodes() as usize;
    let adj = g.adjacency_at(t);
    let mut seen = vec![false; n];
    let mut queue = vec![from];
    seen[from as usize] = true;
    while let Some(v) = queue.pop() {
        for &(u, _) in adj.neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                queue.push(u);
            }
        }
    }
    seen
}

/// Whether `coarse` puts together everything `fine` puts together.
fn coarsens(coarse: &Partition, fine: &Partition) -> bool {
    let n = fine.n_nodes();
    (0..n).all(|u| (u + 1..n).all(|v| !fine.same_cluster(u, v) || coarse.same_cluster(u, v)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_algorithms_partition_all_nodes(g in arb_graph(), t in arb_threshold()) {
        for a in DirtyAlgorithm::ALL {
            let p = a.run(&g, t);
            prop_assert_eq!(p.n_nodes(), g.n_nodes(), "{} node count", a);
            let covered: usize = p.clusters().iter().map(Vec::len).sum();
            prop_assert_eq!(covered, g.n_nodes() as usize, "{} coverage", a);
            // Determinism.
            prop_assert_eq!(p, a.run(&g, t), "{} not deterministic", a);
        }
    }

    #[test]
    fn connected_components_match_bfs(g in arb_graph(), t in arb_threshold()) {
        let p = connected_components(&g, t);
        for u in 0..g.n_nodes() {
            let seen = reachable(&g, t, u);
            for v in 0..g.n_nodes() {
                prop_assert_eq!(
                    p.same_cluster(u, v),
                    seen[v as usize],
                    "CC disagrees with BFS on ({}, {})", u, v
                );
            }
        }
    }

    #[test]
    fn every_algorithm_refines_connected_components(g in arb_graph(), t in arb_threshold()) {
        let cc = connected_components(&g, t);
        for a in DirtyAlgorithm::ALL {
            let p = a.run(&g, t);
            prop_assert!(
                coarsens(&cc, &p),
                "{} clusters cross component boundaries", a
            );
        }
    }

    #[test]
    fn merge_center_coarsens_center(g in arb_graph(), t in arb_threshold()) {
        let c = center_clustering(&g, t);
        let mc = merge_center_clustering(&g, t);
        prop_assert!(coarsens(&mc, &c));
    }

    #[test]
    fn max_clique_clusters_are_cliques(g in arb_graph(), t in arb_threshold()) {
        let p = DirtyAlgorithm::MaxClique.run(&g, t);
        for cluster in p.clusters() {
            for (i, &u) in cluster.iter().enumerate() {
                for &v in &cluster[i + 1..] {
                    let w = g.weight_of(u, v);
                    prop_assert!(
                        w.is_some() && w.unwrap() >= t,
                        "cluster {:?} is not a clique: ({}, {}) missing", cluster, u, v
                    );
                }
            }
        }
    }

    #[test]
    fn center_clusters_are_stars(g in arb_graph(), t in arb_threshold()) {
        let p = center_clustering(&g, t);
        for cluster in p.clusters() {
            if cluster.len() < 2 {
                continue;
            }
            let has_center = cluster.iter().any(|&c| {
                cluster
                    .iter()
                    .filter(|&&v| v != c)
                    .all(|&v| g.weight_of(c, v).is_some_and(|w| w >= t))
            });
            prop_assert!(has_center, "cluster {:?} has no star center", cluster);
        }
    }

    #[test]
    fn star_clusters_are_stars_too(g in arb_graph(), t in arb_threshold()) {
        let p = star_clustering(&g, t);
        for cluster in p.clusters() {
            if cluster.len() < 2 {
                continue;
            }
            let has_center = cluster.iter().any(|&c| {
                cluster
                    .iter()
                    .filter(|&&v| v != c)
                    .all(|&v| g.weight_of(c, v).is_some_and(|w| w >= t))
            });
            prop_assert!(has_center, "star cluster {:?} has no hub", cluster);
        }
    }

    #[test]
    fn pairwise_scores_are_bounded(g in arb_graph(), t in arb_threshold()) {
        // Score each algorithm against an arbitrary "truth": the retained
        // edge list itself.
        let truth: Vec<(u32, u32)> = g
            .edges()
            .iter()
            .filter(|e| e.weight >= t)
            .map(|e| (e.a, e.b))
            .collect();
        for a in DirtyAlgorithm::ALL {
            let s = pairwise_scores(&a.run(&g, t), &truth);
            for v in [s.precision, s.recall, s.f1] {
                prop_assert!((0.0..=1.0).contains(&v), "{} score out of range", a);
            }
            let expect_f1 = if s.precision + s.recall == 0.0 {
                0.0
            } else {
                2.0 * s.precision * s.recall / (s.precision + s.recall)
            };
            prop_assert!((s.f1 - expect_f1).abs() < 1e-12);
            prop_assert!(s.true_positives <= s.predicted || s.predicted == 0);
            prop_assert!(s.true_positives <= s.actual || s.actual == 0);
        }
    }
}
