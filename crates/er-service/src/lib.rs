#![warn(missing_docs)]

//! # er-service — a resident matching service over one similarity graph
//!
//! The batch pipeline builds a graph, runs a matcher, writes tables and
//! exits. [`ErService`] instead keeps everything **resident** and answers
//! point traffic:
//!
//! * the scored similarity graph, in its delta-capable CSR form
//!   ([`er_core::CsrGraph`]: append-only ids, tombstoned deletes,
//!   ~12 B/edge);
//! * the score-side state of the similarity function
//!   ([`er_pipeline::ResidentScorer`]: frozen models, DF statistics and
//!   the PR 6 candidate indexes), so one new record is scored against the
//!   corpus through index-pruned probes under its top-k admission bound
//!   rather than by re-preparing the build;
//! * a **delta-incremental matcher**
//!   ([`er_matchers::DeltaMatcher`]: UMC repairs its greedy assignment
//!   along a bounded cascade, BAH maintains its contribution map, the
//!   other six algorithms replay over the resident store), kept
//!   result-equivalent to a from-scratch [`er_matchers::Matcher::run`]
//!   after every applied delta.
//!
//! An [`insert`](ErService::insert) therefore costs one index-pruned
//! probe plus one delta application — not a graph rebuild plus a full
//! re-match — and a [`matching`](ErService::matching) read after any
//! number of updates returns exactly what the batch protocol would.
//!
//! The service itself is single-writer plain Rust (`&mut self` on
//! updates); concurrent deployments wrap it in a reader-writer lock, as
//! the load harness in `er-bench` does. See `DESIGN.md` §17 for the
//! drift contract inherited from the resident scorer (frozen statistics,
//! right-insert admission, tombstone residue) and when to
//! [`ErService::load`] a fresh instance.

use std::fmt;
use std::path::{Path, PathBuf};

use er_core::{
    write_csr, CoreError, CsrGraph, MappedCsr, Matching, Result, RowDelta, Side, StoreError,
    StoreMeta,
};
use er_datasets::{EntityCollection, EntityProfile};
use er_matchers::{AlgorithmConfig, AlgorithmKind, DeltaMatcher, PreparedGraph};
use er_pipeline::{
    build_graph_topk_framed, CandidateMode, NormFrame, PipelineConfig, ResidentScorer,
    SimilarityFunction,
};

/// Errors surfaced by service updates that touch both the resident
/// store (delta validation) and, for file-backed services, the backing
/// columnar store file (auto-compaction persistence).
#[derive(Debug)]
pub enum ServiceError {
    /// The resident store rejected the update.
    Core(CoreError),
    /// Persisting the folded graph to the backing file failed.
    Store(StoreError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Core(e) => e.fmt(f),
            ServiceError::Store(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Core(e) => Some(e),
            ServiceError::Store(e) => Some(e),
        }
    }
}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Core(e)
    }
}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> Self {
        ServiceError::Store(e)
    }
}

/// Everything [`ErService::load`] needs beyond the data: graph bound,
/// matching threshold, and the algorithm configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Edges retained per left row at build time and per inserted record.
    pub k: usize,
    /// Similarity threshold the resident matcher runs at.
    pub threshold: f64,
    /// Which of the eight algorithms answers match queries.
    pub algorithm: AlgorithmKind,
    /// Per-algorithm knobs (BAH budgets/seed, BMC basis).
    pub matchers: AlgorithmConfig,
    /// Graph-construction configuration.
    pub pipeline: PipelineConfig,
    /// Tombstone-ratio bound ([`CsrGraph::tombstone_ratio`]) above which
    /// a [`remove`](ErService::remove) folds the store in place, so
    /// sustained delete traffic can never let dead slab entries dominate
    /// the resident graph. A service hydrated from a columnar store file
    /// ([`ErService::load_mapped`]) also persists the folded graph back
    /// to that file — the on-disk store tracks the resident one instead
    /// of silently diverging under delete traffic; the persist's I/O
    /// error surface is why [`remove`](ErService::remove) returns
    /// [`ServiceError`]. Values `> 1.0` disable auto-compaction (the
    /// ratio is at most `1.0`).
    pub auto_compact_ratio: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            k: 5,
            threshold: 0.5,
            algorithm: AlgorithmKind::Umc,
            matchers: AlgorithmConfig::default(),
            pipeline: PipelineConfig::default(),
            auto_compact_ratio: 0.25,
        }
    }
}

/// Resident corpus + graph + incremental matcher; see the crate docs.
pub struct ErService {
    scorer: ResidentScorer,
    csr: CsrGraph,
    matcher: Box<dyn DeltaMatcher>,
    config: ServiceConfig,
    /// The columnar store file this service hydrated from (and persists
    /// back to on [`compact`](Self::compact)); `None` for RAM-only loads.
    store_path: Option<PathBuf>,
    /// The live mmap of `store_path`, kept as long as the resident graph
    /// still equals the file byte for byte: set by
    /// [`load_mapped`](Self::load_mapped), refreshed whenever a compact
    /// persists, dropped by any unpersisted update. While present,
    /// whole-graph reads ([`full_rematch`](Self::full_rematch)) sweep
    /// the file directly through the store's sort-order column instead
    /// of re-sorting resident edge copies.
    mapped: Option<MappedCsr>,
}

impl ErService {
    /// Build the resident state from two collections: score the top-k
    /// graph through the indexed candidate path, load it into CSR form,
    /// prepare the resident scorer, and seed the delta matcher.
    pub fn load(
        left: &EntityCollection,
        right: &EntityCollection,
        function: &SimilarityFunction,
        config: ServiceConfig,
    ) -> Self {
        let (graph, _, frame) = build_graph_topk_framed(
            left,
            right,
            function,
            config.k,
            CandidateMode::Indexed,
            &config.pipeline,
        );
        let csr = CsrGraph::from_graph(&graph);
        let scorer =
            ResidentScorer::prepare(left, right, function, config.k, frame, &config.pipeline);
        let matcher = config
            .matchers
            .delta_matcher(config.algorithm, &csr, config.threshold);
        ErService {
            scorer,
            csr,
            matcher,
            config,
            store_path: None,
            mapped: None,
        }
    }

    /// Hydrate a service from a **columnar on-disk graph**
    /// (`er_core::store`, e.g. the output of an out-of-core
    /// `build_graph_sharded` run or of a previous service's
    /// [`compact`](Self::compact)) instead of re-scoring the corpus.
    ///
    /// `left`/`right` must be the collections the stored graph was built
    /// over (every on-disk row id must have its profile, tombstoned ids
    /// included — ids are never reused) and `frame` the normalization
    /// frame that build derived, so that inserted records are scored onto
    /// the same weight scale as the resident edges. The store's tombstones
    /// are replayed into the scorer, and the origin path is remembered:
    /// later [`compact`](Self::compact) calls (and auto-compactions
    /// triggered by [`remove`](Self::remove)) persist the folded graph
    /// back to it. The mmap itself stays open: until the first
    /// unpersisted update, whole-graph reads run **mmap-native** off the
    /// file's sort-order column — zero resident edge copies.
    pub fn load_mapped(
        path: &Path,
        left: &EntityCollection,
        right: &EntityCollection,
        function: &SimilarityFunction,
        frame: NormFrame,
        config: ServiceConfig,
    ) -> std::result::Result<Self, StoreError> {
        let mapped = MappedCsr::open(path)?;
        if mapped.n_left() as usize != left.profiles.len()
            || mapped.n_right() as usize != right.profiles.len()
        {
            return Err(StoreError::Format(format!(
                "store shape {}x{} does not match the collections ({}x{})",
                mapped.n_left(),
                mapped.n_right(),
                left.profiles.len(),
                right.profiles.len()
            )));
        }
        let csr = mapped.to_csr();
        let mut scorer =
            ResidentScorer::prepare(left, right, function, config.k, frame, &config.pipeline);
        for &id in csr.dead_left() {
            scorer.mark_deleted(Side::Left, id);
        }
        for &id in csr.dead_right() {
            scorer.mark_deleted(Side::Right, id);
        }
        let matcher = config
            .matchers
            .delta_matcher(config.algorithm, &csr, config.threshold);
        Ok(ErService {
            scorer,
            csr,
            matcher,
            config,
            store_path: Some(path.to_path_buf()),
            mapped: Some(mapped),
        })
    }

    /// Insert one record: score it against the live counterpart corpus
    /// (index-pruned, top-k bounded), apply the resulting delta to the
    /// store and the matcher, and return the delta (normalized weights).
    ///
    /// `profile.id` must be the side's next append id — the id the
    /// service hands out via [`next_id`](Self::next_id).
    pub fn insert(&mut self, side: Side, profile: &EntityProfile) -> Result<RowDelta> {
        let expected = self.next_id(side);
        if profile.id != expected {
            return Err(CoreError::DeltaIdMismatch {
                expected,
                got: profile.id,
            });
        }
        let delta = self.scorer.score_insert(side, profile);
        self.csr.apply(&delta)?;
        self.matcher.apply_delta(&delta);
        // The resident graph moved past the backing file.
        self.mapped = None;
        Ok(delta)
    }

    /// Delete one record: tombstone it in the store and the scorer and
    /// repair the matching incrementally. Returns the delete delta with
    /// the edges that disappeared. Errors if `id` is unknown or already
    /// dead; ids are never reused.
    ///
    /// When the tombstone ratio reaches
    /// [`ServiceConfig::auto_compact_ratio`], the store is folded — and,
    /// for a file-backed service, **persisted** back to the backing file
    /// exactly as an explicit [`compact`](Self::compact) would (whence
    /// the [`ServiceError::Store`] arm: the delete itself has fully
    /// applied when that persist fails).
    pub fn remove(&mut self, side: Side, id: u32) -> std::result::Result<RowDelta, ServiceError> {
        let removed = match side {
            Side::Left => self.csr.remove_left(id)?,
            Side::Right => self.csr.remove_right(id)?,
        };
        self.scorer.mark_deleted(side, id);
        let delta = match side {
            Side::Left => RowDelta::delete_left(id, removed),
            Side::Right => RowDelta::delete_right(id, removed),
        };
        self.matcher.apply_delta(&delta);
        self.mapped = None;
        if self.csr.tombstone_ratio() >= self.config.auto_compact_ratio {
            self.compact()?;
        }
        Ok(delta)
    }

    /// The id the next [`insert`](Self::insert) on `side` must carry.
    pub fn next_id(&self, side: Side) -> u32 {
        match side {
            Side::Left => self.csr.n_left(),
            Side::Right => self.csr.n_right(),
        }
    }

    /// Whether `id` on `side` is registered and not tombstoned.
    pub fn is_live(&self, side: Side, id: u32) -> bool {
        match side {
            Side::Left => self.csr.is_live_left(id),
            Side::Right => self.csr.is_live_right(id),
        }
    }

    /// Point query: the live graph neighbors of `id` on `side`, weight
    /// descending. Left rows read straight off the CSR row (`O(degree)`);
    /// right nodes gather across rows (`O(n_left log degree)` — the store
    /// is row-major by design, see `ARCHITECTURE.md`).
    pub fn neighbors(&self, side: Side, id: u32) -> Vec<(u32, f64)> {
        if !self.is_live(side, id) {
            return Vec::new();
        }
        let mut out: Vec<(u32, f64)> = match side {
            Side::Left => self.csr.live_row(id).collect(),
            Side::Right => (0..self.csr.n_left())
                .filter(|&l| self.csr.is_live_left(l))
                .filter_map(|l| self.csr.weight_of(l, id).map(|w| (l, w)))
                .collect(),
        };
        out.sort_by(|a, b| er_core::total_cmp_desc(&a.1, &b.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Point query: the record `id` on `side` is currently matched to,
    /// under the service's algorithm and threshold.
    pub fn match_of(&mut self, side: Side, id: u32) -> Option<u32> {
        let m = self.matcher.matching();
        match side {
            Side::Left => m.iter().find(|&(l, _)| l == id).map(|(_, r)| r),
            Side::Right => m.iter().find(|&(_, r)| r == id).map(|(l, _)| l),
        }
    }

    /// The full current matching (incrementally maintained).
    pub fn matching(&mut self) -> Matching {
        self.matcher.matching()
    }

    /// Run the service's algorithm from scratch on the resident store —
    /// the reference the incremental matching is equivalent to. Costs a
    /// full prepare + run; exists for verification and benchmarking.
    ///
    /// While the backing file is current (freshly hydrated or just
    /// compacted), the run sweeps the **mmap directly** through the
    /// store's persisted sort-order column — no resident edge copies —
    /// which is bit-identical to the resident path (see
    /// `er-matchers::PreparedGraph::from_mapped` and its property
    /// suite).
    pub fn full_rematch(&self) -> Matching {
        let pg = match &self.mapped {
            Some(m) => PreparedGraph::from_mapped(m),
            None => PreparedGraph::from_csr(&self.csr),
        };
        self.config
            .matchers
            .run(self.config.algorithm, &pg, self.config.threshold)
    }

    /// Whether whole-graph reads currently run off the backing file's
    /// mmap (true until the first update not yet persisted by a
    /// compaction).
    pub fn reads_mapped(&self) -> bool {
        self.mapped.is_some()
    }

    /// The resident profile for `id` on `side` (tombstoned included —
    /// callers gate on [`is_live`](Self::is_live) where it matters).
    pub fn profile(&self, side: Side, id: u32) -> Option<&EntityProfile> {
        let c = match side {
            Side::Left => self.scorer.left(),
            Side::Right => self.scorer.right(),
        };
        c.profiles.get(id as usize)
    }

    /// Fold pending deltas into the store slabs (`O(m)`); liveness and
    /// results are unaffected, probe/query constants improve.
    ///
    /// A service hydrated from a columnar store file
    /// ([`load_mapped`](Self::load_mapped)) also **persists** the folded
    /// graph back to that file and returns its [`StoreMeta`]; RAM-only
    /// services return `Ok(None)`.
    pub fn compact(&mut self) -> std::result::Result<Option<StoreMeta>, StoreError> {
        self.csr.compact();
        match &self.store_path {
            Some(path) => {
                self.mapped = None;
                let meta = write_csr(&self.csr, path)?;
                // The file equals the resident graph again: re-arm the
                // mmap-native read path.
                self.mapped = Some(MappedCsr::open(path)?);
                Ok(Some(meta))
            }
            None => Ok(None),
        }
    }

    /// Fraction of the resident slab entries that are tombstone-masked
    /// ([`CsrGraph::tombstone_ratio`]). Bounded by
    /// [`ServiceConfig::auto_compact_ratio`] under delete traffic.
    pub fn tombstone_ratio(&self) -> f64 {
        self.csr.tombstone_ratio()
    }

    /// The columnar store file this service persists to on
    /// [`compact`](Self::compact), if it was loaded from one.
    pub fn store_path(&self) -> Option<&Path> {
        self.store_path.as_deref()
    }

    /// Live left record count.
    pub fn n_left(&self) -> u32 {
        self.csr.n_left()
    }

    /// Live right record count.
    pub fn n_right(&self) -> u32 {
        self.csr.n_right()
    }

    /// Live edge count of the resident graph.
    pub fn n_edges(&self) -> usize {
        self.csr.n_edges()
    }

    /// The matching threshold the service runs at.
    pub fn threshold(&self) -> f64 {
        self.config.threshold
    }

    /// The algorithm answering match queries.
    pub fn algorithm(&self) -> AlgorithmKind {
        self.config.algorithm
    }

    /// Borrow the resident store (read-only).
    pub fn store(&self) -> &CsrGraph {
        &self.csr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datasets::{Dataset, DatasetId};
    use er_textsim::{NGramScheme, VectorMeasure};

    fn service() -> (ErService, Dataset) {
        let d = Dataset::generate(DatasetId::D1, 0.02, 11);
        let f = SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::CosineTfIdf,
        };
        let cfg = ServiceConfig {
            k: 3,
            threshold: 0.3,
            ..ServiceConfig::default()
        };
        (ErService::load(&d.left, &d.right, &f, cfg), d)
    }

    #[test]
    fn load_matches_batch_protocol() {
        let (mut s, _) = service();
        assert_eq!(s.matching(), s.full_rematch());
        assert!(s.n_edges() > 0);
    }

    #[test]
    fn insert_remove_stay_equivalent_to_full_rematch() {
        let (mut s, d) = service();
        let mut p = d.left.profiles[2].clone();
        p.id = s.next_id(Side::Left);
        let delta = s.insert(Side::Left, &p).unwrap();
        assert_eq!(delta.id, p.id);
        assert_eq!(s.matching(), s.full_rematch());

        let mut rp = d.right.profiles[0].clone();
        rp.id = s.next_id(Side::Right);
        s.insert(Side::Right, &rp).unwrap();
        assert_eq!(s.matching(), s.full_rematch());

        s.remove(Side::Left, 0).unwrap();
        assert!(!s.is_live(Side::Left, 0));
        assert_eq!(s.matching(), s.full_rematch());
        assert!(s.remove(Side::Left, 0).is_err(), "double delete rejected");
    }

    #[test]
    fn insert_rejects_wrong_id() {
        let (mut s, d) = service();
        let mut p = d.left.profiles[0].clone();
        p.id = s.next_id(Side::Left) + 7;
        assert!(matches!(
            s.insert(Side::Left, &p),
            Err(CoreError::DeltaIdMismatch { .. })
        ));
    }

    #[test]
    fn neighbors_answer_point_queries_on_both_sides() {
        let (mut s, d) = service();
        let mut p = d.left.profiles[1].clone();
        p.id = s.next_id(Side::Left);
        let delta = s.insert(Side::Left, &p).unwrap();
        let row = s.neighbors(Side::Left, p.id);
        assert_eq!(row, delta.edges, "left row reads back the insert delta");
        if let Some(&(r, w)) = delta.edges.first() {
            let col = s.neighbors(Side::Right, r);
            assert!(col.contains(&(p.id, w)), "column sees the new record");
        }
        assert!(s.neighbors(Side::Left, 10_000).is_empty());
    }

    #[test]
    fn match_of_is_consistent_with_matching() {
        let (mut s, _) = service();
        let m = s.matching();
        for (l, r) in m.iter() {
            assert_eq!(s.match_of(Side::Left, l), Some(r));
            assert_eq!(s.match_of(Side::Right, r), Some(l));
        }
    }

    #[test]
    fn compact_preserves_results() {
        let (mut s, d) = service();
        let mut p = d.left.profiles[0].clone();
        p.id = s.next_id(Side::Left);
        s.insert(Side::Left, &p).unwrap();
        s.remove(Side::Right, 1).ok();
        let before = s.matching();
        assert_eq!(s.compact().unwrap(), None, "RAM-only load persists nowhere");
        assert_eq!(s.matching(), before);
        assert_eq!(s.matching(), s.full_rematch());
    }

    fn scratch_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ccer-service-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn load_mapped_matches_ram_load() {
        let d = Dataset::generate(DatasetId::D1, 0.02, 11);
        let f = SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::CosineTfIdf,
        };
        let cfg = ServiceConfig {
            k: 3,
            threshold: 0.3,
            ..ServiceConfig::default()
        };
        // Persist the batch build, then hydrate a second service from disk.
        let (graph, _, frame) = build_graph_topk_framed(
            &d.left,
            &d.right,
            &f,
            cfg.k,
            CandidateMode::Indexed,
            &cfg.pipeline,
        );
        let csr = CsrGraph::from_graph(&graph);
        let dir = scratch_dir();
        let path = dir.join("service.slab");
        er_core::write_csr(&csr, &path).unwrap();

        let mut ram = ErService::load(&d.left, &d.right, &f, cfg.clone());
        let mut disk = ErService::load_mapped(&path, &d.left, &d.right, &f, frame, cfg).unwrap();
        assert_eq!(disk.store_path(), Some(path.as_path()));
        assert_eq!(disk.store(), ram.store(), "hydrated store is identical");
        assert_eq!(disk.matching(), ram.matching());

        // Inserts score through the same frozen frame on both services.
        let mut p = d.left.profiles[2].clone();
        p.id = ram.next_id(Side::Left);
        let dr = ram.insert(Side::Left, &p).unwrap();
        let dd = disk.insert(Side::Left, &p).unwrap();
        assert_eq!(dr.edges, dd.edges, "identical insert deltas");
        assert_eq!(disk.matching(), ram.matching());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_mapped_rejects_mismatched_collections() {
        let d = Dataset::generate(DatasetId::D1, 0.02, 11);
        let f = SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::CosineTfIdf,
        };
        let cfg = ServiceConfig::default();
        let mut b = er_core::GraphBuilder::new(2, 2);
        b.add_edge(0, 0, 0.9).unwrap();
        let csr = CsrGraph::from_graph(&b.build());
        let dir = scratch_dir();
        let path = dir.join("tiny.slab");
        er_core::write_csr(&csr, &path).unwrap();
        let err = ErService::load_mapped(
            &path,
            &d.left,
            &d.right,
            &f,
            er_pipeline::NormFrame::degenerate(),
            cfg,
        );
        assert!(matches!(err, Err(er_core::StoreError::Format(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_persists_the_folded_graph() {
        let d = Dataset::generate(DatasetId::D1, 0.02, 11);
        let f = SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::CosineTfIdf,
        };
        let cfg = ServiceConfig {
            k: 3,
            threshold: 0.3,
            // Keep deltas pending so compact() has something to fold.
            auto_compact_ratio: 2.0,
            ..ServiceConfig::default()
        };
        let (graph, _, frame) = build_graph_topk_framed(
            &d.left,
            &d.right,
            &f,
            cfg.k,
            CandidateMode::Indexed,
            &cfg.pipeline,
        );
        let csr = CsrGraph::from_graph(&graph);
        let dir = scratch_dir();
        let path = dir.join("persist.slab");
        er_core::write_csr(&csr, &path).unwrap();
        let mut s = ErService::load_mapped(&path, &d.left, &d.right, &f, frame, cfg).unwrap();

        let mut p = d.left.profiles[0].clone();
        p.id = s.next_id(Side::Left);
        s.insert(Side::Left, &p).unwrap();
        s.remove(Side::Right, 1).unwrap();
        let before = s.matching();

        let meta = s.compact().unwrap().expect("file-backed service persists");
        assert!(meta.file_bytes > 0);
        // The file now holds exactly the folded resident graph —
        // tombstones, appended row and all.
        let reread = er_core::MappedCsr::open(&path).unwrap();
        assert_eq!(&reread.to_csr(), s.store());
        assert!(!reread.is_live_right(1));
        assert_eq!(s.matching(), before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_compact_persists_for_file_backed_services() {
        let d = Dataset::generate(DatasetId::D1, 0.02, 11);
        let f = SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::CosineTfIdf,
        };
        let cfg = ServiceConfig {
            k: 3,
            threshold: 0.3,
            // Every remove trips the bound: each delete must round-trip
            // through a persisted fold.
            auto_compact_ratio: 0.0,
            ..ServiceConfig::default()
        };
        let (graph, _, frame) = build_graph_topk_framed(
            &d.left,
            &d.right,
            &f,
            cfg.k,
            CandidateMode::Indexed,
            &cfg.pipeline,
        );
        let csr = CsrGraph::from_graph(&graph);
        let dir = scratch_dir();
        let path = dir.join("autocompact.slab");
        er_core::write_csr(&csr, &path).unwrap();
        let mut s = ErService::load_mapped(&path, &d.left, &d.right, &f, frame, cfg).unwrap();
        assert!(s.reads_mapped(), "hydration arms the mmap read path");

        s.remove(Side::Right, 1).unwrap();
        // Regression (the fold used to be RAM-only): the auto-compaction
        // a remove triggers must persist the folded graph to the backing
        // file, not let the file silently drift behind the service.
        let reread = er_core::MappedCsr::open(&path).unwrap();
        assert!(!reread.is_live_right(1), "tombstone reached the file");
        assert_eq!(&reread.to_csr(), s.store(), "file equals resident store");
        assert!(s.reads_mapped(), "persisting re-arms the mmap");
        assert_eq!(s.matching(), s.full_rematch());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unpersisted_updates_drop_the_mmap_read_path() {
        let d = Dataset::generate(DatasetId::D1, 0.02, 11);
        let f = SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::CosineTfIdf,
        };
        let cfg = ServiceConfig {
            k: 3,
            threshold: 0.3,
            auto_compact_ratio: 2.0, // keep removes from compacting
            ..ServiceConfig::default()
        };
        let (graph, _, frame) = build_graph_topk_framed(
            &d.left,
            &d.right,
            &f,
            cfg.k,
            CandidateMode::Indexed,
            &cfg.pipeline,
        );
        let dir = scratch_dir();
        let path = dir.join("invalidate.slab");
        er_core::write_csr(&CsrGraph::from_graph(&graph), &path).unwrap();
        let mut s = ErService::load_mapped(&path, &d.left, &d.right, &f, frame, cfg).unwrap();
        assert!(s.reads_mapped());
        // full_rematch sweeps the mmap here and must agree with the
        // incremental matcher.
        assert_eq!(s.matching(), s.full_rematch());

        let mut p = d.left.profiles[2].clone();
        p.id = s.next_id(Side::Left);
        s.insert(Side::Left, &p).unwrap();
        assert!(!s.reads_mapped(), "stale file must not serve reads");
        assert_eq!(s.matching(), s.full_rematch(), "fallback is resident");

        // An explicit compact persists and re-arms the mapped path.
        s.compact().unwrap().expect("file-backed");
        assert!(s.reads_mapped());
        assert_eq!(s.matching(), s.full_rematch());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sustained_traffic_keeps_liveness_above_threshold() {
        let (mut s, d) = service();
        let ratio = 0.25;
        assert_eq!(s.tombstone_ratio(), 0.0);
        // Churn: keep inserting fresh records while deleting the oldest
        // live ones, on both sides. Auto-compaction must keep the masked
        // share of the slab strictly below the configured ratio at every
        // step — sustained traffic never degrades liveness past the bound.
        let (mut next_dead_left, mut next_dead_right) = (0u32, 0u32);
        for i in 0..40 {
            let mut p = d.left.profiles[i % d.left.profiles.len()].clone();
            p.id = s.next_id(Side::Left);
            s.insert(Side::Left, &p).unwrap();
            let mut q = d.right.profiles[i % d.right.profiles.len()].clone();
            q.id = s.next_id(Side::Right);
            s.insert(Side::Right, &q).unwrap();
            s.remove(Side::Left, next_dead_left).unwrap();
            next_dead_left += 1;
            if i % 2 == 0 {
                s.remove(Side::Right, next_dead_right).unwrap();
                next_dead_right += 1;
            }
            assert!(
                s.tombstone_ratio() < ratio,
                "step {i}: masked share {} reached the auto-compact bound",
                s.tombstone_ratio()
            );
        }
        // Folding along the way never drifted the matching.
        assert_eq!(s.matching(), s.full_rematch());
    }
}
