//! Property tests for [`er_service::ErService`]: under arbitrary
//! insert/delete traffic the incrementally-maintained matching stays
//! equal to a from-scratch re-match on the resident store, and the point
//! queries stay consistent with the store.

use er_core::Side;
use er_matchers::AlgorithmKind;
use er_pipeline::SimilarityFunction;
use er_service::{ErService, ServiceConfig};
use er_textsim::{NGramScheme, VectorMeasure};
use proptest::prelude::*;

fn boot(kind: AlgorithmKind, threshold: f64) -> ErService {
    let d = er_datasets::Dataset::generate(er_datasets::DatasetId::D1, 0.02, 5);
    let f = SimilarityFunction::SchemaAgnosticVector {
        scheme: NGramScheme::Token(1),
        measure: VectorMeasure::CosineTfIdf,
    };
    let cfg = ServiceConfig {
        k: 3,
        threshold,
        algorithm: kind,
        ..ServiceConfig::default()
    };
    ErService::load(&d.left, &d.right, &f, cfg)
}

/// Apply one raw op: even selectors insert (a clone of a resident
/// profile's attributes under the next append id), odd selectors delete
/// the first live id at or after `pick`.
fn step(s: &mut ErService, sel: u8, pick: u16) {
    let side = if sel & 2 == 0 {
        Side::Left
    } else {
        Side::Right
    };
    if sel & 1 == 0 {
        let donor_side = if sel & 4 == 0 { side } else { side.opposite() };
        let n = match donor_side {
            Side::Left => s.n_left(),
            Side::Right => s.n_right(),
        };
        let Some(donor) = s.profile(donor_side, pick as u32 % n.max(1)) else {
            return;
        };
        let mut p = donor.clone();
        p.id = s.next_id(side);
        s.insert(side, &p)
            .expect("insert with handed-out id succeeds");
    } else {
        let n = match side {
            Side::Left => s.n_left(),
            Side::Right => s.n_right(),
        };
        let start = pick as u32 % n.max(1);
        if let Some(id) = (0..n)
            .map(|d| (start + d) % n)
            .find(|&i| s.is_live(side, i))
        {
            s.remove(side, id).expect("live id removes");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The incremental-UMC service (the fast path) tracks the full
    /// re-match after every operation.
    #[test]
    fn umc_service_tracks_full_rematch(ops in proptest::collection::vec((0u8..8, 0u16..512), 1..10)) {
        let mut s = boot(AlgorithmKind::Umc, 0.3);
        for (sel, pick) in ops {
            step(&mut s, sel, pick);
            prop_assert_eq!(s.matching(), s.full_rematch());
            let m = s.matching();
            prop_assert!(m.is_unique_mapping());
            for (l, r) in m.iter() {
                prop_assert!(s.is_live(Side::Left, l) && s.is_live(Side::Right, r),
                    "matched a tombstoned record ({l},{r})");
            }
        }
    }

    /// A replay-fallback algorithm behind the same trait sees the same
    /// guarantee (end-state check — replay recomputes per read).
    #[test]
    fn replay_service_tracks_full_rematch(ops in proptest::collection::vec((0u8..8, 0u16..512), 1..6)) {
        let mut s = boot(AlgorithmKind::Krc, 0.3);
        for (sel, pick) in ops {
            step(&mut s, sel, pick);
        }
        prop_assert_eq!(s.matching(), s.full_rematch());
    }

    /// Point queries agree with the store after traffic: every neighbor
    /// edge is live on both endpoints and symmetric across sides.
    #[test]
    fn neighbors_stay_consistent(ops in proptest::collection::vec((0u8..8, 0u16..512), 1..8)) {
        let mut s = boot(AlgorithmKind::Umc, 0.3);
        for (sel, pick) in ops {
            step(&mut s, sel, pick);
        }
        for l in 0..s.n_left() {
            for (r, w) in s.neighbors(Side::Left, l) {
                prop_assert!(s.is_live(Side::Right, r));
                prop_assert!(s.neighbors(Side::Right, r).contains(&(l, w)));
            }
        }
    }
}
