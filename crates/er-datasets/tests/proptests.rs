//! Property tests for the dataset generators: structural invariants must
//! hold for every dataset, scale and seed.

use er_datasets::{Dataset, DatasetId, DatasetSpec};
use proptest::prelude::*;

fn arb_dataset_id() -> impl Strategy<Value = DatasetId> {
    proptest::sample::select(DatasetId::ALL.to_vec())
}

proptest! {
    // Generation is the expensive part; keep case counts moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sizes_and_ground_truth_match_spec(
        id in arb_dataset_id(),
        scale in 0.005f64..0.03,
        seed in 0u64..1000,
    ) {
        let d = Dataset::generate(id, scale, seed);
        prop_assert_eq!(d.left.len() as u32, d.spec.n1);
        prop_assert_eq!(d.right.len() as u32, d.spec.n2);
        prop_assert_eq!(d.ground_truth.len() as u32, d.spec.duplicates);
        // Ground truth ids in bounds and one-to-one.
        let mut ls = std::collections::HashSet::new();
        let mut rs = std::collections::HashSet::new();
        for &(l, r) in d.ground_truth.pairs() {
            prop_assert!(l < d.spec.n1);
            prop_assert!(r < d.spec.n2);
            prop_assert!(ls.insert(l));
            prop_assert!(rs.insert(r));
        }
    }

    #[test]
    fn profiles_have_dense_ids_and_schema_attributes(
        id in arb_dataset_id(),
        seed in 0u64..100,
    ) {
        let d = Dataset::generate(id, 0.01, seed);
        for (i, p) in d.left.profiles.iter().enumerate() {
            prop_assert_eq!(p.id as usize, i, "ids are dense positions");
            for (attr, _) in &p.attributes {
                prop_assert!(
                    d.left.attribute_names.contains(attr),
                    "attribute {} outside schema",
                    attr
                );
            }
        }
    }

    #[test]
    fn scaling_is_monotone(id in arb_dataset_id(), seed in 0u64..50) {
        let small = DatasetSpec::of(id).scaled(0.01);
        let large = DatasetSpec::of(id).scaled(0.02);
        prop_assert!(small.n1 <= large.n1);
        prop_assert!(small.n2 <= large.n2);
        prop_assert!(small.duplicates <= large.duplicates);
        let _ = seed;
    }

    #[test]
    fn determinism_per_seed(id in arb_dataset_id(), seed in 0u64..100) {
        let a = Dataset::generate(id, 0.01, seed);
        let b = Dataset::generate(id, 0.01, seed);
        prop_assert_eq!(a.left.profiles, b.left.profiles);
        prop_assert_eq!(a.right.profiles, b.right.profiles);
        prop_assert_eq!(a.ground_truth.pairs(), b.ground_truth.pairs());
    }
}
