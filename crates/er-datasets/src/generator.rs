//! The synthetic dataset generator.
//!
//! Generation pipeline:
//!
//! 1. A **universe** of `n1 + n2 − duplicates` distinct real-world entities
//!    is synthesized with canonical field values for the union of both
//!    schemas (domain-specific composition rules).
//! 2. The left collection renders universe entities `0..n1`; the right
//!    collection renders the shared prefix `0..duplicates` plus
//!    `n1..n1+n2−duplicates`. Each collection is then deterministically
//!    shuffled so profile ids carry no positional signal.
//! 3. Rendering applies per-side formatting conventions (author "Last, F."
//!    vs "First Last", parenthesized years, phone prefixes) and the spec's
//!    noise profile (typos, token drops, missing values, abbreviations,
//!    spurious tokens, misplaced bibliographic values).
//!
//! Both collections are clean by construction: distinct universe entities
//! have distinct canonical cores, and each universe entity renders at most
//! once per collection.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use er_core::GroundTruth;

use crate::dataset::Dataset;
use crate::noise::{abbreviate_token, apply_typo, drop_token, NoiseProfile};
use crate::profile::{EntityCollection, EntityProfile};
use crate::spec::{DatasetSpec, Domain};
use crate::vocab::{digits, Lexicon};

/// A canonical real-world entity: attribute → canonical value.
#[derive(Debug, Clone)]
struct CanonicalEntity {
    fields: Vec<(&'static str, String)>,
}

impl CanonicalEntity {
    fn get(&self, attr: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(a, _)| *a == attr)
            .map(|(_, v)| v.as_str())
    }
}

/// Deterministic generator for one dataset spec.
#[derive(Debug, Clone)]
pub struct DatasetGenerator {
    spec: DatasetSpec,
    seed: u64,
}

impl DatasetGenerator {
    /// Create a generator; the same `(spec, seed)` always yields the same
    /// dataset.
    pub fn new(spec: DatasetSpec, seed: u64) -> Self {
        DatasetGenerator { spec, seed }
    }

    /// Generate the dataset.
    pub fn generate(&self) -> Dataset {
        let spec = &self.spec;
        let lex = Lexicon::new(self.seed);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x0da7_a5e7);

        let n1 = spec.n1 as usize;
        let n2 = spec.n2 as usize;
        let dup = spec.duplicates as usize;
        let universe_len = n1 + n2 - dup;

        // 1. Distinct canonical entities.
        let mut universe = Vec::with_capacity(universe_len);
        let mut seen_cores = er_core::FxHashSet::default();
        while universe.len() < universe_len {
            let e = synthesize(spec.domain, &lex, &mut rng);
            let core = e
                .get("title")
                .or_else(|| e.get("name"))
                .unwrap_or_default()
                .to_string();
            if seen_cores.insert(core) {
                universe.push(e);
            }
        }

        // 2. Membership: left = universe[0..n1]; right = universe[0..dup] ∪
        //    universe[n1..]. Shuffle the *render order* of each side.
        let left_members: Vec<usize> = (0..n1).collect();
        let right_members: Vec<usize> = (0..dup).chain(n1..universe_len).collect();

        let mut left_order = left_members;
        let mut right_order = right_members;
        let mut shuffle_rng = StdRng::seed_from_u64(self.seed ^ 0x005b_ff1e);
        left_order.shuffle(&mut shuffle_rng);
        right_order.shuffle(&mut shuffle_rng);

        // 3. Render each side.
        let mut render_rng = StdRng::seed_from_u64(self.seed ^ 0x00e0_de12);
        let left = render_collection(
            &left_order,
            &universe,
            &spec.attributes1,
            &spec.focus_attributes,
            &spec.noise,
            Side::Left,
            spec.domain,
            &lex,
            &mut render_rng,
        );
        let right = render_collection(
            &right_order,
            &universe,
            &spec.attributes2,
            &spec.focus_attributes,
            &spec.noise,
            Side::Right,
            spec.domain,
            &lex,
            &mut render_rng,
        );

        // Ground truth: pair up the positions of shared universe entities.
        let mut right_pos = er_core::FxHashMap::default();
        for (pos, &u) in right_order.iter().enumerate() {
            right_pos.insert(u, pos as u32);
        }
        let mut pairs = Vec::with_capacity(dup);
        for (pos, &u) in left_order.iter().enumerate() {
            if u < dup {
                let rp = right_pos[&u];
                pairs.push((pos as u32, rp));
            }
        }
        let ground_truth = GroundTruth::new(pairs);

        Dataset {
            spec: spec.clone(),
            left,
            right,
            ground_truth,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Left,
    Right,
}

/// Synthesize one canonical entity for a domain.
fn synthesize(domain: Domain, lex: &Lexicon, rng: &mut StdRng) -> CanonicalEntity {
    let mut fields: Vec<(&'static str, String)> = Vec::new();
    match domain {
        Domain::Restaurants => {
            let name = format!("{} {}", lex.noun(rng), lex.noun(rng));
            let phone = format!("{}-{}-{}", digits(rng, 3), digits(rng, 3), digits(rng, 4));
            let street = format!(
                "{} {} st",
                rng.gen_range(1..999),
                lex.streets[rng.gen_range(0..lex.streets.len())]
            );
            fields.push(("name", name.clone()));
            fields.push(("phone", phone));
            fields.push(("address", street));
            fields.push((
                "city",
                lex.cities[rng.gen_range(0..lex.cities.len())].clone(),
            ));
            fields.push((
                "cuisine",
                lex.cuisines[rng.gen_range(0..lex.cuisines.len())].clone(),
            ));
            fields.push(("type", lex.noun(rng).to_string()));
            fields.push(("web", format!("www.{}.com", name.replace(' ', ""))));
        }
        Domain::Products => {
            let brand = lex.brands[rng.gen_range(0..lex.brands.len())].clone();
            let prefix: String = lex
                .noun(rng)
                .chars()
                .take(2)
                .collect::<String>()
                .to_uppercase();
            let n_digits = rng.gen_range(3..6);
            let modelno = format!("{prefix}{}", digits(rng, n_digits));
            let title = format!("{brand} {modelno} {}", lex.phrase(rng, 2, 5));
            fields.push(("title", title.clone()));
            fields.push(("name", title));
            fields.push(("brand", brand.clone()));
            fields.push(("manufacturer", brand));
            fields.push(("modelno", modelno));
            fields.push((
                "price",
                format!("{}.{}9", rng.gen_range(5..900), rng.gen_range(0..10)),
            ));
            fields.push(("category", lex.noun(rng).to_string()));
            fields.push(("description", lex.phrase(rng, 6, 14)));
        }
        Domain::Bibliographic => {
            let title = lex.phrase(rng, 4, 9);
            let n_authors = rng.gen_range(1..=4);
            let authors = (0..n_authors)
                .map(|_| lex.person(rng))
                .collect::<Vec<_>>()
                .join(", ");
            fields.push(("title", title));
            fields.push(("authors", authors));
            fields.push((
                "venue",
                lex.venues[rng.gen_range(0..lex.venues.len())].clone(),
            ));
            fields.push(("year", rng.gen_range(1975..2021).to_string()));
        }
        Domain::Movies => {
            let title = lex.phrase(rng, 1, 4);
            fields.push(("title", title.clone()));
            fields.push(("name", title));
            fields.push(("year", rng.gen_range(1950..2021).to_string()));
            fields.push(("director", lex.person(rng)));
            fields.push((
                "genre",
                lex.genres[rng.gen_range(0..lex.genres.len())].clone(),
            ));
            let actors = (0..rng.gen_range(2..=3))
                .map(|_| lex.person(rng))
                .collect::<Vec<_>>()
                .join(", ");
            fields.push(("actors", actors));
            fields.push(("runtime", format!("{} min", rng.gen_range(60..200))));
            fields.push((
                "country",
                lex.cities[rng.gen_range(0..lex.cities.len())].clone(),
            ));
            fields.push(("language", lex.noun(rng).to_string()));
            fields.push((
                "rating",
                format!("{:.1}", rng.gen_range(10..100) as f64 / 10.0),
            ));
            fields.push(("votes", rng.gen_range(100..1_000_000).to_string()));
            fields.push(("plot", lex.phrase(rng, 6, 16)));
            fields.push(("writer", lex.person(rng)));
        }
    }
    CanonicalEntity { fields }
}

/// Render one collection: schema projection + formatting + noise.
#[allow(clippy::too_many_arguments)]
fn render_collection(
    order: &[usize],
    universe: &[CanonicalEntity],
    schema: &[&'static str],
    focus: &[&'static str],
    noise: &NoiseProfile,
    side: Side,
    domain: Domain,
    lex: &Lexicon,
    rng: &mut StdRng,
) -> EntityCollection {
    let mut profiles = Vec::with_capacity(order.len());
    for (pos, &u) in order.iter().enumerate() {
        let entity = &universe[u];
        let mut attributes = Vec::with_capacity(schema.len());
        for &attr in schema {
            let is_focus = focus.contains(&attr);
            // Focus attributes were chosen by the paper for their high
            // coverage: they go missing five times less often.
            let missing_rate = if is_focus {
                noise.missing_value_rate * 0.2
            } else {
                noise.missing_value_rate
            };
            if rng.gen_bool(missing_rate.clamp(0.0, 1.0)) {
                continue;
            }
            let canonical = match entity.get(attr) {
                Some(v) => v.to_string(),
                // Attributes outside the canonical core (wide movie schemas)
                // carry per-entity filler that does not correlate across
                // sources.
                None => lex.phrase(rng, 1, 3),
            };
            let value = render_value(attr, &canonical, side, domain, noise, entity, rng);
            if !value.is_empty() {
                attributes.push((attr.to_string(), value));
            }
        }
        profiles.push(EntityProfile::new(pos as u32, attributes));
    }
    EntityCollection {
        profiles,
        attribute_names: schema.iter().map(|s| s.to_string()).collect(),
    }
}

/// Apply side-specific formatting and the noise profile to one value.
fn render_value(
    attr: &str,
    canonical: &str,
    side: Side,
    domain: Domain,
    noise: &NoiseProfile,
    entity: &CanonicalEntity,
    rng: &mut StdRng,
) -> String {
    let mut value = canonical.to_string();

    // Per-side formatting conventions.
    match (attr, side) {
        ("authors", Side::Right) => {
            // "First Last, First Last" → "Last, F. and Last, F."
            value = value
                .split(", ")
                .map(|full| {
                    let mut parts = full.split_whitespace();
                    let first = parts.next().unwrap_or_default();
                    let last = parts.next().unwrap_or_default();
                    let initial = first.chars().next().unwrap_or('x');
                    format!("{last}, {initial}.")
                })
                .collect::<Vec<_>>()
                .join(" and ");
        }
        ("year", Side::Right) => {
            value = format!("({value})");
        }
        ("phone", Side::Right) => {
            value = format!("+1 {value}");
        }
        _ => {}
    }

    // Misplaced-value noise (bibliographic): the authors leak into the
    // title on the right side.
    if attr == "title"
        && side == Side::Right
        && domain == Domain::Bibliographic
        && rng.gen_bool(noise.misplaced_value_rate)
    {
        if let Some(authors) = entity.get("authors") {
            value = format!("{value} {authors}");
        }
    }

    // Generic noise.
    if rng.gen_bool(noise.token_drop_rate) {
        value = drop_token(rng, &value);
    }
    if rng.gen_bool(noise.abbreviation_rate) {
        value = abbreviate_token(rng, &value);
    }
    if rng.gen_bool(noise.typo_rate) {
        value = apply_typo(rng, &value);
    }
    if rng.gen_bool(noise.extra_token_rate) {
        value = format!("{value} {}", lex_filler(rng));
    }
    value
}

/// A tiny pool of spurious qualifier tokens (noise, not vocabulary).
fn lex_filler(rng: &mut StdRng) -> &'static str {
    const FILLERS: &[&str] = &[
        "new", "pro", "deluxe", "edition", "pack", "set", "series", "vol", "plus", "original",
    ];
    FILLERS[rng.gen_range(0..FILLERS.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DatasetId, DatasetSpec};

    fn small(id: DatasetId) -> Dataset {
        DatasetGenerator::new(DatasetSpec::of(id).scaled(0.05), 42).generate()
    }

    #[test]
    fn sizes_match_spec() {
        let d = small(DatasetId::D2);
        assert_eq!(d.left.len() as u32, d.spec.n1);
        assert_eq!(d.right.len() as u32, d.spec.n2);
        assert_eq!(d.ground_truth.len() as u32, d.spec.duplicates);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DatasetGenerator::new(DatasetSpec::of(DatasetId::D1).scaled(0.1), 7).generate();
        let b = DatasetGenerator::new(DatasetSpec::of(DatasetId::D1).scaled(0.1), 7).generate();
        assert_eq!(a.left.profiles, b.left.profiles);
        assert_eq!(a.right.profiles, b.right.profiles);
        assert_eq!(a.ground_truth.pairs(), b.ground_truth.pairs());
        let c = DatasetGenerator::new(DatasetSpec::of(DatasetId::D1).scaled(0.1), 8).generate();
        assert_ne!(a.left.profiles, c.left.profiles);
    }

    #[test]
    fn ground_truth_is_one_to_one_and_in_bounds() {
        let d = small(DatasetId::D3);
        let mut lefts = er_core::FxHashSet::default();
        let mut rights = er_core::FxHashSet::default();
        for &(l, r) in d.ground_truth.pairs() {
            assert!(l < d.spec.n1 && r < d.spec.n2);
            assert!(lefts.insert(l), "duplicate left {l}");
            assert!(rights.insert(r), "duplicate right {r}");
        }
    }

    #[test]
    fn matched_pairs_share_content() {
        // A matched pair renders the same canonical entity, so its
        // schema-agnostic texts overlap far more than random pairs.
        use er_textsim_free::jaccard_tokens;
        let d = small(DatasetId::D4);
        let mut matched_sim = 0.0;
        for &(l, r) in d.ground_truth.pairs() {
            matched_sim += jaccard_tokens(
                &d.left.profiles[l as usize].all_values_text(),
                &d.right.profiles[r as usize].all_values_text(),
            );
        }
        matched_sim /= d.ground_truth.len() as f64;

        let mut random_sim = 0.0;
        let n = d.ground_truth.len().min(50);
        for i in 0..n {
            let (l, _) = d.ground_truth.pairs()[i];
            let r = (i * 7 + 3) as u32 % d.spec.n2;
            if d.ground_truth.is_match(l, r) {
                continue;
            }
            random_sim += jaccard_tokens(
                &d.left.profiles[l as usize].all_values_text(),
                &d.right.profiles[r as usize].all_values_text(),
            );
        }
        random_sim /= n as f64;
        assert!(
            matched_sim > random_sim + 0.2,
            "matched {matched_sim:.3} vs random {random_sim:.3}"
        );
    }

    #[test]
    fn collections_are_clean() {
        // No two profiles within a collection share the same full text.
        let d = small(DatasetId::D1);
        for coll in [&d.left, &d.right] {
            let mut seen = er_core::FxHashSet::default();
            for p in &coll.profiles {
                let text = p.all_values_text();
                if text.is_empty() {
                    continue;
                }
                assert!(seen.insert(text), "duplicate profile inside a collection");
            }
        }
    }

    #[test]
    fn focus_attributes_have_high_coverage() {
        let d = small(DatasetId::D5);
        let focus = &d.spec.focus_attributes;
        let coverage = |attr: &str| {
            d.left
                .profiles
                .iter()
                .filter(|p| p.value(attr).is_some())
                .count() as f64
                / d.left.len() as f64
        };
        for attr in focus {
            assert!(
                coverage(attr) > 0.8,
                "focus attribute {attr} coverage too low"
            );
        }
    }

    #[test]
    fn bibliographic_right_side_misplaces_values() {
        let d = DatasetGenerator::new(DatasetSpec::of(DatasetId::D4).scaled(0.1), 3).generate();
        // Some right-side titles must be longer than any left-side title of
        // the same entity due to author leakage.
        let mut leaks = 0;
        for &(l, r) in d.ground_truth.pairs() {
            let lt = d.left.profiles[l as usize].value("title").unwrap_or("");
            let rt = d.right.profiles[r as usize].value("title").unwrap_or("");
            if rt.split_whitespace().count() > lt.split_whitespace().count() + 2 {
                leaks += 1;
            }
        }
        assert!(leaks > 0, "misplaced-value noise must appear on D4");
    }

    /// Minimal token-Jaccard used only by tests (er-textsim is not a
    /// dependency of er-datasets; this avoids a cycle).
    mod er_textsim_free {
        pub fn jaccard_tokens(a: &str, b: &str) -> f64 {
            let sa: std::collections::HashSet<&str> = a.split_whitespace().collect();
            let sb: std::collections::HashSet<&str> = b.split_whitespace().collect();
            if sa.is_empty() && sb.is_empty() {
                return 1.0;
            }
            let inter = sa.intersection(&sb).count();
            inter as f64 / (sa.len() + sb.len() - inter) as f64
        }
    }
}
