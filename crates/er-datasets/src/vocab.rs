//! Deterministic domain vocabularies.
//!
//! Values are composed from synthesized, pronounceable words (syllable
//! concatenations drawn from a seeded RNG) plus small fixed pools of
//! domain anchors. A seeded [`Lexicon`] therefore yields the same
//! vocabulary on every run, and distinct seeds yield disjoint-looking
//! universes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ONSETS: &[&str] = &[
    "b", "br", "c", "ch", "cl", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k", "kr", "l", "m",
    "n", "p", "pl", "pr", "qu", "r", "s", "sh", "sl", "st", "t", "th", "tr", "v", "w", "z",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "io", "ou"];
const CODAS: &[&str] = &["", "n", "r", "s", "l", "m", "x", "nd", "rt", "ck", "st"];

/// A seeded vocabulary for one generation run.
#[derive(Debug, Clone)]
pub struct Lexicon {
    /// General content words (titles, plots, descriptions).
    pub nouns: Vec<String>,
    /// Person first names.
    pub first_names: Vec<String>,
    /// Person last names.
    pub last_names: Vec<String>,
    /// Product brand names.
    pub brands: Vec<String>,
    /// City names.
    pub cities: Vec<String>,
    /// Street names.
    pub streets: Vec<String>,
    /// Cuisine labels.
    pub cuisines: Vec<String>,
    /// Movie/TV genres.
    pub genres: Vec<String>,
    /// Publication venues.
    pub venues: Vec<String>,
}

impl Lexicon {
    /// Build the lexicon for `seed`.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x001e_71c0);
        Lexicon {
            nouns: unique_words(&mut rng, 2400, 2, 4),
            first_names: unique_words(&mut rng, 220, 2, 3),
            last_names: unique_words(&mut rng, 420, 2, 4),
            brands: unique_words(&mut rng, 140, 2, 3),
            cities: unique_words(&mut rng, 90, 2, 4),
            streets: unique_words(&mut rng, 120, 2, 3),
            cuisines: unique_words(&mut rng, 24, 2, 3),
            genres: unique_words(&mut rng, 18, 2, 3),
            venues: unique_words(&mut rng, 40, 2, 3),
        }
    }

    /// A random noun.
    pub fn noun<R: Rng>(&self, rng: &mut R) -> &str {
        &self.nouns[rng.gen_range(0..self.nouns.len())]
    }

    /// A random "First Last" person name.
    pub fn person<R: Rng>(&self, rng: &mut R) -> String {
        format!(
            "{} {}",
            self.first_names[rng.gen_range(0..self.first_names.len())],
            self.last_names[rng.gen_range(0..self.last_names.len())]
        )
    }

    /// A random phrase of `lo..=hi` nouns.
    pub fn phrase<R: Rng>(&self, rng: &mut R, lo: usize, hi: usize) -> String {
        let n = rng.gen_range(lo..=hi);
        (0..n)
            .map(|_| self.noun(rng).to_string())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Synthesize one pronounceable word of `syllables` syllables.
pub fn word<R: Rng>(rng: &mut R, syllables: usize) -> String {
    let mut w = String::new();
    for _ in 0..syllables {
        w.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
        w.push_str(VOWELS[rng.gen_range(0..VOWELS.len())]);
    }
    w.push_str(CODAS[rng.gen_range(0..CODAS.len())]);
    w
}

/// Synthesize `count` distinct words of `lo..=hi` syllables.
fn unique_words<R: Rng>(rng: &mut R, count: usize, lo: usize, hi: usize) -> Vec<String> {
    let mut seen = er_core::FxHashSet::default();
    let mut out = Vec::with_capacity(count);
    let mut guard = 0usize;
    while out.len() < count {
        let syllables = rng.gen_range(lo..=hi);
        let w = word(rng, syllables);
        if seen.insert(w.clone()) {
            out.push(w);
        }
        guard += 1;
        assert!(
            guard < count * 100,
            "vocabulary space exhausted generating {count} words"
        );
    }
    out
}

/// A deterministic digit string of length `len` (phones, model numbers).
pub fn digits<R: Rng>(rng: &mut R, len: usize) -> String {
    (0..len)
        .map(|_| char::from(b'0' + rng.gen_range(0..10u8)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicon_is_deterministic() {
        let a = Lexicon::new(7);
        let b = Lexicon::new(7);
        assert_eq!(a.nouns, b.nouns);
        assert_eq!(a.brands, b.brands);
        let c = Lexicon::new(8);
        assert_ne!(a.nouns, c.nouns);
    }

    #[test]
    fn pools_have_expected_sizes_and_uniqueness() {
        let l = Lexicon::new(1);
        assert_eq!(l.nouns.len(), 2400);
        let mut sorted = l.nouns.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 2400, "nouns must be distinct");
    }

    #[test]
    fn words_are_pronounceable_ascii() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let w = word(&mut rng, 3);
            assert!(w.chars().all(|c| c.is_ascii_lowercase()));
            assert!(w.len() >= 4, "three syllables are at least 4 chars: {w}");
        }
    }

    #[test]
    fn helpers_produce_shapes() {
        let l = Lexicon::new(5);
        let mut rng = StdRng::seed_from_u64(9);
        let p = l.person(&mut rng);
        assert_eq!(p.split_whitespace().count(), 2);
        let ph = l.phrase(&mut rng, 3, 5);
        let n = ph.split_whitespace().count();
        assert!((3..=5).contains(&n));
        let d = digits(&mut rng, 7);
        assert_eq!(d.len(), 7);
        assert!(d.chars().all(|c| c.is_ascii_digit()));
    }
}
