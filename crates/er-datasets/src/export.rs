//! Export generated datasets for external tools.
//!
//! Formats follow the conventions of public ER benchmark repositories:
//! one TSV per collection with the schema as header and one row per
//! profile (missing attributes are empty cells), plus a two-column ground
//! truth TSV of matching id pairs.

use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::dataset::Dataset;
use crate::profile::EntityCollection;

/// Write one collection as TSV: `id` column plus one column per schema
/// attribute. Tabs/newlines inside values are replaced with spaces.
pub fn write_collection<W: Write>(coll: &EntityCollection, w: W) -> io::Result<()> {
    let mut out = BufWriter::new(w);
    write!(out, "id")?;
    for a in &coll.attribute_names {
        write!(out, "\t{a}")?;
    }
    writeln!(out)?;
    for p in &coll.profiles {
        write!(out, "{}", p.id)?;
        for a in &coll.attribute_names {
            let v = p.value(a).unwrap_or("");
            write!(out, "\t{}", sanitize(v))?;
        }
        writeln!(out)?;
    }
    out.flush()
}

fn sanitize(v: &str) -> String {
    v.replace(['\t', '\n', '\r'], " ")
}

/// Write the ground truth as `left_id <TAB> right_id` lines.
pub fn write_ground_truth<W: Write>(dataset: &Dataset, w: W) -> io::Result<()> {
    let mut out = BufWriter::new(w);
    writeln!(out, "left_id\tright_id")?;
    for &(l, r) in dataset.ground_truth.pairs() {
        writeln!(out, "{l}\t{r}")?;
    }
    out.flush()
}

/// Export a full dataset into a directory as `<label>_left.tsv`,
/// `<label>_right.tsv` and `<label>_truth.tsv`.
pub fn export_dataset(dataset: &Dataset, dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let label = dataset.label();
    write_collection(
        &dataset.left,
        std::fs::File::create(dir.join(format!("{label}_left.tsv")))?,
    )?;
    write_collection(
        &dataset.right,
        std::fs::File::create(dir.join(format!("{label}_right.tsv")))?,
    )?;
    write_ground_truth(
        dataset,
        std::fs::File::create(dir.join(format!("{label}_truth.tsv")))?,
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetId;

    #[test]
    fn collection_tsv_has_header_and_rows() {
        let d = Dataset::generate(DatasetId::D1, 0.03, 1);
        let mut buf = Vec::new();
        write_collection(&d.left, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("id\tname\t"));
        let n_cols = header.split('\t').count();
        let mut rows = 0;
        for line in lines {
            assert_eq!(line.split('\t').count(), n_cols, "ragged row: {line}");
            rows += 1;
        }
        assert_eq!(rows, d.left.len());
    }

    #[test]
    fn ground_truth_tsv_lists_all_pairs() {
        let d = Dataset::generate(DatasetId::D2, 0.03, 2);
        let mut buf = Vec::new();
        write_ground_truth(&d, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), d.ground_truth.len() + 1);
    }

    #[test]
    fn export_writes_three_files() {
        let dir = std::env::temp_dir().join("ccer-export-test");
        let d = Dataset::generate(DatasetId::D1, 0.02, 3);
        export_dataset(&d, &dir).unwrap();
        for suffix in ["left", "right", "truth"] {
            let p = dir.join(format!("D1_{suffix}.tsv"));
            assert!(p.exists(), "{} missing", p.display());
            std::fs::remove_file(p).ok();
        }
    }
}
