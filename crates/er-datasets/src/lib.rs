#![warn(missing_docs)]

//! # er-datasets — synthetic Clean-Clean ER datasets
//!
//! The paper evaluates on ten real-world CCER datasets (Table 2) from the
//! JedAI data repository. Those files are not available offline, so this
//! crate generates **synthetic analogues that reproduce every structural
//! characteristic the paper's analysis conditions on** (DESIGN.md §3,
//! substitution 1):
//!
//! * collection sizes `|V1|, |V2|`, number of duplicates, attribute schemas
//!   and average name-value pairs per profile (Table 2);
//! * the category split the paper uses for Table 5 — *balanced* (D2, D4,
//!   D10), *one-sided* (D3, D9), *scarce* (D1, D5–D8);
//! * domain vocabulary (restaurants / products / bibliographic / movies)
//!   and per-domain noise forms the paper cites when explaining results:
//!   typos, missing values, **misplaced attribute values** (bibliographic
//!   D4/D9), limited vocabulary, format variation.
//!
//! Every generator is fully deterministic given a seed, and every dataset
//! can be scaled down (`DatasetSpec::scaled`) so the complete reproduction
//! suite runs on a laptop; the harness prints the effective sizes.
//!
//! Users with *real* data load it through the [`import`] module (the TSV
//! format [`export`] writes) and run the pipeline via
//! `er_pipeline::build_graph_over`.

pub mod dataset;
pub mod export;
pub mod generator;
pub mod import;
pub mod noise;
pub mod profile;
pub mod spec;
pub mod stats;
pub mod vocab;

pub use dataset::Dataset;
pub use generator::DatasetGenerator;
pub use import::{import_dataset, ImportedDataset};
pub use noise::NoiseProfile;
pub use profile::{EntityCollection, EntityProfile};
pub use spec::{Category, DatasetId, DatasetSpec, Domain};
pub use stats::DatasetStats;
