//! Dataset specifications replicating Table 2 of the paper.

use serde::{Deserialize, Serialize};

use crate::noise::NoiseProfile;

/// The ten benchmark datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum DatasetId {
    D1,
    D2,
    D3,
    D4,
    D5,
    D6,
    D7,
    D8,
    D9,
    D10,
}

impl DatasetId {
    /// All datasets in cost order (Table 2).
    pub const ALL: [DatasetId; 10] = [
        DatasetId::D1,
        DatasetId::D2,
        DatasetId::D3,
        DatasetId::D4,
        DatasetId::D5,
        DatasetId::D6,
        DatasetId::D7,
        DatasetId::D8,
        DatasetId::D9,
        DatasetId::D10,
    ];

    /// Short label ("D1" … "D10").
    pub fn label(&self) -> &'static str {
        match self {
            DatasetId::D1 => "D1",
            DatasetId::D2 => "D2",
            DatasetId::D3 => "D3",
            DatasetId::D4 => "D4",
            DatasetId::D5 => "D5",
            DatasetId::D6 => "D6",
            DatasetId::D7 => "D7",
            DatasetId::D8 => "D8",
            DatasetId::D9 => "D9",
            DatasetId::D10 => "D10",
        }
    }
}

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Content domain, driving vocabulary and schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Restaurant listings (D1).
    Restaurants,
    /// E-commerce products (D2, D3, D8).
    Products,
    /// Bibliographic records (D4, D9).
    Bibliographic,
    /// Movies / TV shows (D5–D7, D10).
    Movies,
}

/// The paper's QE(4) categorization by the portion of matched entities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// BLC — the vast majority of entities on both sides are matched
    /// (D2, D4, D10).
    Balanced,
    /// OSD — the vast majority of one side is matched (D3, D9).
    OneSided,
    /// SCR — only a small portion of either side is matched (D1, D5–D8).
    Scarce,
}

impl Category {
    /// The paper's abbreviation.
    pub fn label(&self) -> &'static str {
        match self {
            Category::Balanced => "BLC",
            Category::OneSided => "OSD",
            Category::Scarce => "SCR",
        }
    }
}

/// Full specification of one benchmark dataset (a Table 2 row plus the
/// generation knobs derived from the paper's per-dataset commentary).
///
/// Serializes for experiment artifacts; construction always goes through
/// [`DatasetSpec::of`], so deserialization is deliberately not supported.
#[derive(Debug, Clone, Serialize)]
pub struct DatasetSpec {
    /// Which benchmark this replicates.
    pub id: DatasetId,
    /// Source collection names (Table 2 "Dataset1/Dataset2").
    pub source_names: (&'static str, &'static str),
    /// `|V1|`.
    pub n1: u32,
    /// `|V2|`.
    pub n2: u32,
    /// `|D(V1 ∩ V2)|` — ground-truth duplicates.
    pub duplicates: u32,
    /// Attribute schema of each side (names; the first is the "core" one).
    pub attributes1: Vec<&'static str>,
    /// Right-side schema.
    pub attributes2: Vec<&'static str>,
    /// Content domain.
    pub domain: Domain,
    /// Matched-portion category (Table 5 grouping).
    pub category: Category,
    /// High-coverage/high-distinctiveness attributes used for the
    /// schema-based settings (§5).
    pub focus_attributes: Vec<&'static str>,
    /// Noise knobs reproducing the paper's per-dataset commentary.
    pub noise: NoiseProfile,
    /// Scale factor applied (1.0 = paper size).
    pub scale: f64,
}

impl DatasetSpec {
    /// All ten specifications at paper scale.
    pub fn all() -> Vec<DatasetSpec> {
        DatasetId::ALL.into_iter().map(DatasetSpec::of).collect()
    }

    /// The specification of one dataset at paper scale.
    pub fn of(id: DatasetId) -> DatasetSpec {
        match id {
            // D1: OAEI 2010 restaurants — small, scarce (89/339 matched on
            // the left, 89/2256 on the right), clean names/phones.
            DatasetId::D1 => DatasetSpec {
                id,
                source_names: ("Rest.1", "Rest.2"),
                n1: 339,
                n2: 2256,
                duplicates: 89,
                attributes1: vec!["name", "phone", "address", "city", "cuisine", "type", "web"],
                attributes2: vec!["name", "phone", "address", "city", "cuisine", "type", "web"],
                domain: Domain::Restaurants,
                category: Category::Scarce,
                focus_attributes: vec!["name", "phone"],
                noise: NoiseProfile::clean(),
                scale: 1.0,
            },
            // D2: Abt-Buy products — fully balanced (every entity matched),
            // noisy product names.
            DatasetId::D2 => DatasetSpec {
                id,
                source_names: ("Abt", "Buy"),
                n1: 1076,
                n2: 1076,
                duplicates: 1076,
                attributes1: vec!["name", "description", "price"],
                attributes2: vec!["name", "description", "price"],
                domain: Domain::Products,
                category: Category::Balanced,
                focus_attributes: vec!["name"],
                noise: NoiseProfile::noisy_products(),
                scale: 1.0,
            },
            // D3: Amazon-Google products — one-sided (most of V1 matched).
            DatasetId::D3 => DatasetSpec {
                id,
                source_names: ("Amazon", "Google Pr."),
                n1: 1354,
                n2: 3039,
                duplicates: 1104,
                attributes1: vec!["title", "description", "manufacturer", "price"],
                attributes2: vec!["title", "description", "manufacturer", "price"],
                domain: Domain::Products,
                category: Category::OneSided,
                focus_attributes: vec!["title"],
                noise: NoiseProfile::noisy_products(),
                scale: 1.0,
            },
            // D4: DBLP-ACM publications — balanced, with the misplaced-value
            // noise the paper highlights ("the author of a publication is
            // added in its title").
            DatasetId::D4 => DatasetSpec {
                id,
                source_names: ("DBLP", "ACM"),
                n1: 2616,
                n2: 2294,
                duplicates: 2224,
                attributes1: vec!["title", "authors", "venue", "year"],
                attributes2: vec!["title", "authors", "venue", "year"],
                domain: Domain::Bibliographic,
                category: Category::Balanced,
                focus_attributes: vec!["title", "authors"],
                noise: NoiseProfile::bibliographic(),
                scale: 1.0,
            },
            // D5: IMDb-TMDb movies — scarce, many missing values.
            DatasetId::D5 => DatasetSpec {
                id,
                source_names: ("IMDb", "TMDb"),
                n1: 5118,
                n2: 6056,
                duplicates: 1968,
                attributes1: vec![
                    "title", "name", "year", "director", "genre", "actors", "runtime", "country",
                    "language", "rating", "votes", "plot", "writer",
                ],
                attributes2: vec![
                    "title",
                    "name",
                    "year",
                    "director",
                    "genre",
                    "actors",
                    "runtime",
                    "country",
                    "language",
                    "rating",
                    "votes",
                    "plot",
                    "writer",
                    "budget",
                    "revenue",
                    "status",
                    "tagline",
                    "homepage",
                    "spoken",
                    "production",
                    "release",
                    "popularity",
                    "overview",
                    "original",
                    "adult",
                    "video",
                    "collection",
                    "keywords",
                    "certification",
                    "crew",
                ],
                domain: Domain::Movies,
                category: Category::Scarce,
                focus_attributes: vec!["title", "name"],
                noise: NoiseProfile::movies_sparse(),
                scale: 1.0,
            },
            // D6: IMDb-TVDB — scarce; right side has few pairs per profile.
            DatasetId::D6 => DatasetSpec {
                id,
                source_names: ("IMDb", "TVDB"),
                n1: 5118,
                n2: 7810,
                duplicates: 1072,
                attributes1: vec![
                    "title", "name", "year", "director", "genre", "actors", "runtime", "country",
                    "language", "rating", "votes", "plot", "writer",
                ],
                attributes2: vec![
                    "title", "name", "year", "genre", "network", "status", "runtime", "overview",
                    "rating",
                ],
                domain: Domain::Movies,
                category: Category::Scarce,
                focus_attributes: vec!["title", "name"],
                noise: NoiseProfile::movies_sparse(),
                scale: 1.0,
            },
            // D7: TMDb-TVDB — scarce.
            DatasetId::D7 => DatasetSpec {
                id,
                source_names: ("TMDb", "TVDB"),
                n1: 6056,
                n2: 7810,
                duplicates: 1095,
                attributes1: vec![
                    "title",
                    "name",
                    "year",
                    "director",
                    "genre",
                    "actors",
                    "runtime",
                    "country",
                    "language",
                    "rating",
                    "votes",
                    "plot",
                    "writer",
                    "budget",
                    "revenue",
                    "status",
                    "tagline",
                    "homepage",
                    "spoken",
                    "production",
                    "release",
                    "popularity",
                    "overview",
                    "original",
                    "adult",
                    "video",
                    "collection",
                    "keywords",
                    "certification",
                    "crew",
                ],
                attributes2: vec![
                    "title", "name", "year", "genre", "network", "status", "runtime", "overview",
                    "rating",
                ],
                domain: Domain::Movies,
                category: Category::Scarce,
                focus_attributes: vec!["name", "title"],
                noise: NoiseProfile::movies_sparse(),
                scale: 1.0,
            },
            // D8: Walmart-Amazon products — scarce, very noisy.
            DatasetId::D8 => DatasetSpec {
                id,
                source_names: ("Walmart", "Amazon"),
                n1: 2554,
                n2: 22074,
                duplicates: 853,
                attributes1: vec![
                    "title",
                    "modelno",
                    "brand",
                    "category",
                    "price",
                    "description",
                ],
                attributes2: vec![
                    "title",
                    "modelno",
                    "brand",
                    "category",
                    "price",
                    "description",
                ],
                domain: Domain::Products,
                category: Category::Scarce,
                focus_attributes: vec!["title", "modelno"],
                noise: NoiseProfile::very_noisy_products(),
                scale: 1.0,
            },
            // D9: DBLP-Scholar — one-sided, misplaced values like D4.
            DatasetId::D9 => DatasetSpec {
                id,
                source_names: ("DBLP", "Scholar"),
                n1: 2516,
                n2: 61353,
                duplicates: 2308,
                attributes1: vec!["title", "authors", "venue", "year"],
                attributes2: vec!["title", "authors", "venue", "year"],
                domain: Domain::Bibliographic,
                category: Category::OneSided,
                // §5 lists "title" and "abstract" for D9, but Table 2 gives
                // both sides exactly 4 attributes (title/authors/venue/year);
                // we keep the Table 2 schema and use its two richest fields.
                focus_attributes: vec!["title", "authors"],
                noise: NoiseProfile::bibliographic(),
                scale: 1.0,
            },
            // D10: IMDb-DBpedia movies — balanced, highest portion of
            // missing values in the study.
            DatasetId::D10 => DatasetSpec {
                id,
                source_names: ("IMDb", "DBpedia"),
                n1: 27615,
                n2: 23182,
                duplicates: 22863,
                attributes1: vec!["title", "year", "director", "genre"],
                attributes2: vec![
                    "title", "year", "director", "genre", "country", "writer", "abstract",
                ],
                domain: Domain::Movies,
                category: Category::Balanced,
                focus_attributes: vec!["title"],
                noise: NoiseProfile::movies_missing(),
                scale: 1.0,
            },
        }
    }

    /// A down-scaled copy: sizes and duplicates multiplied by `factor`
    /// (each floored at 1 where the original was positive), preserving the
    /// matched-portion ratios and therefore the category semantics.
    pub fn scaled(&self, factor: f64) -> DatasetSpec {
        assert!(factor > 0.0 && factor <= 1.0, "scale must be in (0, 1]");
        let scale_u32 = |v: u32| -> u32 {
            if v == 0 {
                0
            } else {
                ((v as f64 * factor).round() as u32).max(1)
            }
        };
        let mut s = self.clone();
        s.n1 = scale_u32(self.n1);
        s.n2 = scale_u32(self.n2);
        s.duplicates = scale_u32(self.duplicates).min(s.n1).min(s.n2);
        s.scale = self.scale * factor;
        s
    }

    /// Brute-force comparisons `||V1 × V2||`.
    pub fn cartesian(&self) -> u64 {
        self.n1 as u64 * self.n2 as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_sizes_match_paper() {
        let d1 = DatasetSpec::of(DatasetId::D1);
        assert_eq!((d1.n1, d1.n2, d1.duplicates), (339, 2256, 89));
        let d9 = DatasetSpec::of(DatasetId::D9);
        assert_eq!((d9.n1, d9.n2, d9.duplicates), (2516, 61353, 2308));
        let d10 = DatasetSpec::of(DatasetId::D10);
        assert_eq!((d10.n1, d10.n2, d10.duplicates), (27615, 23182, 22863));
        assert_eq!(d10.cartesian(), 27615 * 23182);
    }

    #[test]
    fn attribute_counts_match_table2() {
        // |A1|/|A2| per Table 2: D1 7/7, D2 3/3, D3 4/4, D4 4/4, D5 13/30,
        // D6 13/9, D7 30/9, D8 6/6, D9 4/4, D10 4/7.
        let expect = [
            (7, 7),
            (3, 3),
            (4, 4),
            (4, 4),
            (13, 30),
            (13, 9),
            (30, 9),
            (6, 6),
            (4, 4),
            (4, 7),
        ];
        for (id, (a1, a2)) in DatasetId::ALL.into_iter().zip(expect) {
            let s = DatasetSpec::of(id);
            assert_eq!(s.attributes1.len(), a1, "{id} |A1|");
            assert_eq!(s.attributes2.len(), a2, "{id} |A2|");
        }
    }

    #[test]
    fn categories_match_paper_grouping() {
        use Category::*;
        let expect = [
            Scarce, Balanced, OneSided, Balanced, Scarce, Scarce, Scarce, Scarce, OneSided,
            Balanced,
        ];
        for (id, cat) in DatasetId::ALL.into_iter().zip(expect) {
            assert_eq!(DatasetSpec::of(id).category, cat, "{id}");
        }
    }

    #[test]
    fn scaling_preserves_ratios() {
        let full = DatasetSpec::of(DatasetId::D9);
        let tenth = full.scaled(0.1);
        assert_eq!(tenth.n1, 252);
        assert_eq!(tenth.n2, 6135);
        assert_eq!(tenth.duplicates, 231);
        let full_ratio = full.duplicates as f64 / full.n1 as f64;
        let tenth_ratio = tenth.duplicates as f64 / tenth.n1 as f64;
        assert!((full_ratio - tenth_ratio).abs() < 0.01);
        assert!((tenth.scale - 0.1).abs() < 1e-12);
    }

    #[test]
    fn duplicates_never_exceed_collections() {
        for id in DatasetId::ALL {
            for f in [1.0, 0.5, 0.1, 0.01] {
                let s = DatasetSpec::of(id).scaled(f);
                assert!(s.duplicates <= s.n1.min(s.n2), "{id} at {f}");
            }
        }
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(DatasetId::D7.label(), "D7");
        assert_eq!(DatasetId::D10.to_string(), "D10");
        assert_eq!(Category::Scarce.label(), "SCR");
    }
}
