//! Import real datasets from TSV files.
//!
//! The adoption path for users with actual benchmark data (e.g. the JedAI
//! data repository the paper evaluates on): read two collection TSVs and
//! a ground-truth TSV in the exact format [`export`](crate::export)
//! writes, and run the full pipeline on them via
//! `er_pipeline::build_graph_over`.
//!
//! Format:
//!
//! * collection — a header line `id <TAB> attr1 <TAB> attr2 …` followed
//!   by one row per entity; entity ids must be the dense sequence
//!   `0..n` in order (the row index), empty cells mean "attribute
//!   absent";
//! * ground truth — an optional `left_id <TAB> right_id` header followed
//!   by one id pair per line.

use std::io::{self, BufRead, BufReader};
use std::path::Path;

use er_core::GroundTruth;

use crate::profile::{EntityCollection, EntityProfile};

/// Errors raised while importing TSV data.
#[derive(Debug)]
pub enum ImportError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input violates the expected format; the message names the line.
    Format(String),
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Io(e) => write!(f, "i/o error: {e}"),
            ImportError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for ImportError {}

impl From<io::Error> for ImportError {
    fn from(e: io::Error) -> Self {
        ImportError::Io(e)
    }
}

/// A dataset read from TSV files: the importer's counterpart of
/// [`Dataset`](crate::Dataset), without a generator spec.
#[derive(Debug, Clone)]
pub struct ImportedDataset {
    /// A short name for reports (derived from the directory or label).
    pub name: String,
    /// The first clean collection `V1`.
    pub left: EntityCollection,
    /// The second clean collection `V2`.
    pub right: EntityCollection,
    /// Known duplicates.
    pub ground_truth: GroundTruth,
}

/// Read one collection TSV (see the module docs for the format).
pub fn read_collection<R: BufRead>(r: R) -> Result<EntityCollection, ImportError> {
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or_else(|| ImportError::Format("empty file: missing header".into()))??;
    let mut cols = header.split('\t');
    let id_col = cols.next().unwrap_or_default();
    if id_col != "id" {
        return Err(ImportError::Format(format!(
            "header must start with an 'id' column, found {id_col:?}"
        )));
    }
    let attribute_names: Vec<String> = cols.map(str::to_string).collect();
    if attribute_names.is_empty() {
        return Err(ImportError::Format(
            "header declares no attribute columns".into(),
        ));
    }

    let mut profiles = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let mut cells = line.split('\t');
        let id_cell = cells.next().unwrap_or_default();
        let id: u32 = id_cell.parse().map_err(|_| {
            ImportError::Format(format!("line {}: invalid id {id_cell:?}", lineno + 2))
        })?;
        if id as usize != profiles.len() {
            return Err(ImportError::Format(format!(
                "line {}: ids must be dense and in order (expected {}, found {id})",
                lineno + 2,
                profiles.len()
            )));
        }
        let mut attributes = Vec::new();
        for (a, v) in attribute_names.iter().zip(cells.by_ref()) {
            if !v.is_empty() {
                attributes.push((a.clone(), v.to_string()));
            }
        }
        if cells.next().is_some() {
            return Err(ImportError::Format(format!(
                "line {}: more cells than header columns",
                lineno + 2
            )));
        }
        profiles.push(EntityProfile::new(id, attributes));
    }
    Ok(EntityCollection {
        profiles,
        attribute_names,
    })
}

/// Read a ground-truth TSV of `left_id <TAB> right_id` pairs (an optional
/// header line is skipped). Ids are validated against the collection sizes
/// and the one-to-one constraint of clean collections.
pub fn read_ground_truth<R: BufRead>(
    r: R,
    n_left: u32,
    n_right: u32,
) -> Result<GroundTruth, ImportError> {
    let mut pairs = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        if line.is_empty() || (lineno == 0 && line.starts_with("left_id")) {
            continue;
        }
        let mut cells = line.split('\t');
        let parse = |cell: Option<&str>| -> Result<u32, ImportError> {
            cell.and_then(|c| c.parse().ok()).ok_or_else(|| {
                ImportError::Format(format!("line {}: expected two numeric ids", lineno + 1))
            })
        };
        let l = parse(cells.next())?;
        let r_ = parse(cells.next())?;
        if l >= n_left || r_ >= n_right {
            return Err(ImportError::Format(format!(
                "line {}: pair ({l}, {r_}) out of bounds for {n_left}x{n_right} collections",
                lineno + 1
            )));
        }
        pairs.push((l, r_));
    }
    let mut seen_l = er_core::FxHashSet::default();
    let mut seen_r = er_core::FxHashSet::default();
    for &(l, r_) in &pairs {
        if !seen_l.insert(l) || !seen_r.insert(r_) {
            return Err(ImportError::Format(format!(
                "ground truth is not one-to-one at pair ({l}, {r_}) — \
                 clean collections admit at most one match per entity"
            )));
        }
    }
    Ok(GroundTruth::new(pairs))
}

/// Import `<label>_left.tsv`, `<label>_right.tsv` and `<label>_truth.tsv`
/// from a directory — the layout [`export_dataset`](crate::export::export_dataset) writes.
pub fn import_dataset(dir: &Path, label: &str) -> Result<ImportedDataset, ImportError> {
    let open = |suffix: &str| -> Result<BufReader<std::fs::File>, ImportError> {
        let path = dir.join(format!("{label}_{suffix}.tsv"));
        Ok(BufReader::new(std::fs::File::open(&path).map_err(|e| {
            ImportError::Format(format!("cannot open {}: {e}", path.display()))
        })?))
    };
    let left = read_collection(open("left")?)?;
    let right = read_collection(open("right")?)?;
    let ground_truth = read_ground_truth(open("truth")?, left.len() as u32, right.len() as u32)?;
    Ok(ImportedDataset {
        name: label.to_string(),
        left,
        right,
        ground_truth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::export;
    use crate::spec::DatasetId;

    #[test]
    fn collection_round_trip() {
        let d = Dataset::generate(DatasetId::D2, 0.03, 9);
        let mut buf = Vec::new();
        export::write_collection(&d.left, &mut buf).unwrap();
        let back = read_collection(buf.as_slice()).unwrap();
        assert_eq!(back.len(), d.left.len());
        assert_eq!(back.attribute_names, d.left.attribute_names);
        for (a, b) in d.left.profiles.iter().zip(&back.profiles) {
            assert_eq!(a.id, b.id);
            for attr in &d.left.attribute_names {
                // Export sanitizes tabs/newlines; generated values have
                // none, so values survive unchanged.
                assert_eq!(a.value(attr), b.value(attr), "attribute {attr}");
            }
        }
    }

    #[test]
    fn full_dataset_round_trip() {
        let d = Dataset::generate(DatasetId::D1, 0.05, 3);
        let dir = std::env::temp_dir().join("ccer_import_test");
        export::export_dataset(&d, &dir).unwrap();
        let back = import_dataset(&dir, d.label()).unwrap();
        assert_eq!(back.name, "D1");
        assert_eq!(back.left.len(), d.left.len());
        assert_eq!(back.right.len(), d.right.len());
        assert_eq!(back.ground_truth.pairs(), d.ground_truth.pairs());
    }

    #[test]
    fn header_violations_are_rejected() {
        assert!(matches!(
            read_collection("nope\tname\n".as_bytes()),
            Err(ImportError::Format(_))
        ));
        assert!(matches!(
            read_collection("id\n".as_bytes()),
            Err(ImportError::Format(m)) if m.contains("no attribute columns")
        ));
        assert!(matches!(
            read_collection("".as_bytes()),
            Err(ImportError::Format(m)) if m.contains("missing header")
        ));
    }

    #[test]
    fn row_violations_are_rejected() {
        // Non-numeric id.
        let r = read_collection("id\tname\nx\tfoo\n".as_bytes());
        assert!(matches!(r, Err(ImportError::Format(m)) if m.contains("invalid id")));
        // Non-dense ids.
        let r = read_collection("id\tname\n1\tfoo\n".as_bytes());
        assert!(matches!(r, Err(ImportError::Format(m)) if m.contains("dense")));
        // Too many cells.
        let r = read_collection("id\tname\n0\tfoo\tbar\n".as_bytes());
        assert!(matches!(r, Err(ImportError::Format(m)) if m.contains("more cells")));
        // Empty cells are absent attributes, not errors.
        let c = read_collection("id\tname\tphone\n0\t\t555\n".as_bytes()).unwrap();
        assert_eq!(c.profiles[0].value("name"), None);
        assert_eq!(c.profiles[0].value("phone"), Some("555"));
        // Missing trailing cells are also absent attributes.
        let c = read_collection("id\tname\tphone\n0\tfoo\n".as_bytes()).unwrap();
        assert_eq!(c.profiles[0].value("phone"), None);
    }

    #[test]
    fn ground_truth_validation() {
        let ok = read_ground_truth("left_id\tright_id\n0\t1\n1\t0\n".as_bytes(), 2, 2).unwrap();
        assert_eq!(ok.pairs(), &[(0, 1), (1, 0)]);
        // Out of bounds.
        let r = read_ground_truth("0\t5\n".as_bytes(), 2, 2);
        assert!(matches!(r, Err(ImportError::Format(m)) if m.contains("out of bounds")));
        // Not one-to-one.
        let r = read_ground_truth("0\t0\n0\t1\n".as_bytes(), 2, 2);
        assert!(matches!(r, Err(ImportError::Format(m)) if m.contains("one-to-one")));
        // Garbage line.
        let r = read_ground_truth("0\n".as_bytes(), 2, 2);
        assert!(matches!(r, Err(ImportError::Format(m)) if m.contains("two numeric ids")));
    }

    #[test]
    fn missing_files_surface_cleanly() {
        let r = import_dataset(Path::new("/nonexistent"), "D1");
        assert!(matches!(r, Err(ImportError::Format(m)) if m.contains("cannot open")));
    }
}
