//! Entity profiles and collections.
//!
//! An entity profile is "the description of a real-world object, provided
//! as a set of attribute-value pairs" (§2). A collection is an ordered list
//! of profiles; profile ids are their dense indices.

use serde::{Deserialize, Serialize};

/// One entity: a bag of attribute name → value pairs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntityProfile {
    /// Dense id within its collection.
    pub id: u32,
    /// Attribute name-value pairs (missing attributes are simply absent).
    pub attributes: Vec<(String, String)>,
}

impl EntityProfile {
    /// Create a profile.
    pub fn new(id: u32, attributes: Vec<(String, String)>) -> Self {
        EntityProfile { id, attributes }
    }

    /// Value of a named attribute, if present and non-empty.
    pub fn value(&self, attribute: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(a, v)| a == attribute && !v.is_empty())
            .map(|(_, v)| v.as_str())
    }

    /// All values concatenated — the schema-agnostic view of the entity.
    pub fn all_values_text(&self) -> String {
        let mut out = String::new();
        for (_, v) in &self.attributes {
            if v.is_empty() {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(v);
        }
        out
    }

    /// All non-empty values as a list (for n-gram graph models, which merge
    /// per-value graphs).
    pub fn values(&self) -> impl Iterator<Item = &str> {
        self.attributes
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(_, v)| v.as_str())
    }

    /// Number of (non-empty) name-value pairs.
    pub fn n_pairs(&self) -> usize {
        self.attributes
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .count()
    }
}

/// A clean (duplicate-free) entity collection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EntityCollection {
    /// Profiles, indexed by id.
    pub profiles: Vec<EntityProfile>,
    /// The schema: all attribute names that may appear.
    pub attribute_names: Vec<String>,
}

impl EntityCollection {
    /// Number of entities.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Total number of non-empty name-value pairs (Table 2's `NVP`).
    pub fn total_pairs(&self) -> usize {
        self.profiles.iter().map(|p| p.n_pairs()).sum()
    }

    /// Average name-value pairs per profile (Table 2's `|p̄|`).
    pub fn avg_pairs(&self) -> f64 {
        if self.profiles.is_empty() {
            0.0
        } else {
            self.total_pairs() as f64 / self.profiles.len() as f64
        }
    }

    /// Number of attributes in the schema (Table 2's `|A|`).
    pub fn n_attributes(&self) -> usize {
        self.attribute_names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EntityProfile {
        EntityProfile::new(
            3,
            vec![
                ("name".into(), "Blue Fig".into()),
                ("phone".into(), "555-0192".into()),
                ("city".into(), String::new()),
            ],
        )
    }

    #[test]
    fn value_lookup_skips_empty() {
        let p = sample();
        assert_eq!(p.value("name"), Some("Blue Fig"));
        assert_eq!(p.value("city"), None, "empty value counts as missing");
        assert_eq!(p.value("unknown"), None);
    }

    #[test]
    fn schema_agnostic_text_concatenates() {
        let p = sample();
        assert_eq!(p.all_values_text(), "Blue Fig 555-0192");
        assert_eq!(p.values().count(), 2);
        assert_eq!(p.n_pairs(), 2);
    }

    #[test]
    fn collection_statistics() {
        let c = EntityCollection {
            profiles: vec![
                sample(),
                EntityProfile::new(1, vec![("name".into(), "Casa Roja".into())]),
            ],
            attribute_names: vec!["name".into(), "phone".into(), "city".into()],
        };
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_pairs(), 3);
        assert!((c.avg_pairs() - 1.5).abs() < 1e-12);
        assert_eq!(c.n_attributes(), 3);
    }
}
