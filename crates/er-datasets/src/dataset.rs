//! A generated CCER dataset: two clean collections plus ground truth.

use serde::Serialize;

use er_core::GroundTruth;

use crate::generator::DatasetGenerator;
use crate::profile::EntityCollection;
use crate::spec::{DatasetId, DatasetSpec};

/// A complete Clean-Clean ER dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Dataset {
    /// The specification this dataset instantiates.
    pub spec: DatasetSpec,
    /// The first clean collection `V1`.
    pub left: EntityCollection,
    /// The second clean collection `V2`.
    pub right: EntityCollection,
    /// Known duplicates `D(V1 ∩ V2)`.
    pub ground_truth: GroundTruth,
}

impl Dataset {
    /// Generate the analogue of a benchmark dataset at a given scale.
    ///
    /// `scale = 1.0` reproduces the Table 2 sizes; smaller factors shrink
    /// both collections and the ground truth proportionally.
    pub fn generate(id: DatasetId, scale: f64, seed: u64) -> Dataset {
        let spec = DatasetSpec::of(id).scaled(scale);
        let mut ds = DatasetGenerator::new(spec, seed).generate();
        ds.ground_truth.reindex();
        ds
    }

    /// Dataset label ("D1"… "D10").
    pub fn label(&self) -> &'static str {
        self.spec.id.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_convenience() {
        let d = Dataset::generate(DatasetId::D1, 0.1, 11);
        assert_eq!(d.label(), "D1");
        assert_eq!(d.left.len() as u32, d.spec.n1);
        assert!(!d.ground_truth.is_empty());
        // Reindexed ground truth answers queries.
        let (l, r) = d.ground_truth.pairs()[0];
        assert!(d.ground_truth.is_match(l, r));
    }
}
