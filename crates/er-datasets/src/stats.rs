//! Per-dataset statistics — the generated analogue of Table 2.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// One row of Table 2, computed from a generated dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset label.
    pub label: String,
    /// Source names.
    pub sources: (String, String),
    /// `|V1|`.
    pub n1: usize,
    /// `|V2|`.
    pub n2: usize,
    /// Total name-value pairs of each side.
    pub nvp: (usize, usize),
    /// Schema sizes.
    pub n_attributes: (usize, usize),
    /// Average name-value pairs per profile.
    pub avg_pairs: (f64, f64),
    /// Ground-truth duplicates.
    pub duplicates: usize,
    /// Brute-force comparisons `||V1 × V2||`.
    pub cartesian: u64,
}

impl DatasetStats {
    /// Compute statistics of a generated dataset.
    pub fn of(d: &Dataset) -> DatasetStats {
        DatasetStats {
            label: d.label().to_string(),
            sources: (
                d.spec.source_names.0.to_string(),
                d.spec.source_names.1.to_string(),
            ),
            n1: d.left.len(),
            n2: d.right.len(),
            nvp: (d.left.total_pairs(), d.right.total_pairs()),
            n_attributes: (d.left.n_attributes(), d.right.n_attributes()),
            avg_pairs: (d.left.avg_pairs(), d.right.avg_pairs()),
            duplicates: d.ground_truth.len(),
            cartesian: d.left.len() as u64 * d.right.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetId;

    #[test]
    fn stats_reflect_generated_content() {
        let d = Dataset::generate(DatasetId::D1, 0.1, 5);
        let s = DatasetStats::of(&d);
        assert_eq!(s.label, "D1");
        assert_eq!(s.n1, d.left.len());
        assert_eq!(s.cartesian, (s.n1 * s.n2) as u64);
        assert!(s.avg_pairs.0 > 1.0, "profiles carry several pairs");
        assert!(s.nvp.0 >= s.n1, "at least ~1 pair per profile");
        assert_eq!(s.n_attributes, (7, 7));
    }
}
