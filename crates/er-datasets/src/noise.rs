//! Noise injection reproducing the error forms the paper's analysis cites.
//!
//! Each dataset spec carries a [`NoiseProfile`] whose knobs map directly to
//! the paper's per-dataset commentary: D1 has "relatively clean values of
//! names and phones"; D4/D9 suffer "noise in the form of misplaced
//! attribute values (e.g., the author of a publication is added in its
//! title)"; D5 has "many missing values in all attributes"; D8 is "highly
//! noisy"; D10 has "the highest portion of missing values".

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-dataset noise knobs (all probabilities in `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseProfile {
    /// Probability of a random character edit per value.
    pub typo_rate: f64,
    /// Probability of dropping one token from a multi-token value.
    pub token_drop_rate: f64,
    /// Probability that a non-core attribute value is missing entirely.
    pub missing_value_rate: f64,
    /// Probability that a value is appended into another attribute
    /// (bibliographic misplaced-value noise).
    pub misplaced_value_rate: f64,
    /// Probability of abbreviating a token (first letter + '.').
    pub abbreviation_rate: f64,
    /// Probability of appending a spurious extra token.
    pub extra_token_rate: f64,
}

impl NoiseProfile {
    /// D1-style: clean, well-curated values.
    pub fn clean() -> Self {
        NoiseProfile {
            typo_rate: 0.05,
            token_drop_rate: 0.03,
            missing_value_rate: 0.10,
            misplaced_value_rate: 0.0,
            abbreviation_rate: 0.05,
            extra_token_rate: 0.03,
        }
    }

    /// D2/D3-style: noisy product titles (re-orderings, qualifiers, typos).
    pub fn noisy_products() -> Self {
        NoiseProfile {
            typo_rate: 0.15,
            token_drop_rate: 0.20,
            missing_value_rate: 0.25,
            misplaced_value_rate: 0.0,
            abbreviation_rate: 0.10,
            extra_token_rate: 0.25,
        }
    }

    /// D8-style: highly noisy products (the paper caps F1 below 0.5 here).
    pub fn very_noisy_products() -> Self {
        NoiseProfile {
            typo_rate: 0.30,
            token_drop_rate: 0.35,
            missing_value_rate: 0.35,
            misplaced_value_rate: 0.0,
            abbreviation_rate: 0.15,
            extra_token_rate: 0.35,
        }
    }

    /// D4/D9-style: clean text but frequent misplaced attribute values.
    pub fn bibliographic() -> Self {
        NoiseProfile {
            typo_rate: 0.08,
            token_drop_rate: 0.08,
            missing_value_rate: 0.10,
            misplaced_value_rate: 0.25,
            abbreviation_rate: 0.20,
            extra_token_rate: 0.05,
        }
    }

    /// D5–D7-style: sparse movie/TV records with many missing values.
    pub fn movies_sparse() -> Self {
        NoiseProfile {
            typo_rate: 0.10,
            token_drop_rate: 0.10,
            missing_value_rate: 0.55,
            misplaced_value_rate: 0.0,
            abbreviation_rate: 0.05,
            extra_token_rate: 0.10,
        }
    }

    /// D10-style: the highest portion of missing values.
    pub fn movies_missing() -> Self {
        NoiseProfile {
            typo_rate: 0.12,
            token_drop_rate: 0.12,
            missing_value_rate: 0.65,
            misplaced_value_rate: 0.0,
            abbreviation_rate: 0.05,
            extra_token_rate: 0.10,
        }
    }
}

fn random_letter<R: Rng>(rng: &mut R) -> char {
    char::from(b'a' + rng.gen_range(0..26u8))
}

/// Apply one random character edit (substitute / insert / delete /
/// transpose) to a value.
pub fn apply_typo<R: Rng>(rng: &mut R, value: &str) -> String {
    let chars: Vec<char> = value.chars().collect();
    if chars.is_empty() {
        return value.to_string();
    }
    let mut out = chars.clone();
    let pos = rng.gen_range(0..out.len());
    match rng.gen_range(0..4u8) {
        0 => {
            // substitute with a nearby lowercase letter
            out[pos] = random_letter(rng);
        }
        1 => {
            out.insert(pos, random_letter(rng));
        }
        2 => {
            if out.len() > 1 {
                out.remove(pos);
            }
        }
        _ => {
            if pos + 1 < out.len() {
                out.swap(pos, pos + 1);
            }
        }
    }
    out.into_iter().collect()
}

/// Drop one random token from a multi-token value.
pub fn drop_token<R: Rng>(rng: &mut R, value: &str) -> String {
    let toks: Vec<&str> = value.split_whitespace().collect();
    if toks.len() < 2 {
        return value.to_string();
    }
    let skip = rng.gen_range(0..toks.len());
    toks.iter()
        .enumerate()
        .filter(|(i, _)| *i != skip)
        .map(|(_, t)| *t)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Abbreviate one random token longer than 2 characters.
pub fn abbreviate_token<R: Rng>(rng: &mut R, value: &str) -> String {
    let toks: Vec<&str> = value.split_whitespace().collect();
    if toks.is_empty() {
        return value.to_string();
    }
    let idx = rng.gen_range(0..toks.len());
    toks.iter()
        .enumerate()
        .map(|(i, t)| {
            if i == idx && t.chars().count() > 2 {
                let first = t.chars().next().expect("non-empty token");
                format!("{first}.")
            } else {
                (*t).to_string()
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn typo_changes_at_most_locally() {
        let mut r = rng();
        for _ in 0..100 {
            let v = apply_typo(&mut r, "panasonic lumix");
            let len_diff = (v.chars().count() as i64 - 15).abs();
            assert!(len_diff <= 1, "one edit changes length by at most 1: {v}");
        }
    }

    #[test]
    fn typo_on_empty_is_noop() {
        let mut r = rng();
        assert_eq!(apply_typo(&mut r, ""), "");
    }

    #[test]
    fn drop_token_removes_exactly_one() {
        let mut r = rng();
        let v = drop_token(&mut r, "alpha beta gamma");
        assert_eq!(v.split_whitespace().count(), 2);
        assert_eq!(drop_token(&mut r, "single"), "single");
    }

    #[test]
    fn abbreviation_shortens_a_token() {
        let mut r = rng();
        let mut abbreviated = false;
        for _ in 0..20 {
            let v = abbreviate_token(&mut r, "jeffrey ullman");
            if v.contains('.') {
                abbreviated = true;
                assert!(v == "j. ullman" || v == "jeffrey u.", "{v}");
            }
        }
        assert!(abbreviated);
    }

    #[test]
    fn profiles_are_ordered_by_noisiness() {
        let clean = NoiseProfile::clean();
        let noisy = NoiseProfile::very_noisy_products();
        assert!(noisy.typo_rate > clean.typo_rate);
        assert!(noisy.missing_value_rate > clean.missing_value_rate);
        // Only bibliographic datasets misplace values.
        assert!(NoiseProfile::bibliographic().misplaced_value_rate > 0.0);
        assert_eq!(NoiseProfile::movies_sparse().misplaced_value_rate, 0.0);
        // D10 has the most missing values.
        assert!(
            NoiseProfile::movies_missing().missing_value_rate
                > NoiseProfile::movies_sparse().missing_value_rate
        );
    }
}
