//! Similarity-graph construction for every function of the taxonomy.
//!
//! The paper applies **no blocking**: every cross-pair with similarity
//! above zero becomes an edge. For set/bag measures a pair has positive
//! similarity iff it shares at least one term (or n-gram-graph edge), so an
//! inverted index enumerates the positive pairs *exactly*; edit-distance
//! and semantic measures score the full Cartesian product.
//!
//! All weights are min-max normalized with a `0.0` floor: non-negative raw
//! scores map onto `(0, 1]` (the weakest retained edge keeps a positive
//! weight instead of being demoted to an exact-0 non-edge), and graphs
//! with negative raw scores (`keep_positive_only: false` under signed
//! measures) fall back to plain min-max over `[lo, hi]`.
//!
//! # The parallel construction engine
//!
//! Construction of one graph is split into a serial **prepare** phase that
//! builds the immutable read-side structures — DF indexes, the inverted
//! index, encoded vectors / n-gram graphs, the interned WMD token table —
//! and a **score** phase that shards the left-entity rows over
//! `cfg.effective_threads()` crossbeam scoped workers. Workers share the
//! prepared state read-only (plain `&` reads, no locks on the hot path),
//! keep their own scratch (probe stamps, WMD distance caches), claim
//! contiguous row chunks through an atomic cursor, and emit local triple
//! buffers that a deterministic chunk-order merge feeds into
//! [`GraphBuilder`] — so results are **bit-identical** to the serial path
//! for any thread count (property-tested in `tests/graphgen_props.rs`).
//!
//! [`build_graph_restricted`] reuses the same scorers to score *only*
//! blocked candidate pairs — the production "blocking first" pipeline —
//! instead of building the full graph and discarding most of it, and
//! [`build_prepared`] emits the sorted edge view alongside the graph, so
//! construction and a following threshold sweep
//! (`er_matchers::PreparedGraph::from_sorted`) share exactly one
//! `O(m log m)` sort between them instead of each deriving its own view.
//!
//! # The streaming top-k path
//!
//! [`build_graph_topk`] bounds peak memory at `O(n_left × k)` edges: each
//! worker streams its rows' candidates through a bounded per-row binary
//! heap (`er_core::TopKRow`) **during** the score phase, so the dense
//! graph never materializes — scored-and-rejected candidates cost one
//! heap comparison and no storage. Selection is deterministic (weight
//! descending, ties by ascending right id) and row-local, so results are
//! bit-identical across thread counts; with `k = usize::MAX` the retained
//! edge set equals [`build_graph`]'s (property-tested in
//! `tests/graphgen_props.rs`). [`build_graph_topk_stats`] returns the
//! builder accounting ([`TopKStats`]) that proves the bound.
//!
//! # Bound-driven scoring
//!
//! The all-pairs branches (character edit distances, Word Mover's) go
//! further: they **prune before scoring**. The sink exposes an
//! *admission bound* — the row heap's current k-th weight — and the
//! scorers skip any candidate whose cheap exact upper bound (length /
//! character-bag counting filters for the char measures, centroid
//! distance for relaxed WMD) falls strictly below it; the edit-distance
//! measures additionally run banded early-exit kernels that abandon a
//! pair once its distance provably exceeds what the bound admits, and
//! the WMD transport sum short-circuits on its monotone partial sums.
//! Every bound dominates the measure's own `f64` under monotone float
//! steps and pruning is strict-below only, so a pruned candidate could
//! never have entered the heap: [`build_graph_topk`] output stays
//! **bit-identical** to the dense-then-prune flow (property-proven per
//! measure and thread count). [`TopKStats`] reports the
//! offered/pruned/scored accounting.

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::thread;
use parking_lot::Mutex;

use er_core::{
    ConstructionCounters, Edge, FxHashMap, FxHashSet, GraphBuilder, SimilarityGraph, SortedEdges,
    TopKRow,
};
use er_datasets::{Dataset, EntityCollection, EntityProfile};
use er_embed::lanes as embed_lanes;
use er_embed::{
    cosine_distance_bound, inverse_distance_bound, BagSummary, DenseVector, SemanticMeasure,
    VectorBallIndex,
};
use er_textsim::lanes::{self, MyersBatch, LANE_WIDTH};
use er_textsim::{
    CharMeasure, CharScratch, CharTable, DfIndex, GraphSimilarity, LengthBucketIndex, NGramGraph,
    NGramScheme, SchemaBasedMeasure, SparseVector, VectorMeasure, VectorModel,
};
use serde::Serialize;

use crate::candidates::{
    generate_ball_candidates, generate_char_candidates, generate_token_candidates, CandidateMode,
};
use crate::config::{KernelMode, PipelineConfig};
use crate::taxonomy::{SemanticScope, SimilarityFunction};

/// A scored pair before normalization: `(left, right, raw weight)`.
pub(crate) type Triple = (u32, u32, f64);

/// The min-max normalization frame one build derived from its retained
/// raw scores — the map the construction finalize step applies to every
/// edge weight.
///
/// A resident service that scores *new* records against an already-built
/// graph must map their raw scores through the **same** frame, or the new
/// edges would live on a different scale than the resident ones. The
/// frame is therefore a first-class output of the framed build variants
/// ([`build_graph_topk_framed`]) and an input to
/// [`ResidentScorer`](crate::resident::ResidentScorer). It is frozen at
/// build time: later inserts could in principle widen the raw score
/// range, which a full rebuild would absorb into a new frame — documented
/// drift of the incremental path (the clamp keeps weights valid anyway).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct NormFrame {
    /// Lower bound of the raw score range (floored at `0.0`, see
    /// the finalize step).
    lo: f64,
    /// `hi - lo`; non-positive or non-finite means a degenerate frame
    /// (every weight maps to `1.0`).
    span: f64,
}

impl NormFrame {
    /// The frame of a retained raw-score multiset (post positivity
    /// filter). Mirrors the finalize step bit for bit.
    pub(crate) fn compute(shards: &[Vec<Triple>]) -> Self {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for shard in shards {
            for &(_, _, w) in shard {
                lo = lo.min(w);
                hi = hi.max(w);
            }
        }
        NormFrame::from_bounds(lo, hi)
    }

    /// The frame over raw-score bounds folded externally: `lo` / `hi`
    /// are the running min / max over the retained raw scores
    /// (`f64::INFINITY` / `f64::NEG_INFINITY` when there are none, as a
    /// fold from those identities yields). Because min/max folding is
    /// order- and grouping-independent, a frame assembled from per-shard
    /// bounds is **bit-identical** to [`compute`] over the concatenated
    /// triples — the keystone of the out-of-core build's equivalence
    /// with the in-RAM path (`crate::sharded`).
    pub(crate) fn from_bounds(lo: f64, hi: f64) -> Self {
        let lo = lo.min(0.0);
        NormFrame { lo, span: hi - lo }
    }

    /// A degenerate frame mapping every raw score to `1.0` — what an
    /// empty build produces.
    pub fn degenerate() -> Self {
        NormFrame { lo: 0.0, span: 0.0 }
    }

    /// Normalize one raw score exactly as the producing build did.
    #[inline]
    pub fn apply(&self, w: f64) -> f64 {
        if self.span <= f64::EPSILON || self.span.is_nan() {
            1.0
        } else {
            ((w - self.lo) / self.span).clamp(0.0, 1.0)
        }
    }
}

/// Where a scorer's retained triples go. The dense path collects them
/// verbatim (`Vec<Triple>`); the top-k path routes them through a bounded
/// per-row heap so rejected candidates never occupy memory.
///
/// The sink also drives **bound-driven scoring**: before paying for a
/// full similarity computation a scorer may ask for the sink's
/// [`admission_bound`](EdgeSink::admission_bound) and skip any candidate
/// whose cheap *exact* upper bound falls strictly below it — the skipped
/// emit could not have entered the sink, so results stay bit-identical.
/// The dense sink admits everything (bound `-∞`, pruning never fires);
/// [`TopKSink`] answers with its row heap's current k-th weight.
trait EdgeSink {
    /// Accept one scored pair (already positivity-filtered by the scorer).
    fn emit(&mut self, left: u32, right: u32, weight: f64);

    /// The weight a new candidate of the current row must reach to
    /// possibly be retained. A scorer may skip a candidate iff its upper
    /// bound is **strictly** below this (equal weights can still win the
    /// sink's tie-break).
    #[inline]
    fn admission_bound(&self) -> f64 {
        f64::NEG_INFINITY
    }

    /// Count one candidate pair materialized and handed to a measure
    /// (it will subsequently be pruned or scored, never both). Pairs an
    /// index skips *before* generation are not counted anywhere — that
    /// is the point of [`CandidateMode::Indexed`].
    #[inline]
    fn note_generated(&mut self) {}

    /// Count one candidate skipped via an upper bound (never emitted).
    #[inline]
    fn note_pruned(&mut self) {}

    /// Count one candidate fully scored (emitted or positivity-dropped).
    #[inline]
    fn note_scored(&mut self) {}
}

impl EdgeSink for Vec<Triple> {
    #[inline]
    fn emit(&mut self, left: u32, right: u32, weight: f64) {
        self.push((left, right, weight));
    }
}

/// A similarity graph together with the function that produced it.
#[derive(Debug, Clone, Serialize)]
pub struct GeneratedGraph {
    /// The producing similarity function.
    pub function: SimilarityFunction,
    /// The normalized similarity graph.
    pub graph: SimilarityGraph,
}

/// A constructed graph bundled with its weight-descending sorted edge
/// view, produced in one pass by [`build_prepared`] /
/// [`build_prepared_over`]. Feed it to
/// `er_matchers::PreparedGraph::from_sorted`: the sort happens once, at
/// emit time, and every downstream consumer (sweeps, stats, caches)
/// shares this view instead of deriving its own.
#[derive(Debug, Clone)]
pub struct BuiltGraph {
    /// The normalized similarity graph.
    pub graph: SimilarityGraph,
    /// The graph's edges sorted once at emit time (weight descending).
    pub sorted: SortedEdges,
}

/// Build the similarity graph of `function` over `dataset`.
pub fn build_graph(
    dataset: &Dataset,
    function: &SimilarityFunction,
    cfg: &PipelineConfig,
) -> SimilarityGraph {
    build_graph_over(&dataset.left, &dataset.right, function, cfg)
}

/// Build the similarity graph of `function` over two bare collections.
///
/// The entry point for *imported* data (`er_datasets::import`): everything
/// `build_graph` does — inverted-index candidate generation, parallel
/// scoring, min-max normalization — without requiring a generated
/// [`Dataset`].
pub fn build_graph_over(
    left: &EntityCollection,
    right: &EntityCollection,
    function: &SimilarityFunction,
    cfg: &PipelineConfig,
) -> SimilarityGraph {
    finalize(
        left,
        right,
        score_shards(left, right, function, None, cfg, ScoreMode::Dense),
        cfg,
    )
}

/// Build the **top-k pruned** similarity graph of `function` over
/// `dataset`: only each left entity's best `k` edges are kept, selected
/// *during* scoring so the dense graph never materializes (peak resident
/// edges stay in `O(n_left × k)` — see [`build_graph_topk_stats`]).
///
/// ```
/// use er_datasets::{Dataset, DatasetId};
/// use er_pipeline::{build_graph_topk, PipelineConfig, SimilarityFunction};
/// use er_textsim::{NGramScheme, VectorMeasure};
///
/// let d = Dataset::generate(DatasetId::D1, 0.02, 7);
/// let f = SimilarityFunction::SchemaAgnosticVector {
///     scheme: NGramScheme::Token(1),
///     measure: VectorMeasure::CosineTfIdf,
/// };
/// let g = build_graph_topk(&d, &f, 2, &PipelineConfig::default());
/// let adj = g.adjacency();
/// assert!((0..g.n_left()).all(|l| adj.left_degree(l) <= 2));
/// ```
pub fn build_graph_topk(
    dataset: &Dataset,
    function: &SimilarityFunction,
    k: usize,
    cfg: &PipelineConfig,
) -> SimilarityGraph {
    build_graph_topk_over(&dataset.left, &dataset.right, function, k, cfg)
}

/// [`build_graph_topk`] over two bare collections (the imported-data
/// entry point). See [`build_graph_topk_stats`] for the semantics and
/// the accounting variant.
///
/// ```
/// # use er_datasets::{Dataset, DatasetId};
/// # use er_pipeline::{build_graph_topk_over, PipelineConfig, SimilarityFunction};
/// # use er_textsim::{NGramScheme, VectorMeasure};
/// let d = Dataset::generate(DatasetId::D1, 0.02, 7);
/// let f = SimilarityFunction::SchemaAgnosticVector {
///     scheme: NGramScheme::Token(1),
///     measure: VectorMeasure::CosineTfIdf,
/// };
/// let g = build_graph_topk_over(&d.left, &d.right, &f, 1, &PipelineConfig::default());
/// assert!(g.n_edges() <= d.left.len());
/// ```
pub fn build_graph_topk_over(
    left: &EntityCollection,
    right: &EntityCollection,
    function: &SimilarityFunction,
    k: usize,
    cfg: &PipelineConfig,
) -> SimilarityGraph {
    build_graph_topk_stats(left, right, function, k, cfg).0
}

/// [`build_graph_topk_over`] plus the builder accounting that proves the
/// memory bound.
///
/// Semantics: each left row keeps its `k` best candidates by **raw**
/// score, ties broken by ascending right id (the deterministic
/// `er_core::TopKBuilder` order); min-max normalization then runs over
/// the retained set. Under the default `keep_positive_only` protocol the
/// result equals `build_graph_over(..).pruned_top_k(k)` bit for bit —
/// raw scores are non-negative, so the normalization floor pins
/// `lo = 0` and the global maximum (always some row's best edge)
/// survives pruning, making the normalizer the same strictly monotone
/// map — at a fraction of the memory. (One theoretical caveat: the
/// dense flow selects on *normalized* weights, so two distinct raw
/// scores that collide onto one f64 after normalization would tie there
/// but not here; no taxonomy measure emits adjacent-ulp raw scores, and
/// the per-branch property suite enforces exact equality in practice.)
/// With the positivity filter off and genuinely negative scores,
/// normalization sees only the pruned score set (the same caveat as
/// [`build_graph_restricted`]). `k = usize::MAX` reproduces
/// [`build_graph_over`]'s edge set exactly; results are bit-identical
/// across thread counts either way.
///
/// ```
/// # use er_datasets::{Dataset, DatasetId};
/// # use er_pipeline::{build_graph_topk_stats, PipelineConfig, SimilarityFunction};
/// # use er_textsim::{NGramScheme, VectorMeasure};
/// let d = Dataset::generate(DatasetId::D1, 0.02, 7);
/// let f = SimilarityFunction::SchemaAgnosticVector {
///     scheme: NGramScheme::Token(1),
///     measure: VectorMeasure::CosineTfIdf,
/// };
/// let k = 2;
/// let (g, stats) = build_graph_topk_stats(&d.left, &d.right, &f, k, &PipelineConfig::default());
/// assert_eq!(stats.retained_edges, g.n_edges());
/// assert!(stats.peak_resident_edges <= d.left.len() * k);
/// ```
pub fn build_graph_topk_stats(
    left: &EntityCollection,
    right: &EntityCollection,
    function: &SimilarityFunction,
    k: usize,
    cfg: &PipelineConfig,
) -> (SimilarityGraph, TopKStats) {
    build_graph_topk_mode(left, right, function, k, CandidateMode::Enumerated, cfg)
}

/// [`build_graph_topk_stats`] with an explicit [`CandidateMode`].
///
/// [`CandidateMode::Indexed`] replaces each branch's candidate
/// *enumeration* with index-driven generation under the sink's admission
/// bound (prefix-filtered postings for the token-vector measures, length
/// buckets with counting filters for the character measures, centroid
/// balls for the semantic measures — see [`crate::candidates`]): pairs an
/// index rules out are never materialized, so
/// [`TopKStats::generated_pairs`] itself drops below `n_left × n_right`
/// while the finished graph stays **bit-identical** to
/// [`CandidateMode::Enumerated`] for every taxonomy branch, `k` and
/// thread count (property-proven in `tests/candidates_props.rs`).
/// Branches without a candidate index (the schema-based token measures,
/// the n-gram graph models) fall back to their own enumeration — still
/// correct, just not sub-quadratic.
///
/// ```
/// use er_datasets::{Dataset, DatasetId};
/// use er_pipeline::{
///     build_graph_topk_mode, CandidateMode, PipelineConfig, SimilarityFunction,
/// };
/// use er_textsim::{CharMeasure, SchemaBasedMeasure};
///
/// let d = Dataset::generate(DatasetId::D1, 0.02, 7);
/// let f = SimilarityFunction::SchemaBasedSyntactic {
///     attribute: "name".into(),
///     measure: SchemaBasedMeasure::Char(CharMeasure::Levenshtein),
/// };
/// let cfg = PipelineConfig::default();
/// let (g_enum, s_enum) =
///     build_graph_topk_mode(&d.left, &d.right, &f, 2, CandidateMode::Enumerated, &cfg);
/// let (g_idx, s_idx) =
///     build_graph_topk_mode(&d.left, &d.right, &f, 2, CandidateMode::Indexed, &cfg);
/// assert_eq!(g_enum.edges(), g_idx.edges());
/// assert!(s_idx.generated_pairs <= s_enum.generated_pairs);
/// assert_eq!(s_idx.generated_pairs, s_idx.pruned_pairs + s_idx.scored_pairs);
/// ```
pub fn build_graph_topk_mode(
    left: &EntityCollection,
    right: &EntityCollection,
    function: &SimilarityFunction,
    k: usize,
    mode: CandidateMode,
    cfg: &PipelineConfig,
) -> (SimilarityGraph, TopKStats) {
    let (graph, stats, _) = build_graph_topk_framed(left, right, function, k, mode, cfg);
    (graph, stats)
}

/// [`build_graph_topk_mode`] that also returns the [`NormFrame`] the
/// build normalized with — the entry point for a resident service that
/// must score later record inserts onto the same weight scale (see
/// [`crate::resident`]).
pub fn build_graph_topk_framed(
    left: &EntityCollection,
    right: &EntityCollection,
    function: &SimilarityFunction,
    k: usize,
    mode: CandidateMode,
    cfg: &PipelineConfig,
) -> (SimilarityGraph, TopKStats, NormFrame) {
    let acct = ConstructionCounters::default();
    let shards = score_shards(
        left,
        right,
        function,
        None,
        cfg,
        ScoreMode::TopK {
            k,
            acct: &acct,
            indexed: mode == CandidateMode::Indexed,
        },
    );
    let (graph, frame) = finalize_framed(left, right, shards, cfg);
    let stats = TopKStats {
        generated_pairs: acct.generated(),
        offered_edges: acct.offered(),
        retained_edges: graph.n_edges(),
        peak_resident_edges: acct.peak(),
        pruned_pairs: acct.pruned(),
        scored_pairs: acct.scored(),
    };
    (graph, stats, frame)
}

/// [`build_graph_topk_over`] restricted to the blocked `candidates` —
/// the production combination: block first, score only candidate pairs,
/// and keep each left entity's best `k` of them, all in one streaming
/// pass with peak resident edges in `O(n_left × k)`. Equivalent to
/// [`build_graph_restricted`] followed by
/// `SimilarityGraph::pruned_top_k(k)` under the default protocol (same
/// caveats as [`build_graph_topk_stats`]); normalization runs over the
/// restricted, pruned score set.
///
/// ```
/// # use er_core::FxHashSet;
/// # use er_datasets::{Dataset, DatasetId};
/// # use er_pipeline::{build_graph_topk_restricted, PipelineConfig, SimilarityFunction};
/// # use er_textsim::{NGramScheme, VectorMeasure};
/// let d = Dataset::generate(DatasetId::D1, 0.02, 7);
/// let f = SimilarityFunction::SchemaAgnosticVector {
///     scheme: NGramScheme::Token(1),
///     measure: VectorMeasure::CosineTfIdf,
/// };
/// let candidates = er_pipeline::token_blocking(&d.left, &d.right).candidate_pairs();
/// let g =
///     build_graph_topk_restricted(&d.left, &d.right, &f, &candidates, 2, &PipelineConfig::default());
/// assert!(g.n_edges() <= d.left.len() * 2);
/// ```
pub fn build_graph_topk_restricted(
    left: &EntityCollection,
    right: &EntityCollection,
    function: &SimilarityFunction,
    candidates: &FxHashSet<(u32, u32)>,
    k: usize,
    cfg: &PipelineConfig,
) -> SimilarityGraph {
    let lists = CandidateLists::new(left.len() as u32, right.len() as u32, candidates);
    let acct = ConstructionCounters::default();
    let shards = score_shards(
        left,
        right,
        function,
        Some(&lists),
        cfg,
        ScoreMode::TopK {
            k,
            acct: &acct,
            indexed: false,
        },
    );
    finalize(left, right, shards, cfg)
}

/// Builder accounting of one streaming top-k construction
/// ([`build_graph_topk_stats`]).
///
/// ```
/// # use er_datasets::{Dataset, DatasetId};
/// # use er_pipeline::{build_graph_topk_stats, PipelineConfig, SimilarityFunction};
/// # use er_textsim::{NGramScheme, VectorMeasure};
/// let d = Dataset::generate(DatasetId::D1, 0.02, 7);
/// let f = SimilarityFunction::SchemaAgnosticVector {
///     scheme: NGramScheme::Token(1),
///     measure: VectorMeasure::CosineTfIdf,
/// };
/// let (_, stats) = build_graph_topk_stats(&d.left, &d.right, &f, 3, &PipelineConfig::default());
/// assert!(stats.offered_edges >= stats.retained_edges);
/// assert!(stats.peak_resident_edges >= stats.retained_edges);
/// ```
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TopKStats {
    /// Candidate pairs the scorers **generated** — materialized and
    /// handed to a measure, after which each was either bound-pruned or
    /// fully scored (`generated_pairs == pruned_pairs + scored_pairs` on
    /// every path). [`CandidateMode::Enumerated`] generates the branch's
    /// full candidate enumeration; [`CandidateMode::Indexed`] generates
    /// only the pairs its candidate index could not rule out, so this is
    /// the counter that proves the all-pairs loop is dead
    /// (`generated_pairs ≪ n_left × n_right`).
    pub generated_pairs: usize,
    /// Triples the scorers emitted — what the dense path would have
    /// buffered in full.
    pub offered_edges: usize,
    /// Edges in the finished graph (at most `n_left × k`).
    pub retained_edges: usize,
    /// Maximum triples resident at once during the score phase (bounded
    /// row heaps plus finished shard buffers) — at most `n_left × k` by
    /// construction, however many edges were offered.
    pub peak_resident_edges: usize,
    /// Candidate pairs a bound-aware scorer skipped **before** scoring:
    /// their exact upper bound fell strictly below the row heap's
    /// admission weight, so scoring them could not have changed the
    /// result. Zero for scorers without upper bounds (the
    /// inverted-index branches, whose candidate enumeration is already
    /// the filter).
    pub pruned_pairs: usize,
    /// Candidate pairs fully scored (then emitted or positivity-dropped).
    /// `pruned_pairs + scored_pairs` is the candidate volume a
    /// bound-aware scorer faced; the prune rate is their ratio.
    pub scored_pairs: usize,
}

/// Build the similarity graph of `function` over `dataset`, emitting the
/// sorted edge view alongside (see [`BuiltGraph`]).
pub fn build_prepared(
    dataset: &Dataset,
    function: &SimilarityFunction,
    cfg: &PipelineConfig,
) -> BuiltGraph {
    build_prepared_over(&dataset.left, &dataset.right, function, cfg)
}

/// [`build_graph_over`] plus the sorted edge view, sorted once at emit
/// time. Total work equals `build_graph_over` + `PreparedGraph::new`
/// (one sort either way); the point is ownership — construction emits
/// the view, so callers that need the graph *and* a prepared sweep input
/// cannot end up sorting twice.
pub fn build_prepared_over(
    left: &EntityCollection,
    right: &EntityCollection,
    function: &SimilarityFunction,
    cfg: &PipelineConfig,
) -> BuiltGraph {
    let graph = build_graph_over(left, right, function, cfg);
    let sorted = graph.sorted_edges();
    BuiltGraph { graph, sorted }
}

/// Build the similarity graph of `function` restricted to the blocked
/// `candidates` — the **blocking-first** pipeline.
///
/// Only candidate pairs are scored, so the cost is `O(|candidates|)`
/// comparisons instead of the full (or inverted-index) enumeration the
/// unrestricted build pays; under the paper's protocol
/// (`keep_positive_only: true`, the default) the edge set equals
/// `restrict_graph(build_graph_over(..), candidates)`'s. (With the
/// positivity filter off, zero-scored candidate pairs are additionally
/// retained here — the inverted-index full build cannot enumerate
/// non-term-sharing pairs at all.) Min-max normalization runs over the
/// *restricted* score set — exactly what a pipeline that blocks before
/// scoring would see — so absolute weights can differ from the
/// build-full-then-restrict flow, which normalizes over the full graph
/// first. Candidate pairs referencing out-of-range entity ids are
/// ignored.
pub fn build_graph_restricted(
    left: &EntityCollection,
    right: &EntityCollection,
    function: &SimilarityFunction,
    candidates: &FxHashSet<(u32, u32)>,
    cfg: &PipelineConfig,
) -> SimilarityGraph {
    let lists = CandidateLists::new(left.len() as u32, right.len() as u32, candidates);
    finalize(
        left,
        right,
        score_shards(left, right, function, Some(&lists), cfg, ScoreMode::Dense),
        cfg,
    )
}

/// Per-left-entity candidate lists (right ids, ascending) for the
/// restricted path, built once from the blocked pair set.
pub(crate) struct CandidateLists {
    rows: Vec<Vec<u32>>,
}

impl CandidateLists {
    fn new(n_left: u32, n_right: u32, pairs: &FxHashSet<(u32, u32)>) -> Self {
        let mut rows = vec![Vec::new(); n_left as usize];
        for &(l, r) in pairs {
            if l < n_left && r < n_right {
                rows[l as usize].push(r);
            }
        }
        for row in &mut rows {
            row.sort_unstable();
        }
        CandidateLists { rows }
    }

    #[inline]
    fn row(&self, left_id: u32) -> &[u32] {
        self.rows
            .get(left_id as usize)
            .map_or(&[], |row| row.as_slice())
    }
}

/// One taxonomy branch's scoring state: prepared serially, then shared
/// read-only (`Sync`) by every worker of the score phase.
///
/// Each scorer carries the `keep_positive` flag
/// (`cfg.keep_positive_only`): when set (the paper's protocol), only
/// positive-similarity pairs are emitted; when cleared, every *enumerated*
/// pair is emitted regardless of sign, so zero or negative raw scores
/// (e.g. semantic cosine) reach `finalize`'s plain min-max fallback. Note
/// the inverted-index branches enumerate only term-sharing pairs either
/// way — that is their exactness guarantee, not a positivity filter.
trait RowScorer: Sync {
    /// Per-worker mutable scratch (probe stamps, distance caches).
    type Scratch: Send;

    /// Number of left rows to score.
    fn n_rows(&self) -> usize;

    /// Fresh scratch for one worker.
    fn scratch(&self) -> Self::Scratch;

    /// Score row `row` against the scorer's own candidate enumeration
    /// (inverted index or full cross product), emitting retained triples.
    fn score_row<O: EdgeSink>(&self, row: usize, scratch: &mut Self::Scratch, out: &mut O);

    /// Score row `row` with **index-driven candidate generation** (the
    /// [`CandidateMode::Indexed`] top-k path): produce candidates from
    /// the scorer's index under the sink's admission bound instead of
    /// enumerating them, so ruled-out pairs are never generated at all.
    /// Scorers without a candidate index fall back to their own
    /// enumeration — still correct (the same bounded sink receives every
    /// candidate), just not sub-quadratic.
    fn score_row_indexed<O: EdgeSink>(&self, row: usize, scratch: &mut Self::Scratch, out: &mut O) {
        self.score_row(row, scratch, out);
    }

    /// Score row `row` against the blocked candidates only.
    fn score_row_restricted<O: EdgeSink>(
        &self,
        row: usize,
        cands: &CandidateLists,
        scratch: &mut Self::Scratch,
        out: &mut O,
    );
}

/// Fan `n_chunks` work units out over `threads` scoped workers claiming
/// chunk indexes through an atomic cursor, and return the per-chunk
/// results **in chunk order** — which equals the serial row order, making
/// the merge deterministic and every build bit-identical to `threads: 1`.
fn fan_out_chunks<S: RowScorer>(
    scorer: &S,
    threads: usize,
    n_chunks: usize,
    score_chunk: impl Fn(usize, &mut S::Scratch) -> Vec<Triple> + Sync,
) -> Vec<Vec<Triple>> {
    if threads == 1 {
        let mut scratch = scorer.scratch();
        return (0..n_chunks)
            .map(|c| score_chunk(c, &mut scratch))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Vec<Triple>>>> = Mutex::new((0..n_chunks).map(|_| None).collect());
    thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| {
                let mut scratch = scorer.scratch();
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let buf = score_chunk(c, &mut scratch);
                    slots.lock()[c] = Some(buf);
                }
            });
        }
    })
    .expect("construction worker panicked");
    slots
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every chunk scored"))
        .collect()
}

/// The dense score phase: shard rows into contiguous chunks and collect
/// every retained triple.
fn run_rows<S: RowScorer>(
    scorer: &S,
    cands: Option<&CandidateLists>,
    cfg: &PipelineConfig,
) -> Vec<Vec<Triple>> {
    let n_rows = scorer.n_rows();
    if n_rows == 0 {
        return Vec::new();
    }
    let threads = cfg.effective_threads().clamp(1, n_rows);
    let chunk = cfg.effective_chunk_rows(n_rows, threads);
    let n_chunks = n_rows.div_ceil(chunk);

    let score_chunk = |c: usize, scratch: &mut S::Scratch| -> Vec<Triple> {
        let mut buf = Vec::new();
        for row in c * chunk..((c + 1) * chunk).min(n_rows) {
            match cands {
                None => scorer.score_row(row, scratch, &mut buf),
                Some(lists) => scorer.score_row_restricted(row, lists, scratch, &mut buf),
            }
        }
        buf
    };

    fan_out_chunks(scorer, threads, n_chunks, score_chunk)
}

/// Per-worker [`EdgeSink`] of the top-k path: candidates of the current
/// row stream through a bounded binary heap; only net insertions touch
/// the shared resident/peak counters (evictions swap one entry for
/// another), and the flow counters are accumulated locally per chunk and
/// flushed once into the shared [`ConstructionCounters`].
struct TopKSink<'a> {
    row: TopKRow,
    left: u32,
    generated: usize,
    offered: usize,
    pruned: usize,
    scored: usize,
    drain_scratch: Vec<(u32, f64)>,
    acct: &'a ConstructionCounters,
}

impl<'a> TopKSink<'a> {
    fn new(k: usize, acct: &'a ConstructionCounters) -> Self {
        TopKSink {
            row: TopKRow::new(k),
            left: 0,
            generated: 0,
            offered: 0,
            pruned: 0,
            scored: 0,
            drain_scratch: Vec::new(),
            acct,
        }
    }

    /// Flush the finished row's survivors into the chunk buffer (sorted
    /// by weight desc, right asc) and reset the heap for the next row.
    fn drain_row_into(&mut self, buf: &mut Vec<Triple>) {
        self.drain_scratch.clear();
        self.row.drain_sorted_into(&mut self.drain_scratch);
        let left = self.left;
        buf.extend(self.drain_scratch.iter().map(|&(r, w)| (left, r, w)));
    }
}

impl EdgeSink for TopKSink<'_> {
    #[inline]
    fn emit(&mut self, left: u32, right: u32, weight: f64) {
        self.left = left;
        self.offered += 1;
        let before = self.row.len();
        self.row.offer(right, weight);
        if self.row.len() > before {
            self.acct.add_resident();
        }
    }

    #[inline]
    fn admission_bound(&self) -> f64 {
        self.row.admission_bound()
    }

    #[inline]
    fn note_generated(&mut self) {
        self.generated += 1;
    }

    #[inline]
    fn note_pruned(&mut self) {
        self.pruned += 1;
    }

    #[inline]
    fn note_scored(&mut self) {
        self.scored += 1;
    }
}

/// The streaming top-k score phase: like [`run_rows`], but each row's
/// candidates pass through a bounded heap so at most `k` of them are ever
/// resident per row. Selection is row-local, so sharding cannot change
/// results: the output is bit-identical for any thread count and chunk
/// size, exactly as for the dense path.
fn run_rows_topk<S: RowScorer>(
    scorer: &S,
    cands: Option<&CandidateLists>,
    k: usize,
    cfg: &PipelineConfig,
    acct: &ConstructionCounters,
    indexed: bool,
) -> Vec<Vec<Triple>> {
    run_rows_topk_range(scorer, cands, k, cfg, acct, indexed, 0..scorer.n_rows())
}

/// [`run_rows_topk`] over a contiguous sub-range of the scorer's rows —
/// the per-shard score phase of the out-of-core build
/// (`crate::sharded`). Each row's retained set is row-local, so scoring
/// `rows` in isolation yields exactly the triples the full run emits
/// for those rows, in the same order: concatenating consecutive range
/// outputs reproduces the full run's output bit for bit regardless of
/// the range boundaries, thread count, or chunk size.
fn run_rows_topk_range<S: RowScorer>(
    scorer: &S,
    cands: Option<&CandidateLists>,
    k: usize,
    cfg: &PipelineConfig,
    acct: &ConstructionCounters,
    indexed: bool,
    rows: std::ops::Range<usize>,
) -> Vec<Vec<Triple>> {
    let n_rows = rows.len();
    if n_rows == 0 {
        return Vec::new();
    }
    let base = rows.start;
    let threads = cfg.effective_threads().clamp(1, n_rows);
    let chunk = cfg.effective_chunk_rows(n_rows, threads);
    let n_chunks = n_rows.div_ceil(chunk);

    let score_chunk = |c: usize, scratch: &mut S::Scratch| -> Vec<Triple> {
        let mut buf = Vec::new();
        let mut sink = TopKSink::new(k, acct);
        for row in base + c * chunk..base + ((c + 1) * chunk).min(n_rows) {
            match cands {
                None if indexed => scorer.score_row_indexed(row, scratch, &mut sink),
                None => scorer.score_row(row, scratch, &mut sink),
                Some(lists) => scorer.score_row_restricted(row, lists, scratch, &mut sink),
            }
            sink.drain_row_into(&mut buf);
        }
        acct.add_generated(sink.generated);
        acct.add_offered(sink.offered);
        acct.add_pruned(sink.pruned);
        acct.add_scored(sink.scored);
        buf
    };

    fan_out_chunks(scorer, threads, n_chunks, score_chunk)
}

/// How the score phase collects a row's retained triples.
#[derive(Clone, Copy)]
pub(crate) enum ScoreMode<'a> {
    /// Keep every retained triple — the paper's dense protocol.
    Dense,
    /// Stream through bounded per-row top-k heaps (the scale path).
    TopK {
        /// Edges kept per left row.
        k: usize,
        /// Shared candidate-flow and resident/peak counters.
        acct: &'a ConstructionCounters,
        /// Generate candidates from indexes ([`CandidateMode::Indexed`])
        /// instead of enumerating them.
        indexed: bool,
    },
}

impl ScoreMode<'_> {
    /// Whether the scorers should prepare their candidate indexes.
    #[inline]
    fn is_indexed(&self) -> bool {
        matches!(self, ScoreMode::TopK { indexed: true, .. })
    }
}

/// Dispatch one prepared scorer into the requested score phase.
fn run_scorer<S: RowScorer>(
    scorer: &S,
    cands: Option<&CandidateLists>,
    cfg: &PipelineConfig,
    mode: ScoreMode<'_>,
) -> Vec<Vec<Triple>> {
    match mode {
        ScoreMode::Dense => run_rows(scorer, cands, cfg),
        ScoreMode::TopK { k, acct, indexed } => run_rows_topk(scorer, cands, k, cfg, acct, indexed),
    }
}

/// A continuation over the branch-dispatched prepared scorer: the one
/// place that knows every taxonomy branch's prepare signature
/// ([`visit_scorer`]) hands the prepared scorer to `visit`, which runs
/// whatever score phase(s) the caller wants over it. Generic rather
/// than object-safe on purpose — each visitor monomorphizes per scorer,
/// exactly like the direct calls it replaces.
trait ScorerVisitor {
    /// What the continuation produces.
    type Out;

    /// Run over the prepared scorer.
    fn visit<S: RowScorer>(self, scorer: &S) -> Self::Out;
}

/// Prepare the branch's scorer — DF statistics, inverted indexes,
/// encoded vectors, interned token tables, all over the **full**
/// collections — and hand it to `v`. `with_bounds` / `indexed` pick the
/// bound-driven / index-backed prepare variants (the top-k engine);
/// both flags only add pruning structures, never change scores.
fn visit_scorer<V: ScorerVisitor>(
    left: &EntityCollection,
    right: &EntityCollection,
    function: &SimilarityFunction,
    cfg: &PipelineConfig,
    with_bounds: bool,
    indexed: bool,
    v: V,
) -> V::Out {
    match function {
        SimilarityFunction::SchemaBasedSyntactic { attribute, measure } => match measure {
            // Character measures ride the bound-driven engine: interned
            // char tables, bit-parallel Levenshtein, prune-aware sinks.
            SchemaBasedMeasure::Char(m) => {
                let s = CharScorer::prepare(
                    left,
                    right,
                    attribute,
                    *m,
                    cfg.keep_positive_only,
                    indexed,
                    cfg.kernel_mode,
                );
                v.visit(&s)
            }
            SchemaBasedMeasure::Token(_) => {
                let s = SchemaBasedScorer::prepare(
                    left,
                    right,
                    attribute,
                    *measure,
                    cfg.keep_positive_only,
                );
                v.visit(&s)
            }
        },
        SimilarityFunction::SchemaAgnosticVector { scheme, measure } => {
            let s = VectorScorer::prepare(
                left,
                right,
                *scheme,
                *measure,
                cfg.keep_positive_only,
                cfg.kernel_mode,
            );
            v.visit(&s)
        }
        SimilarityFunction::SchemaAgnosticGraph { scheme, measure } => {
            let s =
                GraphModelScorer::prepare(left, right, *scheme, *measure, cfg.keep_positive_only);
            v.visit(&s)
        }
        SimilarityFunction::Semantic {
            model,
            measure,
            scope,
        } => {
            let enc = model.encoder();
            if measure.needs_token_vectors() {
                let s = WmdScorer::prepare(left, right, &enc, scope, cfg, with_bounds, indexed);
                v.visit(&s)
            } else {
                let s = DenseSemanticScorer::prepare(
                    left,
                    right,
                    &enc,
                    *measure,
                    scope,
                    cfg.keep_positive_only,
                    indexed,
                    cfg.kernel_mode,
                );
                v.visit(&s)
            }
        }
    }
}

/// The in-RAM continuation: one score phase over all rows.
struct RunAllRows<'a, 'b> {
    cands: Option<&'a CandidateLists>,
    cfg: &'a PipelineConfig,
    mode: ScoreMode<'b>,
}

impl ScorerVisitor for RunAllRows<'_, '_> {
    type Out = Vec<Vec<Triple>>;

    fn visit<S: RowScorer>(self, scorer: &S) -> Vec<Vec<Triple>> {
        run_scorer(scorer, self.cands, self.cfg, self.mode)
    }
}

/// Prepare the branch's scorer and run the score phase.
pub(crate) fn score_shards(
    left: &EntityCollection,
    right: &EntityCollection,
    function: &SimilarityFunction,
    cands: Option<&CandidateLists>,
    cfg: &PipelineConfig,
    mode: ScoreMode<'_>,
) -> Vec<Vec<Triple>> {
    visit_scorer(
        left,
        right,
        function,
        cfg,
        matches!(mode, ScoreMode::TopK { .. }),
        mode.is_indexed(),
        RunAllRows { cands, cfg, mode },
    )
}

/// The out-of-core continuation: the same prepared scorer, scored one
/// contiguous left-row range ("shard") at a time through the streaming
/// top-k engine, each finished shard handed to `on_shard` (which spills
/// it and frees the memory) before the next shard starts.
struct RunShardedRows<'a, F> {
    k: usize,
    indexed: bool,
    cfg: &'a PipelineConfig,
    acct: &'a ConstructionCounters,
    shard_rows: usize,
    on_shard: F,
}

impl<F: FnMut(usize, Vec<Vec<Triple>>)> ScorerVisitor for RunShardedRows<'_, F> {
    type Out = ();

    fn visit<S: RowScorer>(mut self, scorer: &S) {
        let n_rows = scorer.n_rows();
        let mut start = 0;
        let mut shard = 0;
        while start < n_rows {
            let end = (start + self.shard_rows).min(n_rows);
            let bufs = run_rows_topk_range(
                scorer,
                None,
                self.k,
                self.cfg,
                self.acct,
                self.indexed,
                start..end,
            );
            (self.on_shard)(shard, bufs);
            start = end;
            shard += 1;
        }
    }
}

/// Prepare the branch's scorer **once** over the full collections, then
/// run the streaming top-k score phase shard by shard: `shard_rows`
/// scorer rows at a time, each finished shard's triple buffers passed to
/// `on_shard` in row order and dropped before the next shard is scored.
///
/// Because the scorer (and with it every DF statistic, index and
/// encoding that feeds the raw scores) is identical to the in-RAM
/// build's, and each row's top-k selection is row-local, concatenating
/// the `on_shard` payloads in call order reproduces
/// [`score_shards`]`(…, ScoreMode::TopK, …)`'s output bit for bit — the
/// out-of-core builder (`crate::sharded`) owes its equivalence proof to
/// exactly this invariant.
#[allow(clippy::too_many_arguments)]
pub(crate) fn score_topk_sharded<F: FnMut(usize, Vec<Vec<Triple>>)>(
    left: &EntityCollection,
    right: &EntityCollection,
    function: &SimilarityFunction,
    k: usize,
    indexed: bool,
    cfg: &PipelineConfig,
    shard_rows: usize,
    acct: &ConstructionCounters,
    on_shard: F,
) {
    visit_scorer(
        left,
        right,
        function,
        cfg,
        true,
        indexed,
        RunShardedRows {
            k,
            indexed,
            cfg,
            acct,
            shard_rows,
            on_shard,
        },
    )
}

/// Filter non-positive weights, min-max normalize with a `0.0` floor, and
/// merge the shards into the graph (deterministic shard order).
///
/// The floor keeps non-negative measures on `(0, 1]`: with plain min-max
/// the weakest retained edge maps to exactly `0.0`, silently demoting a
/// positive-similarity pair to a non-edge at every positive grid
/// threshold. Only genuinely negative raw scores (possible under
/// `keep_positive_only: false`) shift the lower bound below zero.
fn finalize(
    left: &EntityCollection,
    right: &EntityCollection,
    shards: Vec<Vec<Triple>>,
    cfg: &PipelineConfig,
) -> SimilarityGraph {
    finalize_framed(left, right, shards, cfg).0
}

/// [`finalize`] that also returns the [`NormFrame`] it applied, so a
/// resident service can normalize later incremental scores identically.
fn finalize_framed(
    left: &EntityCollection,
    right: &EntityCollection,
    mut shards: Vec<Vec<Triple>>,
    cfg: &PipelineConfig,
) -> (SimilarityGraph, NormFrame) {
    if cfg.keep_positive_only {
        for shard in &mut shards {
            shard.retain(|&(_, _, w)| w > 0.0);
        }
    }
    let frame = NormFrame::compute(&shards);
    let n1 = left.len() as u32;
    let n2 = right.len() as u32;
    let n_edges = shards.iter().map(Vec::len).sum();
    let mut b = GraphBuilder::with_capacity(n1, n2, n_edges);
    for shard in shards {
        b.merge_shard(
            shard
                .into_iter()
                .map(|(l, r, w)| Edge::new(l, r, frame.apply(w))),
        )
        .expect("scorers emit valid unique edges");
    }
    (b.build(), frame)
}

// ---------------------------------------------------------------------------
// Schema-based syntactic: all-pairs scoring of one attribute.
// ---------------------------------------------------------------------------

/// All-pairs scoring of one attribute with a string measure. Entities
/// missing the attribute produce no edges; rows range over the left
/// entities that *have* the attribute.
struct SchemaBasedScorer<'a> {
    left: Vec<(u32, &'a str)>,
    right: Vec<(u32, &'a str)>,
    /// Right attribute values by entity id, for candidate lookups.
    right_by_id: FxHashMap<u32, &'a str>,
    measure: SchemaBasedMeasure,
    keep_positive: bool,
}

impl<'a> SchemaBasedScorer<'a> {
    fn prepare(
        left: &'a EntityCollection,
        right: &'a EntityCollection,
        attribute: &str,
        measure: SchemaBasedMeasure,
        keep_positive: bool,
    ) -> Self {
        let with_attr = |c: &'a EntityCollection| -> Vec<(u32, &'a str)> {
            c.profiles
                .iter()
                .filter_map(|p| p.value(attribute).map(|v| (p.id, v)))
                .collect()
        };
        let right = with_attr(right);
        SchemaBasedScorer {
            left: with_attr(left),
            right_by_id: right.iter().copied().collect(),
            right,
            measure,
            keep_positive,
        }
    }
}

impl RowScorer for SchemaBasedScorer<'_> {
    type Scratch = ();

    fn n_rows(&self) -> usize {
        self.left.len()
    }

    fn scratch(&self) -> Self::Scratch {}

    fn score_row<O: EdgeSink>(&self, row: usize, _scratch: &mut (), out: &mut O) {
        let (li, lv) = self.left[row];
        for &(ri, rv) in &self.right {
            out.note_generated();
            let w = self.measure.similarity(lv, rv);
            out.note_scored();
            if w > 0.0 || !self.keep_positive {
                out.emit(li, ri, w);
            }
        }
    }

    fn score_row_restricted<O: EdgeSink>(
        &self,
        row: usize,
        cands: &CandidateLists,
        _scratch: &mut (),
        out: &mut O,
    ) {
        let (li, lv) = self.left[row];
        for &r in cands.row(li) {
            if let Some(rv) = self.right_by_id.get(&r) {
                out.note_generated();
                let w = self.measure.similarity(lv, rv);
                out.note_scored();
                if w > 0.0 || !self.keep_positive {
                    out.emit(li, r, w);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Schema-based character measures: bound-driven all-pairs scoring over a
// prepared char table.
// ---------------------------------------------------------------------------

/// All-pairs scoring of one attribute with a **character-level** measure,
/// rebuilt around upper bounds that prune before scoring.
///
/// The prepare phase interns every attribute value (both sides) once
/// into one shared [`CharTable`] — contiguous scalar-value slab, offsets
/// and sorted character bags — so the score phase never re-decodes a
/// string or allocates a `Vec<char>` per pair. Per candidate the scorer
/// asks the sink for its admission bound and, when one exists (the
/// top-k path):
///
/// 1. checks the `O(1)` length bound, then the `O(|a| + |b|)`
///    counting-filter bag bound ([`CharMeasure::length_upper_bound`] /
///    [`CharMeasure::bag_upper_bound`]);
/// 2. for the edit-distance measures, derives the largest distance the
///    bound still admits and runs the banded early-exit kernel, which
///    abandons the pair once the distance provably exceeds it.
///
/// Every bound is **exact** (≥ the measure's own `f64` under monotone
/// float steps) and pruning fires only on *strictly* smaller bounds, so
/// the retained edge set — and therefore the finished graph — is
/// bit-identical to the unpruned build (property-proven per measure in
/// `tests/graphgen_props.rs`). The dense path reports bound `-∞` and
/// skips the bound machinery entirely; it still gains the char table
/// and the row-prepared Myers bit-parallel Levenshtein.
struct CharScorer {
    /// One shared table: left entries first, then right entries.
    table: CharTable,
    /// Left entity ids that carry the attribute, in profile order.
    left_ids: Vec<u32>,
    /// Right entity ids that carry the attribute, in profile order.
    right_ids: Vec<u32>,
    /// Right entity id → table entry index, for the restricted path.
    right_entry_by_id: FxHashMap<u32, usize>,
    /// Length-bucketed index over the right entries' character bags —
    /// the inverted form of the length and counting filters, prepared
    /// only for [`CandidateMode::Indexed`]. Slot `j` is the `j`-th right
    /// entry (table entry `left_ids.len() + j`).
    index: Option<LengthBucketIndex>,
    measure: CharMeasure,
    keep_positive: bool,
    kernel: KernelMode,
}

impl CharScorer {
    fn prepare(
        left: &EntityCollection,
        right: &EntityCollection,
        attribute: &str,
        measure: CharMeasure,
        keep_positive: bool,
        indexed: bool,
        kernel: KernelMode,
    ) -> Self {
        fn with_attr<'a>(c: &'a EntityCollection, attribute: &str) -> (Vec<u32>, Vec<&'a str>) {
            let mut ids = Vec::new();
            let mut values = Vec::new();
            for p in &c.profiles {
                if let Some(v) = p.value(attribute) {
                    ids.push(p.id);
                    values.push(v);
                }
            }
            (ids, values)
        }
        let (left_ids, left_values) = with_attr(left, attribute);
        let (right_ids, right_values) = with_attr(right, attribute);
        let table = CharTable::build(
            left_values
                .iter()
                .copied()
                .chain(right_values.iter().copied()),
        );
        let right_entry_by_id = right_ids
            .iter()
            .enumerate()
            .map(|(j, &id)| (id, left_ids.len() + j))
            .collect();
        let index = indexed.then(|| {
            LengthBucketIndex::build((0..right_ids.len()).map(|j| table.bag(left_ids.len() + j)))
        });
        CharScorer {
            table,
            left_ids,
            right_ids,
            right_entry_by_id,
            index,
            measure,
            keep_positive,
            kernel,
        }
    }

    /// Whether the row-level Myers pattern is worth preparing (only the
    /// bit-parallel Levenshtein kernel consumes it).
    #[inline]
    fn uses_pattern(&self) -> bool {
        matches!(self.measure, CharMeasure::Levenshtein)
    }

    /// Full (unbounded) similarity; Levenshtein rides the row-prepared
    /// bit-parallel pattern, everything else the shared slice kernels.
    fn full_similarity(&self, a: &[u32], b: &[u32], s: &mut CharScratch) -> f64 {
        match self.measure {
            CharMeasure::Levenshtein => {
                let max_len = a.len().max(b.len());
                if max_len == 0 {
                    1.0
                } else {
                    1.0 - s.pattern_distance(b) as f64 / max_len as f64
                }
            }
            m => m.similarity_codes(a, b, s),
        }
    }

    /// Similarity under an admission bound: the edit-distance measures
    /// run the banded early-exit kernel with the largest cutoff the
    /// bound still admits; `None` means the pair provably scores below
    /// the bound (counted as pruned). Other measures are fully scored —
    /// their bounds already did the pruning.
    fn bounded_similarity(
        &self,
        a: &[u32],
        b: &[u32],
        bound: f64,
        s: &mut CharScratch,
    ) -> Option<f64> {
        match self.measure {
            CharMeasure::Levenshtein | CharMeasure::DamerauLevenshtein if bound > 0.0 => {
                let max_len = a.len().max(b.len());
                if max_len == 0 {
                    return Some(1.0);
                }
                let cutoff = edit_cutoff(bound, max_len);
                // Band the DP only where it beats the full kernel.
                let banded = 2 * cutoff + 1 < max_len;
                let d = match self.measure {
                    CharMeasure::Levenshtein => {
                        if banded {
                            s.levenshtein_bounded(a, b, cutoff)?
                        } else {
                            s.pattern_distance(b)
                        }
                    }
                    _ => {
                        if banded {
                            s.osa_bounded(a, b, cutoff)?
                        } else {
                            return Some(self.measure.similarity_codes(a, b, s));
                        }
                    }
                };
                Some(1.0 - d as f64 / max_len as f64)
            }
            _ => Some(self.full_similarity(a, b, s)),
        }
    }

    /// Score one candidate: bounds first (when the sink has an
    /// admission bound), then the measure.
    fn score_candidate<O: EdgeSink>(
        &self,
        li: u32,
        row_entry: usize,
        ri: u32,
        right_entry: usize,
        scratch: &mut CharScratch,
        out: &mut O,
    ) {
        out.note_generated();
        let a = self.table.codes(row_entry);
        let b = self.table.codes(right_entry);
        let bound = out.admission_bound();
        let w = if bound == f64::NEG_INFINITY {
            self.full_similarity(a, b, scratch)
        } else {
            if self.measure.length_upper_bound(a.len(), b.len()) < bound {
                out.note_pruned();
                return;
            }
            if let Some(ub) = self
                .measure
                .bag_upper_bound(self.table.bag(row_entry), self.table.bag(right_entry))
            {
                if ub < bound {
                    out.note_pruned();
                    return;
                }
            }
            match self.bounded_similarity(a, b, bound, scratch) {
                Some(w) => w,
                None => {
                    out.note_pruned();
                    return;
                }
            }
        };
        out.note_scored();
        if w > 0.0 || !self.keep_positive {
            out.emit(li, ri, w);
        }
    }

    /// Score one **index-generated** candidate: the generator already
    /// applied the length and counting-filter bounds through the
    /// [`LengthBucketIndex`], so only the banded-kernel short-circuit
    /// stands between the candidate and a full score.
    fn score_generated<O: EdgeSink>(
        &self,
        li: u32,
        row_entry: usize,
        ri: u32,
        right_entry: usize,
        scratch: &mut CharScratch,
        out: &mut O,
    ) {
        out.note_generated();
        let a = self.table.codes(row_entry);
        let b = self.table.codes(right_entry);
        let bound = out.admission_bound();
        let w = if bound == f64::NEG_INFINITY {
            self.full_similarity(a, b, scratch)
        } else {
            match self.bounded_similarity(a, b, bound, scratch) {
                Some(w) => w,
                None => {
                    out.note_pruned();
                    return;
                }
            }
        };
        out.note_scored();
        if w > 0.0 || !self.keep_positive {
            out.emit(li, ri, w);
        }
    }

    /// Lane-parallel scoring of up to [`LANE_WIDTH`] candidates
    /// (`(right id, table entry)` pairs, in candidate order). The graph
    /// this path builds is **bit-identical** to chaining
    /// [`Self::score_candidate`] over the same candidates — the argument,
    /// expanded in DESIGN.md §19:
    ///
    /// * The batched length/counting-filter screens compute the exact
    ///   scalar bound values (`lanes::length_upper_bounds` /
    ///   `lanes::bag_upper_bounds_from_common` are bit-identical by
    ///   construction), but against the admission bound captured at
    ///   chunk start. The bound is monotone non-decreasing, so the chunk
    ///   screen prunes a *subset* of what the scalar screen prunes; every
    ///   extra survivor it lets through scores strictly below the final
    ///   bound (the prune comparison is strict `<`) and is rejected by
    ///   the sink's heap without displacing anything.
    /// * Levenshtein survivors get **exact** distances from the
    ///   multi-text [`MyersBatch`] — the same integer the scalar banded
    ///   kernel either reports or provably brackets above `cutoff`, so
    ///   the emitted weight bits match wherever the scalar path emits
    ///   and fall below the bound wherever it pruned.
    /// * Other measures score their survivors through the scalar
    ///   bounded kernel with a *refreshed* per-candidate bound —
    ///   unchanged behaviour, the chunk only reordered the screens.
    ///
    /// `prescreened` marks candidates that already passed the
    /// length/bag bounds inside an index generator (the
    /// [`Self::score_generated`] contract) so the chunk screens are
    /// skipped for them.
    #[allow(clippy::too_many_arguments)]
    fn score_lane_chunk<O: EdgeSink>(
        &self,
        li: u32,
        row_entry: usize,
        cands: &[(u32, u32)],
        prescreened: bool,
        chars: &mut CharScratch,
        batch: &mut MyersBatch,
        out: &mut O,
    ) {
        let n = cands.len();
        debug_assert!(n <= LANE_WIDTH && n > 0);
        let a = self.table.codes(row_entry);
        let bound = out.admission_bound();
        let mut keep = [true; LANE_WIDTH];
        if bound != f64::NEG_INFINITY && !prescreened {
            let mut lens = [0usize; LANE_WIDTH];
            for (l, &(_, entry)) in cands.iter().enumerate() {
                lens[l] = self.table.char_len(entry as usize);
            }
            let mut ubs = [0.0f64; LANE_WIDTH];
            lanes::length_upper_bounds(self.measure, a.len(), &lens[..n], &mut ubs[..n]);
            for l in 0..n {
                keep[l] = ubs[l] >= bound;
            }
            if self.measure.has_bag_bound() {
                let mut kept_lane = [0usize; LANE_WIDTH];
                let mut kept_bags: [&[u32]; LANE_WIDTH] = [&[]; LANE_WIDTH];
                let mut kept_lens = [0usize; LANE_WIDTH];
                let mut kn = 0;
                for l in 0..n {
                    if keep[l] {
                        kept_lane[kn] = l;
                        kept_bags[kn] = self.table.bag(cands[l].1 as usize);
                        kept_lens[kn] = lens[l];
                        kn += 1;
                    }
                }
                if kn > 0 {
                    let mut commons = [0usize; LANE_WIDTH];
                    lanes::sorted_common_counts(
                        self.table.bag(row_entry),
                        &kept_bags[..kn],
                        &mut commons[..kn],
                    );
                    lanes::bag_upper_bounds_from_common(
                        self.measure,
                        &commons[..kn],
                        a.len(),
                        &kept_lens[..kn],
                        &mut ubs[..kn],
                    );
                    for i in 0..kn {
                        if ubs[i] < bound {
                            keep[kept_lane[i]] = false;
                        }
                    }
                }
            }
        }
        for &kept in keep.iter().take(n) {
            out.note_generated();
            if !kept {
                out.note_pruned();
            }
        }
        if self.uses_pattern() {
            // Multi-text Myers: exact distances for all surviving lanes.
            let mut kept_lane = [0usize; LANE_WIDTH];
            let mut texts: [&[u32]; LANE_WIDTH] = [&[]; LANE_WIDTH];
            let mut kn = 0;
            for l in 0..n {
                if keep[l] {
                    kept_lane[kn] = l;
                    texts[kn] = self.table.codes(cands[l].1 as usize);
                    kn += 1;
                }
            }
            if kn == 0 {
                return;
            }
            let mut dists = [0usize; LANE_WIDTH];
            batch.distances(&texts[..kn], &mut dists[..kn]);
            for i in 0..kn {
                let ri = cands[kept_lane[i]].0;
                let max_len = a.len().max(texts[i].len());
                let w = if max_len == 0 {
                    1.0
                } else {
                    1.0 - dists[i] as f64 / max_len as f64
                };
                out.note_scored();
                if w > 0.0 || !self.keep_positive {
                    out.emit(li, ri, w);
                }
            }
        } else {
            for l in 0..n {
                if !keep[l] {
                    continue;
                }
                let (ri, entry) = cands[l];
                let b = self.table.codes(entry as usize);
                let bound_now = out.admission_bound();
                let w = if bound_now == f64::NEG_INFINITY {
                    self.full_similarity(a, b, chars)
                } else {
                    match self.bounded_similarity(a, b, bound_now, chars) {
                        Some(w) => w,
                        None => {
                            out.note_pruned();
                            continue;
                        }
                    }
                };
                out.note_scored();
                if w > 0.0 || !self.keep_positive {
                    out.emit(li, ri, w);
                }
            }
        }
    }
}

/// Largest edit distance whose similarity `1 − d/L` still reaches
/// `bound`. Safety (the exactness of edit-distance pruning): on return,
/// either `cutoff == L` — the kernel can never report "exceeded" — or
/// `1.0 − (cutoff + 1) as f64 / L as f64 < bound` holds in **the same
/// f64 arithmetic the similarity formula uses**; since that formula is
/// monotone non-increasing in the integer distance, every `d > cutoff`
/// yields a similarity strictly below the bound. The float guess only
/// seeds the search — the verification loops decide.
fn edit_cutoff(bound: f64, max_len: usize) -> usize {
    let l = max_len as f64;
    let sim = |d: usize| 1.0 - d as f64 / l;
    let guess = (1.0 - bound) * l;
    let mut cutoff = if guess.is_finite() && guess > 0.0 {
        (guess as usize).min(max_len)
    } else {
        0
    };
    while cutoff > 0 && sim(cutoff) < bound {
        cutoff -= 1;
    }
    while cutoff < max_len && sim(cutoff + 1) >= bound {
        cutoff += 1;
    }
    cutoff
}

/// Per-worker scratch of the char scorer: the kernel scratch, the
/// indexed path's bucket-order and common-count buffers, and the
/// lane kernels' multi-text Myers state.
struct CharGenScratch {
    chars: CharScratch,
    order: Vec<u32>,
    counts: Vec<u32>,
    batch: MyersBatch,
}

impl RowScorer for CharScorer {
    type Scratch = CharGenScratch;

    fn n_rows(&self) -> usize {
        self.left_ids.len()
    }

    fn scratch(&self) -> CharGenScratch {
        CharGenScratch {
            chars: CharScratch::new(),
            order: Vec::new(),
            counts: Vec::new(),
            batch: MyersBatch::new(),
        }
    }

    fn score_row<O: EdgeSink>(&self, row: usize, scratch: &mut CharGenScratch, out: &mut O) {
        let li = self.left_ids[row];
        let offset = self.left_ids.len();
        if matches!(self.kernel, KernelMode::Lanes) {
            if self.uses_pattern() {
                scratch.batch.prepare(self.table.codes(row));
            }
            let mut chunk = [(0u32, 0u32); LANE_WIDTH];
            let mut cn = 0;
            for (j, &ri) in self.right_ids.iter().enumerate() {
                chunk[cn] = (ri, (offset + j) as u32);
                cn += 1;
                if cn == LANE_WIDTH {
                    self.score_lane_chunk(
                        li,
                        row,
                        &chunk[..cn],
                        false,
                        &mut scratch.chars,
                        &mut scratch.batch,
                        out,
                    );
                    cn = 0;
                }
            }
            if cn > 0 {
                self.score_lane_chunk(
                    li,
                    row,
                    &chunk[..cn],
                    false,
                    &mut scratch.chars,
                    &mut scratch.batch,
                    out,
                );
            }
            return;
        }
        if self.uses_pattern() {
            scratch.chars.set_pattern(self.table.codes(row));
        }
        for (j, &ri) in self.right_ids.iter().enumerate() {
            self.score_candidate(li, row, ri, offset + j, &mut scratch.chars, out);
        }
    }

    fn score_row_indexed<O: EdgeSink>(
        &self,
        row: usize,
        scratch: &mut CharGenScratch,
        out: &mut O,
    ) {
        let index = self
            .index
            .as_ref()
            .expect("indexed mode prepared without a length-bucket index");
        let li = self.left_ids[row];
        let offset = self.left_ids.len();
        if matches!(self.kernel, KernelMode::Lanes) && self.uses_pattern() {
            // Buffer generated candidates into lanes and flush through
            // the multi-text Myers batch. Between flushes the generator
            // keeps working with the bound as of the last flush — it
            // therefore enumerates a *superset* of the scalar
            // generator's candidates, and every extra one scores
            // strictly below the final admission bound (see
            // [`Self::score_lane_chunk`]); the retained graph is
            // bit-identical.
            scratch.batch.prepare(self.table.codes(row));
            let CharGenScratch {
                chars,
                order,
                counts,
                batch,
            } = scratch;
            let mut chunk = [(0u32, 0u32); LANE_WIDTH];
            let mut cn = 0usize;
            generate_char_candidates(
                index,
                self.measure,
                self.table.char_len(row),
                self.table.bag(row),
                order,
                counts,
                out.admission_bound(),
                |j| {
                    let ri = self.right_ids[j as usize];
                    chunk[cn] = (ri, (offset + j as usize) as u32);
                    cn += 1;
                    if cn == LANE_WIDTH {
                        self.score_lane_chunk(li, row, &chunk[..cn], true, chars, batch, out);
                        cn = 0;
                    }
                    out.admission_bound()
                },
            );
            if cn > 0 {
                self.score_lane_chunk(li, row, &chunk[..cn], true, chars, batch, out);
            }
            return;
        }
        if self.uses_pattern() {
            scratch.chars.set_pattern(self.table.codes(row));
        }
        let CharGenScratch {
            chars,
            order,
            counts,
            ..
        } = scratch;
        generate_char_candidates(
            index,
            self.measure,
            self.table.char_len(row),
            self.table.bag(row),
            order,
            counts,
            out.admission_bound(),
            |j| {
                let ri = self.right_ids[j as usize];
                self.score_generated(li, row, ri, offset + j as usize, chars, out);
                out.admission_bound()
            },
        );
    }

    fn score_row_restricted<O: EdgeSink>(
        &self,
        row: usize,
        cands: &CandidateLists,
        scratch: &mut CharGenScratch,
        out: &mut O,
    ) {
        let li = self.left_ids[row];
        if matches!(self.kernel, KernelMode::Lanes) {
            if self.uses_pattern() {
                scratch.batch.prepare(self.table.codes(row));
            }
            let mut chunk = [(0u32, 0u32); LANE_WIDTH];
            let mut cn = 0;
            for &r in cands.row(li) {
                if let Some(&entry) = self.right_entry_by_id.get(&r) {
                    chunk[cn] = (r, entry as u32);
                    cn += 1;
                    if cn == LANE_WIDTH {
                        self.score_lane_chunk(
                            li,
                            row,
                            &chunk[..cn],
                            false,
                            &mut scratch.chars,
                            &mut scratch.batch,
                            out,
                        );
                        cn = 0;
                    }
                }
            }
            if cn > 0 {
                self.score_lane_chunk(
                    li,
                    row,
                    &chunk[..cn],
                    false,
                    &mut scratch.chars,
                    &mut scratch.batch,
                    out,
                );
            }
            return;
        }
        if self.uses_pattern() {
            scratch.chars.set_pattern(self.table.codes(row));
        }
        for &r in cands.row(li) {
            if let Some(&entry) = self.right_entry_by_id.get(&r) {
                self.score_candidate(li, row, r, entry, &mut scratch.chars, out);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Schema-agnostic n-gram vector models: inverted-index scoring.
// ---------------------------------------------------------------------------

/// Per-worker probe scratch: a stamp array deduplicates inverted-index
/// hits per row (mark = row + 1, unique per row, so workers never need to
/// clear it).
struct ProbeScratch {
    stamp: Vec<u32>,
    candidates: Vec<u32>,
    /// Per-right-id dot accumulators of the lane cosine path (empty when
    /// the scorer runs scalar kernels). A slot is zeroed when its
    /// candidate is first discovered, so no end-of-row sweep is needed.
    acc: Vec<f64>,
}

/// Inverted-index scoring of n-gram vector models.
struct VectorScorer {
    left_vecs: Vec<SparseVector>,
    right_vecs: Vec<SparseVector>,
    df_left: DfIndex,
    df_right: DfIndex,
    /// Inverted index over right-side terms.
    index: FxHashMap<u64, Vec<u32>>,
    /// Weight-carrying postings for the lane cosine path
    /// ([`KernelMode::Lanes`] + a cosine measure): one pass over these
    /// accumulates every candidate's dot product in the probe's term
    /// order — the **same ascending-term-id order** (and hence the same
    /// f64 addition sequence, bit for bit) that
    /// `SparseVector::dot`'s sorted merge join produces per pair. The
    /// other measures and the indexed path (whose prefix-filter early
    /// stop needs a fresh bound after every single score) stay scalar.
    windex: Option<FxHashMap<u64, Vec<(u32, f64)>>>,
    /// `right_vecs[j].norm()` under the lane path — recomputing a norm
    /// is deterministic, so the cached value equals the scalar path's
    /// per-pair recomputation bit for bit.
    right_norms: Vec<f64>,
    measure: VectorMeasure,
    keep_positive: bool,
}

impl VectorScorer {
    fn prepare(
        left: &EntityCollection,
        right: &EntityCollection,
        scheme: NGramScheme,
        measure: VectorMeasure,
        keep_positive: bool,
        kernel: KernelMode,
    ) -> Self {
        let model = VectorModel::new(scheme);
        let weighting = measure.weighting();

        // Per-collection DF indexes (ARCS) and the union index (TF-IDF).
        let mut df_left = DfIndex::new();
        let mut df_right = DfIndex::new();
        let mut df_union = DfIndex::new();
        let texts_left: Vec<String> = left.profiles.iter().map(|p| p.all_values_text()).collect();
        let texts_right: Vec<String> = right.profiles.iter().map(|p| p.all_values_text()).collect();
        for t in &texts_left {
            let terms: Vec<u64> = model.term_frequencies(t).keys().copied().collect();
            df_left.add_document(terms.iter().copied());
            df_union.add_document(terms);
        }
        for t in &texts_right {
            let terms: Vec<u64> = model.term_frequencies(t).keys().copied().collect();
            df_right.add_document(terms.iter().copied());
            df_union.add_document(terms);
        }

        let vec_of =
            |text: &String| -> SparseVector { model.vector(text, weighting, Some(&df_union)) };
        let left_vecs: Vec<SparseVector> = texts_left.iter().map(vec_of).collect();
        let right_vecs: Vec<SparseVector> = texts_right.iter().map(vec_of).collect();

        let mut index: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for (j, v) in right_vecs.iter().enumerate() {
            for &(t, _) in v.terms() {
                index.entry(t).or_default().push(j as u32);
            }
        }

        let lane_cosine = matches!(kernel, KernelMode::Lanes)
            && matches!(
                measure,
                VectorMeasure::CosineTf | VectorMeasure::CosineTfIdf
            );
        let windex = lane_cosine.then(|| {
            let mut w: FxHashMap<u64, Vec<(u32, f64)>> = FxHashMap::default();
            for (j, v) in right_vecs.iter().enumerate() {
                for &(t, wt) in v.terms() {
                    w.entry(t).or_default().push((j as u32, wt));
                }
            }
            w
        });
        let right_norms = if lane_cosine {
            right_vecs.iter().map(SparseVector::norm).collect()
        } else {
            Vec::new()
        };

        VectorScorer {
            left_vecs,
            right_vecs,
            df_left,
            df_right,
            index,
            windex,
            right_norms,
            measure,
            keep_positive,
        }
    }

    #[inline]
    fn dfs(&self) -> Option<(&DfIndex, &DfIndex)> {
        Some((&self.df_left, &self.df_right))
    }
}

impl RowScorer for VectorScorer {
    type Scratch = ProbeScratch;

    fn n_rows(&self) -> usize {
        self.left_vecs.len()
    }

    fn scratch(&self) -> ProbeScratch {
        ProbeScratch {
            stamp: vec![0u32; self.right_vecs.len()],
            candidates: Vec::new(),
            acc: vec![
                0.0;
                if self.windex.is_some() {
                    self.right_vecs.len()
                } else {
                    0
                }
            ],
        }
    }

    fn score_row<O: EdgeSink>(&self, row: usize, scratch: &mut ProbeScratch, out: &mut O) {
        let lv = &self.left_vecs[row];
        let mark = row as u32 + 1;
        scratch.candidates.clear();
        if let Some(windex) = &self.windex {
            // Lane cosine path: one pass over the weighted postings
            // accumulates every candidate's dot product. Candidate `j`'s
            // products arrive in ascending probe-term order — exactly
            // the order `SparseVector::dot`'s sorted merge adds them —
            // from an accumulator zeroed at discovery, so `acc[j]`
            // equals the scalar per-pair dot bit for bit; the cached
            // norms and the `denom == 0 → 0` / clamp steps replicate
            // `VectorMeasure::similarity`'s cosine arm exactly.
            for &(t, wa) in lv.terms() {
                if let Some(js) = windex.get(&t) {
                    for &(j, wb) in js {
                        let ju = j as usize;
                        if scratch.stamp[ju] != mark {
                            scratch.stamp[ju] = mark;
                            scratch.candidates.push(j);
                            scratch.acc[ju] = 0.0;
                        }
                        scratch.acc[ju] += wa * wb;
                    }
                }
            }
            let norm_a = lv.norm();
            for &j in &scratch.candidates {
                out.note_generated();
                let denom = norm_a * self.right_norms[j as usize];
                let w = if denom == 0.0 {
                    0.0
                } else {
                    (scratch.acc[j as usize] / denom).clamp(0.0, 1.0)
                };
                out.note_scored();
                if w > 0.0 || !self.keep_positive {
                    out.emit(row as u32, j, w);
                }
            }
            return;
        }
        for &(t, _) in lv.terms() {
            if let Some(js) = self.index.get(&t) {
                for &j in js {
                    if scratch.stamp[j as usize] != mark {
                        scratch.stamp[j as usize] = mark;
                        scratch.candidates.push(j);
                    }
                }
            }
        }
        for &j in &scratch.candidates {
            out.note_generated();
            let w = self
                .measure
                .similarity(lv, &self.right_vecs[j as usize], self.dfs());
            out.note_scored();
            if w > 0.0 || !self.keep_positive {
                out.emit(row as u32, j, w);
            }
        }
    }

    fn score_row_indexed<O: EdgeSink>(&self, row: usize, scratch: &mut ProbeScratch, out: &mut O) {
        let lv = &self.left_vecs[row];
        let plan = self.measure.probe_plan(lv, self.dfs());
        let mark = row as u32 + 1;
        let li = row as u32;
        generate_token_candidates(
            &plan,
            lv.terms(),
            &self.index,
            &mut scratch.stamp,
            mark,
            out.admission_bound(),
            |j| {
                out.note_generated();
                let w = self
                    .measure
                    .similarity(lv, &self.right_vecs[j as usize], self.dfs());
                out.note_scored();
                if w > 0.0 || !self.keep_positive {
                    out.emit(li, j, w);
                }
                out.admission_bound()
            },
        );
    }

    fn score_row_restricted<O: EdgeSink>(
        &self,
        row: usize,
        cands: &CandidateLists,
        _scratch: &mut ProbeScratch,
        out: &mut O,
    ) {
        let lv = &self.left_vecs[row];
        for &j in cands.row(row as u32) {
            out.note_generated();
            let w = self
                .measure
                .similarity(lv, &self.right_vecs[j as usize], self.dfs());
            out.note_scored();
            if w > 0.0 || !self.keep_positive {
                out.emit(row as u32, j, w);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Schema-agnostic n-gram graph models: inverted-index scoring by edge key.
// ---------------------------------------------------------------------------

/// Inverted-index scoring of n-gram graph models (indexed by graph edges).
struct GraphModelScorer {
    left_graphs: Vec<NGramGraph>,
    right_graphs: Vec<NGramGraph>,
    index: FxHashMap<(u64, u64), Vec<u32>>,
    measure: GraphSimilarity,
    keep_positive: bool,
}

impl GraphModelScorer {
    fn prepare(
        left: &EntityCollection,
        right: &EntityCollection,
        scheme: NGramScheme,
        measure: GraphSimilarity,
        keep_positive: bool,
    ) -> Self {
        let graphs_of = |c: &EntityCollection| -> Vec<NGramGraph> {
            c.profiles
                .iter()
                .map(|p| NGramGraph::from_values(p.values(), scheme))
                .collect()
        };
        let right_graphs = graphs_of(right);
        let mut index: FxHashMap<(u64, u64), Vec<u32>> = FxHashMap::default();
        for (j, g) in right_graphs.iter().enumerate() {
            for k in g.edge_keys() {
                index.entry(k).or_default().push(j as u32);
            }
        }
        GraphModelScorer {
            left_graphs: graphs_of(left),
            right_graphs,
            index,
            measure,
            keep_positive,
        }
    }
}

impl RowScorer for GraphModelScorer {
    type Scratch = ProbeScratch;

    fn n_rows(&self) -> usize {
        self.left_graphs.len()
    }

    fn scratch(&self) -> ProbeScratch {
        ProbeScratch {
            stamp: vec![0u32; self.right_graphs.len()],
            candidates: Vec::new(),
            acc: Vec::new(),
        }
    }

    fn score_row<O: EdgeSink>(&self, row: usize, scratch: &mut ProbeScratch, out: &mut O) {
        let lg = &self.left_graphs[row];
        let mark = row as u32 + 1;
        scratch.candidates.clear();
        for k in lg.edge_keys() {
            if let Some(js) = self.index.get(&k) {
                for &j in js {
                    if scratch.stamp[j as usize] != mark {
                        scratch.stamp[j as usize] = mark;
                        scratch.candidates.push(j);
                    }
                }
            }
        }
        for &j in &scratch.candidates {
            out.note_generated();
            let w = self.measure.similarity(lg, &self.right_graphs[j as usize]);
            out.note_scored();
            if w > 0.0 || !self.keep_positive {
                out.emit(row as u32, j, w);
            }
        }
    }

    fn score_row_restricted<O: EdgeSink>(
        &self,
        row: usize,
        cands: &CandidateLists,
        _scratch: &mut ProbeScratch,
        out: &mut O,
    ) {
        let lg = &self.left_graphs[row];
        for &j in cands.row(row as u32) {
            out.note_generated();
            let w = self.measure.similarity(lg, &self.right_graphs[j as usize]);
            out.note_scored();
            if w > 0.0 || !self.keep_positive {
                out.emit(row as u32, j, w);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Semantic: dense all-pairs scoring (cosine / Euclidean).
// ---------------------------------------------------------------------------

/// The text a semantic function compares for one profile.
pub(crate) fn scoped_text(p: &EntityProfile, scope: &SemanticScope) -> String {
    match scope {
        SemanticScope::SchemaBased { attribute } => {
            p.value(attribute).unwrap_or_default().to_string()
        }
        SemanticScope::SchemaAgnostic => p.all_values_text(),
    }
}

/// Tolerance of the unit-normalization check behind the cosine ball
/// index: a normalized clone whose norm strays further than this from 1
/// gets probe/entry radius `+∞`, which turns every one of its distance
/// lower bounds into 0 — the pair is simply never pruned. Well inside
/// the `COSINE_NORMALIZATION_MARGIN` the similarity bound adds, so the
/// margin absorbs the residual norm error with orders of headroom.
const UNIT_NORM_TOLERANCE: f64 = 1e-5;

/// Normalized copy of `v` plus its ball probe/entry radius: `0` when the
/// copy is verifiably unit-norm, `+∞` when normalization failed (zero or
/// degenerate norms) so the vector can never be pruned.
pub(crate) fn unit_probe(v: &DenseVector) -> (DenseVector, f64) {
    let mut u = v.clone();
    u.normalize();
    let radius = if (u.norm() - 1.0).abs() <= UNIT_NORM_TOLERANCE {
        0.0
    } else {
        f64::INFINITY
    };
    (u, radius)
}

/// All-pairs semantic scoring over pre-encoded text vectors.
struct DenseSemanticScorer {
    left: Vec<DenseVector>,
    right: Vec<DenseVector>,
    /// Centroid-ball index over the non-zero right vectors
    /// ([`CandidateMode::Indexed`] only). Euclidean indexes the raw
    /// vectors; cosine indexes unit-normalized copies (angles become
    /// chord distances), dropped after the build — only ball leaders
    /// are retained.
    ball: Option<VectorBallIndex>,
    measure: SemanticMeasure,
    keep_positive: bool,
    kernel: KernelMode,
}

impl DenseSemanticScorer {
    #[allow(clippy::too_many_arguments)]
    fn prepare(
        left: &EntityCollection,
        right: &EntityCollection,
        enc: &er_embed::measures::Encoder,
        measure: SemanticMeasure,
        scope: &SemanticScope,
        keep_positive: bool,
        indexed: bool,
        kernel: KernelMode,
    ) -> Self {
        let encode_all = |c: &EntityCollection| -> Vec<DenseVector> {
            c.profiles
                .iter()
                .map(|p| enc.encode(&scoped_text(p, scope)))
                .collect()
        };
        let left = encode_all(left);
        let right = encode_all(right);
        let ball = indexed.then(|| {
            if matches!(measure, SemanticMeasure::Cosine) {
                let normalized: Vec<(u32, DenseVector, f64)> = right
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| !v.is_zero())
                    .map(|(j, v)| {
                        let (u, r) = unit_probe(v);
                        (j as u32, u, r)
                    })
                    .collect();
                let entries: Vec<(u32, &DenseVector, f64)> =
                    normalized.iter().map(|(j, u, r)| (*j, u, *r)).collect();
                VectorBallIndex::build(&entries)
            } else {
                let entries: Vec<(u32, &DenseVector, f64)> = right
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| !v.is_zero())
                    .map(|(j, v)| (j as u32, v, 0.0))
                    .collect();
                VectorBallIndex::build(&entries)
            }
        });
        DenseSemanticScorer {
            left,
            right,
            ball,
            measure,
            keep_positive,
            kernel,
        }
    }

    /// Score one lane chunk of right indices through the batched dense
    /// kernels ([`er_embed::lanes`]) and emit — bit-identical to looping
    /// [`SemanticMeasure::similarity_vectors`] over the same indices in
    /// the same order, because each lane runs the exact scalar float
    /// sequence. All `js` must reference non-zero right vectors.
    fn emit_dense_lanes<O: EdgeSink>(&self, li: u32, js: &[u32], out: &mut O) {
        let a = &self.left[li as usize];
        debug_assert!(!js.is_empty() && js.len() <= embed_lanes::LANE_WIDTH);
        let mut refs: [&DenseVector; embed_lanes::LANE_WIDTH] = [a; embed_lanes::LANE_WIDTH];
        for (i, &j) in js.iter().enumerate() {
            refs[i] = &self.right[j as usize];
        }
        let mut sims = [0.0f64; embed_lanes::LANE_WIDTH];
        embed_lanes::similarity_vectors_batch(self.measure, a, &refs[..js.len()], &mut sims);
        for (i, &j) in js.iter().enumerate() {
            out.note_generated();
            let w = sims[i];
            out.note_scored();
            if w > 0.0 || !self.keep_positive {
                out.emit(li, j, w);
            }
        }
    }
}

impl RowScorer for DenseSemanticScorer {
    /// Ball-distance scratch of the indexed path (unused otherwise).
    type Scratch = Vec<(f64, u32)>;

    fn n_rows(&self) -> usize {
        self.left.len()
    }

    fn scratch(&self) -> Self::Scratch {
        Vec::new()
    }

    fn score_row<O: EdgeSink>(&self, row: usize, _scratch: &mut Self::Scratch, out: &mut O) {
        let a = &self.left[row];
        if a.is_zero() {
            return;
        }
        if matches!(self.kernel, KernelMode::Lanes) {
            let mut js = [0u32; embed_lanes::LANE_WIDTH];
            let mut cn = 0;
            for (j, b) in self.right.iter().enumerate() {
                if b.is_zero() {
                    continue;
                }
                js[cn] = j as u32;
                cn += 1;
                if cn == embed_lanes::LANE_WIDTH {
                    self.emit_dense_lanes(row as u32, &js[..cn], out);
                    cn = 0;
                }
            }
            if cn > 0 {
                self.emit_dense_lanes(row as u32, &js[..cn], out);
            }
            return;
        }
        for (j, b) in self.right.iter().enumerate() {
            if b.is_zero() {
                continue;
            }
            out.note_generated();
            let w = self.measure.similarity_vectors(a, b);
            out.note_scored();
            if w > 0.0 || !self.keep_positive {
                out.emit(row as u32, j as u32, w);
            }
        }
    }

    fn score_row_indexed<O: EdgeSink>(&self, row: usize, scratch: &mut Self::Scratch, out: &mut O) {
        let ball = self
            .ball
            .as_ref()
            .expect("indexed mode prepared without a ball index");
        let a = &self.left[row];
        if a.is_zero() {
            return;
        }
        let li = row as u32;
        let cosine = matches!(self.measure, SemanticMeasure::Cosine);
        let probe_owned;
        let (probe, probe_radius) = if cosine {
            let (u, r) = unit_probe(a);
            probe_owned = u;
            (&probe_owned, r)
        } else {
            (a, 0.0)
        };
        let map: fn(f64) -> f64 = if cosine {
            cosine_distance_bound
        } else {
            inverse_distance_bound
        };
        if matches!(self.kernel, KernelMode::Lanes) {
            // Generated candidates are buffered into lanes; between
            // flushes the generator keeps the bound of the last flush,
            // enumerating a superset whose extras all score strictly
            // below the final admission bound (the generator's prune is
            // strict `<` against a non-decreasing bound) — the retained
            // graph is bit-identical to the scalar path.
            let mut js = [0u32; embed_lanes::LANE_WIDTH];
            let mut cn = 0usize;
            generate_ball_candidates(
                ball,
                probe,
                probe_radius,
                scratch,
                map,
                out.admission_bound(),
                |j| {
                    js[cn] = j;
                    cn += 1;
                    if cn == embed_lanes::LANE_WIDTH {
                        self.emit_dense_lanes(li, &js[..cn], out);
                        cn = 0;
                    }
                    out.admission_bound()
                },
            );
            if cn > 0 {
                self.emit_dense_lanes(li, &js[..cn], out);
            }
            return;
        }
        generate_ball_candidates(
            ball,
            probe,
            probe_radius,
            scratch,
            map,
            out.admission_bound(),
            |j| {
                out.note_generated();
                let w = self.measure.similarity_vectors(a, &self.right[j as usize]);
                out.note_scored();
                if w > 0.0 || !self.keep_positive {
                    out.emit(li, j, w);
                }
                out.admission_bound()
            },
        );
    }

    fn score_row_restricted<O: EdgeSink>(
        &self,
        row: usize,
        cands: &CandidateLists,
        _scratch: &mut Self::Scratch,
        out: &mut O,
    ) {
        let a = &self.left[row];
        if a.is_zero() {
            return;
        }
        if matches!(self.kernel, KernelMode::Lanes) {
            let mut js = [0u32; embed_lanes::LANE_WIDTH];
            let mut cn = 0;
            for &j in cands.row(row as u32) {
                if self.right[j as usize].is_zero() {
                    continue;
                }
                js[cn] = j;
                cn += 1;
                if cn == embed_lanes::LANE_WIDTH {
                    self.emit_dense_lanes(row as u32, &js[..cn], out);
                    cn = 0;
                }
            }
            if cn > 0 {
                self.emit_dense_lanes(row as u32, &js[..cn], out);
            }
            return;
        }
        for &j in cands.row(row as u32) {
            let b = &self.right[j as usize];
            if b.is_zero() {
                continue;
            }
            out.note_generated();
            let w = self.measure.similarity_vectors(a, b);
            out.note_scored();
            if w > 0.0 || !self.keep_positive {
                out.emit(row as u32, j, w);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Semantic: Word Mover's over interned token bags with distance caching.
// ---------------------------------------------------------------------------

/// Symmetric token-distance cache. Euclidean distance is symmetric, so
/// keys are canonicalized to `(min, max)`: each unordered vector pair is
/// computed and stored **once** (a plain `(a, b)` key held every pair
/// twice). One cache per worker — values are pure functions of the shared
/// interned table, so per-worker caches cannot diverge.
struct DistCache {
    map: FxHashMap<(u32, u32), f64>,
}

impl DistCache {
    fn new() -> Self {
        DistCache {
            map: FxHashMap::default(),
        }
    }

    #[inline]
    fn dist(&mut self, vectors: &[DenseVector], a: u32, b: u32) -> f64 {
        let key = (a.min(b), a.max(b));
        *self
            .map
            .entry(key)
            .or_insert_with(|| vectors[key.0 as usize].euclidean_distance(&vectors[key.1 as usize]))
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Word Mover's scoring with a token-distance cache: contextual token
/// vectors repeat heavily across profiles, so each distinct unordered
/// (token, token) distance is computed once per worker. Bags are truncated
/// to `cfg.wmd_token_cap` tokens (documented substitution — relaxed WMD is
/// quadratic in bag size).
struct WmdScorer {
    /// Interned token-vector table: identical vectors share one id.
    /// Contextual encoders produce per-(token, context) vectors, interned
    /// by the (prev, token, next) signature embedded in the vector bits.
    /// Built serially in prepare, then shared across workers behind a
    /// lock-free read path (plain immutable slice reads).
    vectors: Vec<DenseVector>,
    left_bags: Vec<Vec<u32>>,
    right_bags: Vec<Vec<u32>>,
    /// Per-bag centroid + radius summaries (`None` for empty bags):
    /// `RWMD(a, b) ≥ ‖c_a − c_b‖ − r_a − r_b`, so one vector distance
    /// upper-bounds the similarity of a pair before any transport work.
    /// Left **empty** on the dense path, whose sink never exposes an
    /// admission bound — the summaries would be pure prepare overhead.
    left_summaries: Vec<Option<BagSummary>>,
    right_summaries: Vec<Option<BagSummary>>,
    /// Centroid-ball index over the non-empty right bags' summary
    /// centroids, entry radius = summary radius, so a ball's distance
    /// lower bound is simultaneously a relaxed-WMD lower bound
    /// ([`CandidateMode::Indexed`] only).
    ball: Option<VectorBallIndex>,
    keep_positive: bool,
    kernel: KernelMode,
}

impl WmdScorer {
    fn prepare(
        left: &EntityCollection,
        right: &EntityCollection,
        enc: &er_embed::measures::Encoder,
        scope: &SemanticScope,
        cfg: &PipelineConfig,
        with_bounds: bool,
        indexed: bool,
    ) -> Self {
        let mut vectors: Vec<DenseVector> = Vec::new();
        let mut intern: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
        let mut bag_of = |p: &EntityProfile| -> Vec<u32> {
            let mut toks = enc.token_vectors(&scoped_text(p, scope));
            toks.truncate(cfg.wmd_token_cap);
            toks.into_iter()
                .map(|v| {
                    let bits: Vec<u32> = v.0.iter().map(|f| f.to_bits()).collect();
                    *intern.entry(bits).or_insert_with(|| {
                        vectors.push(v);
                        vectors.len() as u32 - 1
                    })
                })
                .collect()
        };
        let left_bags: Vec<Vec<u32>> = left.profiles.iter().map(&mut bag_of).collect();
        let right_bags: Vec<Vec<u32>> = right.profiles.iter().map(&mut bag_of).collect();
        let summarize = |bags: &[Vec<u32>]| -> Vec<Option<BagSummary>> {
            if !with_bounds {
                return Vec::new();
            }
            bags.iter()
                .map(|bag| {
                    BagSummary::from_vectors(bag.len(), bag.iter().map(|&id| &vectors[id as usize]))
                })
                .collect()
        };
        let left_summaries = summarize(&left_bags);
        let right_summaries = summarize(&right_bags);
        let ball = (indexed && with_bounds).then(|| {
            let entries: Vec<(u32, &DenseVector, f64)> = right_summaries
                .iter()
                .enumerate()
                .filter_map(|(j, s)| s.as_ref().map(|s| (j as u32, s.centroid(), s.radius())))
                .collect();
            VectorBallIndex::build(&entries)
        });
        WmdScorer {
            vectors,
            left_bags,
            right_bags,
            left_summaries,
            right_summaries,
            ball,
            keep_positive: cfg.keep_positive_only,
            kernel: cfg.kernel_mode,
        }
    }

    /// Lanes-mode cache prefill: gather the token pairs `(x, y)` for
    /// `y ∈ ys` whose canonical distance is not cached yet and compute
    /// them through the lane-parallel Euclidean kernel.
    ///
    /// Bit-identity with the scalar on-demand fill: the batch always
    /// computes `‖v_x − v_y‖` while the canonical scalar fill computes
    /// `‖v_min − v_max‖`, but per dimension `a − b = −(b − a)` exactly
    /// and squaring erases the sign, so operand order never changes the
    /// bits (pinned in `kernel_props.rs`). Only *when* distances enter
    /// the cache changes — and since the scalar inner loop touches every
    /// `(x, y)` pair of the fold this prefill covers, the cache contents
    /// after each fold step are identical too.
    fn fill_distances(&self, cache: &mut DistCache, x: u32, ys: &[u32], missing: &mut Vec<u32>) {
        missing.clear();
        for &y in ys {
            let key = (x.min(y), x.max(y));
            if !cache.map.contains_key(&key) && !missing.contains(&y) {
                missing.push(y);
            }
        }
        if missing.is_empty() {
            return;
        }
        let xv = &self.vectors[x as usize];
        let mut dists = [0.0f64; embed_lanes::LANE_WIDTH];
        for chunk in missing.chunks(embed_lanes::LANE_WIDTH) {
            let mut refs: [&DenseVector; embed_lanes::LANE_WIDTH] = [xv; embed_lanes::LANE_WIDTH];
            for (i, &y) in chunk.iter().enumerate() {
                refs[i] = &self.vectors[y as usize];
            }
            embed_lanes::euclidean_distance_batch(xv, &refs[..chunk.len()], &mut dists);
            for (i, &y) in chunk.iter().enumerate() {
                cache.map.insert((x.min(y), x.max(y)), dists[i]);
            }
        }
    }

    /// Relaxed WMD similarity of two non-empty bags:
    /// `1 / (1 + max of the two directed nearest-neighbor means)` —
    /// with an **exact** admission-bound short-circuit.
    ///
    /// `None` means the final similarity is provably `< bound`: the
    /// directed sums accumulate non-negative terms, and every float
    /// step from a partial sum to the final similarity (add, divide by
    /// a positive constant, `max`, `1/(1+d)`) is monotone — so once
    /// `1/(1 + partial/|a|)` falls below the bound, the fully computed
    /// similarity must too, bit for bit. Passing
    /// `bound = f64::NEG_INFINITY` disables the short-circuit and
    /// reproduces the plain computation exactly.
    fn similarity_bounded(
        &self,
        cache: &mut DistCache,
        a: &[u32],
        b: &[u32],
        bound: f64,
        missing: &mut Vec<u32>,
    ) -> Option<f64> {
        let lanes = matches!(self.kernel, KernelMode::Lanes);
        let mut d_ab = 0.0;
        for &x in a {
            if lanes {
                self.fill_distances(cache, x, b, missing);
            }
            let mut best = f64::INFINITY;
            for &y in b {
                best = best.min(cache.dist(&self.vectors, x, y));
            }
            d_ab += best;
            if 1.0 / (1.0 + d_ab / a.len() as f64) < bound {
                return None;
            }
        }
        d_ab /= a.len() as f64;
        let mut d_ba = 0.0;
        for &y in b {
            if lanes {
                self.fill_distances(cache, y, a, missing);
            }
            let mut best = f64::INFINITY;
            for &x in a {
                best = best.min(cache.dist(&self.vectors, x, y));
            }
            d_ba += best;
            if 1.0 / (1.0 + d_ab.max(d_ba / b.len() as f64)) < bound {
                return None;
            }
        }
        d_ba /= b.len() as f64;
        Some(1.0 / (1.0 + d_ab.max(d_ba)))
    }

    /// Score the candidate pair `(left row, right j)` — both known
    /// non-empty: centroid upper bound first, then the short-circuiting
    /// transport computation.
    fn score_pair<O: EdgeSink>(
        &self,
        row: usize,
        j: usize,
        cache: &mut DistCache,
        missing: &mut Vec<u32>,
        out: &mut O,
    ) {
        out.note_generated();
        let (a, b) = (&self.left_bags[row], &self.right_bags[j]);
        let bound = out.admission_bound();
        if bound != f64::NEG_INFINITY {
            if let (Some(Some(sa)), Some(Some(sb))) =
                (self.left_summaries.get(row), self.right_summaries.get(j))
            {
                if sa.wms_upper_bound(sb) < bound {
                    out.note_pruned();
                    return;
                }
            }
        }
        match self.similarity_bounded(cache, a, b, bound, missing) {
            None => out.note_pruned(),
            Some(w) => {
                out.note_scored();
                if w > 0.0 || !self.keep_positive {
                    out.emit(row as u32, j as u32, w);
                }
            }
        }
    }
}

/// Per-worker scratch of the WMD scorer: the symmetric token-distance
/// cache, the indexed path's ball-distance buffer, and the lane
/// prefill's uncached-partner buffer.
struct WmdScratch {
    cache: DistCache,
    bounds: Vec<(f64, u32)>,
    missing: Vec<u32>,
}

impl RowScorer for WmdScorer {
    type Scratch = WmdScratch;

    fn n_rows(&self) -> usize {
        self.left_bags.len()
    }

    fn scratch(&self) -> WmdScratch {
        WmdScratch {
            cache: DistCache::new(),
            bounds: Vec::new(),
            missing: Vec::new(),
        }
    }

    fn score_row<O: EdgeSink>(&self, row: usize, scratch: &mut WmdScratch, out: &mut O) {
        if self.left_bags[row].is_empty() {
            return;
        }
        for (j, b) in self.right_bags.iter().enumerate() {
            if b.is_empty() {
                continue;
            }
            self.score_pair(row, j, &mut scratch.cache, &mut scratch.missing, out);
        }
    }

    fn score_row_indexed<O: EdgeSink>(&self, row: usize, scratch: &mut WmdScratch, out: &mut O) {
        let ball = self
            .ball
            .as_ref()
            .expect("indexed mode prepared without a ball index");
        if self.left_bags[row].is_empty() {
            return;
        }
        let sa = self.left_summaries[row]
            .as_ref()
            .expect("non-empty bag has a summary");
        let WmdScratch {
            cache,
            bounds,
            missing,
        } = scratch;
        generate_ball_candidates(
            ball,
            sa.centroid(),
            sa.radius(),
            bounds,
            inverse_distance_bound,
            out.admission_bound(),
            |j| {
                self.score_pair(row, j as usize, cache, missing, out);
                out.admission_bound()
            },
        );
    }

    fn score_row_restricted<O: EdgeSink>(
        &self,
        row: usize,
        cands: &CandidateLists,
        scratch: &mut WmdScratch,
        out: &mut O,
    ) {
        if self.left_bags[row].is_empty() {
            return;
        }
        for &j in cands.row(row as u32) {
            if self.right_bags[j as usize].is_empty() {
                continue;
            }
            self.score_pair(
                row,
                j as usize,
                &mut scratch.cache,
                &mut scratch.missing,
                out,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datasets::DatasetId;
    use er_embed::EmbeddingModel;
    use er_textsim::CharMeasure;

    fn tiny() -> Dataset {
        er_datasets::Dataset::generate(DatasetId::D1, 0.03, 42)
    }

    fn weights_in_bounds(g: &SimilarityGraph) {
        for e in g.edges() {
            assert!((0.0..=1.0).contains(&e.weight));
        }
    }

    /// Edge triples with weight bits, for exact graph comparison.
    fn edge_bits(g: &SimilarityGraph) -> Vec<(u32, u32, u64)> {
        g.edges()
            .iter()
            .map(|e| (e.left, e.right, e.weight.to_bits()))
            .collect()
    }

    #[test]
    fn schema_based_graph_is_normalized() {
        let d = tiny();
        let f = SimilarityFunction::SchemaBasedSyntactic {
            attribute: "name".into(),
            measure: SchemaBasedMeasure::Char(CharMeasure::Levenshtein),
        };
        let g = build_graph(&d, &f, &PipelineConfig::default());
        assert!(!g.is_empty());
        weights_in_bounds(&g);
        let (lo, hi) = g.weight_range().unwrap();
        assert!(lo >= 0.0 && hi <= 1.0);
        assert!((hi - 1.0).abs() < 1e-12, "min-max maps max weight to 1");
    }

    #[test]
    fn min_weight_edge_survives_lowest_grid_threshold() {
        // Regression: plain min-max mapped the weakest retained edge to
        // exactly 0.0, demoting a positive-similarity pair to a non-edge
        // for every positive grid threshold. The 0.0 floor keeps
        // non-negative measures on (0, 1]: weight = raw / max(raw).
        let collection = |texts: &[&str]| EntityCollection {
            profiles: texts
                .iter()
                .enumerate()
                .map(|(i, t)| EntityProfile::new(i as u32, vec![("name".into(), (*t).into())]))
                .collect(),
            attribute_names: vec!["name".into()],
        };
        let left = collection(&["alpha", "alphas", "alpha x"]);
        let right = collection(&["alpha", "alph"]);
        let f = SimilarityFunction::SchemaBasedSyntactic {
            attribute: "name".into(),
            measure: SchemaBasedMeasure::Char(CharMeasure::Levenshtein),
        };
        let g = build_graph_over(&left, &right, &f, &PipelineConfig::default());
        assert!(!g.is_empty());
        let (lo, _) = g.weight_range().unwrap();
        assert!(lo > 0.0, "weakest edge keeps positive weight, got {lo}");
        let lowest_grid_t = er_core::ThresholdGrid::paper().values().next().unwrap();
        assert_eq!(
            g.edges()
                .iter()
                .filter(|e| e.weight > lowest_grid_t)
                .count(),
            g.n_edges(),
            "every retained edge survives the lowest grid threshold here"
        );
        // The floor makes normalization proportional: weight = raw / hi.
        let raws: Vec<(u32, u32, f64)> = {
            let mut out = Vec::new();
            for (i, lp) in left.profiles.iter().enumerate() {
                for (j, rp) in right.profiles.iter().enumerate() {
                    let w = SchemaBasedMeasure::Char(CharMeasure::Levenshtein)
                        .similarity(lp.value("name").unwrap(), rp.value("name").unwrap());
                    if w > 0.0 {
                        out.emit(i as u32, j as u32, w);
                    }
                }
            }
            out
        };
        let hi = raws.iter().map(|&(_, _, w)| w).fold(0.0, f64::max);
        for (l, r, raw) in raws {
            let got = g.weight_of(l, r).unwrap();
            assert!((got - raw / hi).abs() < 1e-12, "({l},{r}): {got} vs raw/hi");
        }
    }

    #[test]
    fn keep_positive_only_false_retains_non_positive_scores() {
        // "abc" vs "xyz": Levenshtein similarity is exactly 0 — dropped
        // under the paper's protocol, retained (at normalized weight 0)
        // when the positivity filter is switched off.
        let collection = |texts: &[&str]| EntityCollection {
            profiles: texts
                .iter()
                .enumerate()
                .map(|(i, t)| EntityProfile::new(i as u32, vec![("name".into(), (*t).into())]))
                .collect(),
            attribute_names: vec!["name".into()],
        };
        let left = collection(&["abc"]);
        let right = collection(&["abc", "xyz"]);
        let f = SimilarityFunction::SchemaBasedSyntactic {
            attribute: "name".into(),
            measure: SchemaBasedMeasure::Char(CharMeasure::Levenshtein),
        };
        let strict = build_graph_over(&left, &right, &f, &PipelineConfig::default());
        assert_eq!(strict.n_edges(), 1, "zero-similarity pair dropped");
        let lax_cfg = PipelineConfig {
            keep_positive_only: false,
            ..PipelineConfig::default()
        };
        let lax = build_graph_over(&left, &right, &f, &lax_cfg);
        assert_eq!(lax.n_edges(), 2, "zero-similarity pair retained");
        assert_eq!(lax.weight_of(0, 0), Some(1.0));
        assert_eq!(lax.weight_of(0, 1), Some(0.0));
        // The lax path stays bit-identical across thread counts too.
        let lax_par = build_graph_over(
            &left,
            &right,
            &f,
            &PipelineConfig {
                threads: 3,
                chunk_rows: 1,
                ..lax_cfg
            },
        );
        assert_eq!(edge_bits(&lax), edge_bits(&lax_par));
    }

    #[test]
    fn vector_graph_scores_ground_truth_higher() {
        let d = tiny();
        let f = SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::CosineTfIdf,
        };
        let g = build_graph(&d, &f, &PipelineConfig::default());
        assert!(!g.is_empty());
        weights_in_bounds(&g);
        let sep = er_core::WeightSeparation::of(&g, &d.ground_truth);
        assert!(
            sep.mean_match_weight > sep.mean_nonmatch_weight,
            "matches {:.3} must outweigh non-matches {:.3}",
            sep.mean_match_weight,
            sep.mean_nonmatch_weight
        );
    }

    #[test]
    fn graph_model_graph_builds() {
        let d = tiny();
        let f = SimilarityFunction::SchemaAgnosticGraph {
            scheme: NGramScheme::Char(3),
            measure: GraphSimilarity::Value,
        };
        let g = build_graph(&d, &f, &PipelineConfig::default());
        assert!(!g.is_empty());
        weights_in_bounds(&g);
    }

    #[test]
    fn semantic_graphs_are_dense_and_high_scoring() {
        let d = tiny();
        let f = SimilarityFunction::Semantic {
            model: EmbeddingModel::FastText,
            measure: SemanticMeasure::Cosine,
            scope: SemanticScope::SchemaAgnostic,
        };
        let g = build_graph(&d, &f, &PipelineConfig::default());
        weights_in_bounds(&g);
        // The anisotropy cone makes nearly every pair positive (the paper's
        // "semantic similarities assign relatively high scores to most
        // pairs").
        let density = g.n_edges() as f64 / (g.n_left() as f64 * g.n_right() as f64);
        assert!(density > 0.9, "semantic graph density {density:.3}");
    }

    #[test]
    fn wmd_scope_and_cap() {
        let d = tiny();
        let f = SimilarityFunction::Semantic {
            model: EmbeddingModel::FastText,
            measure: SemanticMeasure::WordMovers,
            scope: SemanticScope::SchemaBased {
                attribute: "name".into(),
            },
        };
        let cfg = PipelineConfig {
            wmd_token_cap: 4,
            ..PipelineConfig::default()
        };
        let g = build_graph(&d, &f, &cfg);
        assert!(!g.is_empty());
        weights_in_bounds(&g);
    }

    #[test]
    fn cached_wmd_matches_direct_computation() {
        // Full equivalence: recompute the raw score matrix directly via the
        // measure (no interning, no distance cache), apply the same
        // positive-filter + floored min-max normalization, and require the
        // graph weights to agree within 1e-12.
        let d = tiny();
        let f = SimilarityFunction::Semantic {
            model: EmbeddingModel::FastText,
            measure: SemanticMeasure::WordMovers,
            scope: SemanticScope::SchemaBased {
                attribute: "name".into(),
            },
        };
        let cfg = PipelineConfig::default();
        let g = build_graph(&d, &f, &cfg);

        let enc = EmbeddingModel::FastText.encoder();
        let bag = |p: &EntityProfile| -> Vec<DenseVector> {
            let mut toks = enc.token_vectors(p.value("name").unwrap_or_default());
            toks.truncate(cfg.wmd_token_cap);
            toks
        };
        let left: Vec<Vec<DenseVector>> = d.left.profiles.iter().map(&bag).collect();
        let right: Vec<Vec<DenseVector>> = d.right.profiles.iter().map(&bag).collect();
        let mut raws: Vec<(u32, u32, f64)> = Vec::new();
        for (i, a) in left.iter().enumerate() {
            if a.is_empty() {
                continue;
            }
            for (j, b) in right.iter().enumerate() {
                if b.is_empty() {
                    continue;
                }
                let raw = SemanticMeasure::WordMovers.similarity_tokens(a, b);
                if raw > 0.0 {
                    raws.push((i as u32, j as u32, raw));
                }
            }
        }
        assert_eq!(g.n_edges(), raws.len(), "same positive pair set");
        let hi = raws
            .iter()
            .map(|&(_, _, w)| w)
            .fold(f64::NEG_INFINITY, f64::max);
        let span = hi - 0.0;
        for (l, r, raw) in raws {
            let expect = if span <= f64::EPSILON {
                1.0
            } else {
                (raw / span).clamp(0.0, 1.0)
            };
            let got = g
                .weight_of(l, r)
                .unwrap_or_else(|| panic!("edge ({l},{r}) missing"));
            assert!(
                (got - expect).abs() < 1e-12,
                "({l},{r}): cached {got} vs direct {expect}"
            );
        }
    }

    #[test]
    fn wmd_cache_canonicalizes_symmetric_pairs() {
        // Symmetric workload: identical token bags on both sides, so every
        // ordered (a, b) distance is also queried as (b, a). With 3
        // distinct interned tokens the scoring queries all 9 ordered pairs;
        // the canonical (min, max) key stores only the 6 unordered ones —
        // the old (a, b) key held all 9.
        let collection = |texts: &[&str]| EntityCollection {
            profiles: texts
                .iter()
                .enumerate()
                .map(|(i, t)| EntityProfile::new(i as u32, vec![("name".into(), (*t).into())]))
                .collect(),
            attribute_names: vec!["name".into()],
        };
        let left = collection(&["alpha beta gamma"]);
        let right = collection(&["alpha beta gamma"]);
        let cfg = PipelineConfig::default();
        let scorer = WmdScorer::prepare(
            &left,
            &right,
            &EmbeddingModel::FastText.encoder(),
            &SemanticScope::SchemaBased {
                attribute: "name".into(),
            },
            &cfg,
            false,
            false,
        );
        assert_eq!(scorer.vectors.len(), 3, "3 distinct interned tokens");
        let mut scratch = scorer.scratch();
        let mut out = Vec::new();
        scorer.score_row(0, &mut scratch, &mut out);
        assert_eq!(out.len(), 1);
        assert!((out[0].2 - 1.0).abs() < 1e-12, "identical bags score 1");
        assert_eq!(
            scratch.cache.len(),
            6,
            "canonical keys store 3·4/2 = 6 unordered pairs, not 9 ordered"
        );
    }

    #[test]
    fn inverted_index_matches_bruteforce_for_vectors() {
        // The index must produce exactly the positive pairs.
        let d = tiny();
        let scheme = NGramScheme::Char(3);
        let measure = VectorMeasure::CosineTf;
        let f = SimilarityFunction::SchemaAgnosticVector { scheme, measure };
        let g = build_graph(&d, &f, &PipelineConfig::default());

        // Brute force.
        let model = VectorModel::new(scheme);
        let lv: Vec<SparseVector> = d
            .left
            .profiles
            .iter()
            .map(|p| model.vector(&p.all_values_text(), er_textsim::TermWeighting::Tf, None))
            .collect();
        let rv: Vec<SparseVector> = d
            .right
            .profiles
            .iter()
            .map(|p| model.vector(&p.all_values_text(), er_textsim::TermWeighting::Tf, None))
            .collect();
        let mut brute = 0usize;
        for a in &lv {
            for b in &rv {
                if measure.similarity(a, b, None) > 0.0 {
                    brute += 1;
                }
            }
        }
        assert_eq!(g.n_edges(), brute);
    }

    #[test]
    fn parallel_construction_is_bit_identical_to_serial() {
        // Quick smoke over one branch; the exhaustive four-branch property
        // suite lives in tests/graphgen_props.rs.
        let d = tiny();
        let f = SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::CosineTfIdf,
        };
        let serial = PipelineConfig {
            threads: 1,
            ..PipelineConfig::default()
        };
        let parallel = PipelineConfig {
            threads: 4,
            chunk_rows: 3,
            ..PipelineConfig::default()
        };
        let gs = build_graph(&d, &f, &serial);
        let gp = build_graph(&d, &f, &parallel);
        assert_eq!(edge_bits(&gs), edge_bits(&gp));
    }

    #[test]
    fn restricted_build_matches_full_restriction() {
        let d = tiny();
        let f = SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::CosineTfIdf,
        };
        let cfg = PipelineConfig::default();
        let candidates = crate::blocking::token_blocking(&d.left, &d.right).candidate_pairs();
        let full = build_graph(&d, &f, &cfg);
        let via_restrict = crate::blocking::restrict_graph(&full, &candidates);
        let direct = build_graph_restricted(&d.left, &d.right, &f, &candidates, &cfg);
        let pairs = |g: &SimilarityGraph| -> FxHashSet<(u32, u32)> {
            g.edges().iter().map(|e| (e.left, e.right)).collect()
        };
        assert_eq!(
            pairs(&direct),
            pairs(&via_restrict),
            "restricted build scores exactly the candidate edges"
        );
        assert!(!direct.is_empty());
        weights_in_bounds(&direct);
    }

    #[test]
    fn topk_matches_dense_then_prune_bitwise() {
        let d = tiny();
        let cfg = PipelineConfig::default();
        let functions = [
            SimilarityFunction::SchemaAgnosticVector {
                scheme: NGramScheme::Token(1),
                measure: VectorMeasure::CosineTfIdf,
            },
            SimilarityFunction::SchemaBasedSyntactic {
                attribute: "name".into(),
                measure: SchemaBasedMeasure::Char(CharMeasure::Levenshtein),
            },
        ];
        for f in &functions {
            let dense = build_graph(&d, f, &cfg);
            for k in [1usize, 3] {
                let streamed = build_graph_topk(&d, f, k, &cfg);
                assert_eq!(
                    edge_bits(&streamed),
                    edge_bits(&dense.pruned_top_k(k)),
                    "k={k}"
                );
            }
        }
    }

    #[test]
    fn topk_peak_is_bounded_while_dense_volume_is_not() {
        // Semantic cosine makes nearly every pair an edge (density > 0.9),
        // so the dense candidate volume is ~n_left × n_right while the
        // streaming path's accounting must stay within n_left × k.
        let d = tiny();
        let f = SimilarityFunction::Semantic {
            model: EmbeddingModel::FastText,
            measure: SemanticMeasure::Cosine,
            scope: SemanticScope::SchemaAgnostic,
        };
        let k = 2usize;
        let (g, stats) =
            build_graph_topk_stats(&d.left, &d.right, &f, k, &PipelineConfig::default());
        let bound = d.left.len() * k;
        assert!(
            stats.peak_resident_edges <= bound,
            "peak {} exceeds n_left × k = {bound}",
            stats.peak_resident_edges
        );
        assert_eq!(stats.retained_edges, g.n_edges());
        assert!(g.n_edges() <= bound);
        assert!(
            stats.offered_edges > 4 * bound,
            "dense volume {} should dwarf the bound {bound} — otherwise \
             this test proves nothing",
            stats.offered_edges
        );
        // The same accounting holds when workers shard the rows.
        let (_, par_stats) = build_graph_topk_stats(
            &d.left,
            &d.right,
            &f,
            k,
            &PipelineConfig {
                threads: 4,
                chunk_rows: 2,
                ..PipelineConfig::default()
            },
        );
        assert!(par_stats.peak_resident_edges <= bound);
        assert_eq!(par_stats.offered_edges, stats.offered_edges);
    }

    #[test]
    fn topk_restricted_matches_restricted_then_prune() {
        let d = tiny();
        let f = SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::CosineTfIdf,
        };
        let cfg = PipelineConfig::default();
        let candidates = crate::blocking::token_blocking(&d.left, &d.right).candidate_pairs();
        let restricted = build_graph_restricted(&d.left, &d.right, &f, &candidates, &cfg);
        for k in [1usize, 3] {
            let streamed = build_graph_topk_restricted(&d.left, &d.right, &f, &candidates, k, &cfg);
            assert_eq!(
                edge_bits(&streamed),
                edge_bits(&restricted.pruned_top_k(k)),
                "k={k}"
            );
        }
    }

    #[test]
    fn topk_parallel_is_bit_identical_to_serial() {
        let d = tiny();
        let f = SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::CosineTfIdf,
        };
        let serial = build_graph_topk(
            &d,
            &f,
            2,
            &PipelineConfig {
                threads: 1,
                ..PipelineConfig::default()
            },
        );
        let parallel = build_graph_topk(
            &d,
            &f,
            2,
            &PipelineConfig {
                threads: 4,
                chunk_rows: 3,
                ..PipelineConfig::default()
            },
        );
        assert_eq!(edge_bits(&serial), edge_bits(&parallel));
    }

    #[test]
    fn topk_unbounded_reproduces_dense_edge_set() {
        let d = tiny();
        let f = SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::CosineTfIdf,
        };
        let cfg = PipelineConfig::default();
        let dense = build_graph(&d, &f, &cfg);
        let unbounded = build_graph_topk(&d, &f, usize::MAX, &cfg);
        let canon = |g: &SimilarityGraph| {
            let mut v = edge_bits(g);
            v.sort_unstable();
            v
        };
        assert_eq!(canon(&dense), canon(&unbounded));
    }

    #[test]
    fn topk_zero_keeps_nothing() {
        let d = tiny();
        let f = SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::CosineTfIdf,
        };
        let (g, stats) =
            build_graph_topk_stats(&d.left, &d.right, &f, 0, &PipelineConfig::default());
        assert!(g.is_empty());
        assert_eq!(stats.peak_resident_edges, 0);
        assert!(stats.offered_edges > 0, "candidates were still scored");
    }

    #[test]
    fn prepared_output_matches_separate_sort() {
        let d = tiny();
        let f = SimilarityFunction::SchemaBasedSyntactic {
            attribute: "name".into(),
            measure: SchemaBasedMeasure::Char(CharMeasure::Levenshtein),
        };
        let cfg = PipelineConfig::default();
        let built = build_prepared(&d, &f, &cfg);
        assert_eq!(built.sorted.len(), built.graph.n_edges());
        let reference = build_graph(&d, &f, &cfg).sorted_edges();
        for (a, b) in built.sorted.all().iter().zip(reference.all()) {
            assert_eq!((a.left, a.right), (b.left, b.right));
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
        }
    }
}
