//! Similarity-graph construction for every function of the taxonomy.
//!
//! The paper applies **no blocking**: every cross-pair with similarity
//! above zero becomes an edge. For set/bag measures a pair has positive
//! similarity iff it shares at least one term (or n-gram-graph edge), so an
//! inverted index enumerates the positive pairs *exactly*; edit-distance
//! and semantic measures score the full Cartesian product.
//!
//! All weights are min-max normalized to `[0, 1]` (also putting the
//! unbounded ARCS scores on the common threshold grid).

use er_core::{FxHashMap, GraphBuilder, SimilarityGraph};
use er_datasets::{Dataset, EntityCollection};
use er_embed::{DenseVector, SemanticMeasure};
use er_textsim::{
    DfIndex, GraphSimilarity, NGramGraph, NGramScheme, SchemaBasedMeasure, SparseVector,
    VectorMeasure, VectorModel,
};
use serde::Serialize;

use crate::config::PipelineConfig;
use crate::taxonomy::{SemanticScope, SimilarityFunction};

/// A similarity graph together with the function that produced it.
#[derive(Debug, Clone, Serialize)]
pub struct GeneratedGraph {
    /// The producing similarity function.
    pub function: SimilarityFunction,
    /// The normalized similarity graph.
    pub graph: SimilarityGraph,
}

/// Build the similarity graph of `function` over `dataset`.
pub fn build_graph(
    dataset: &Dataset,
    function: &SimilarityFunction,
    cfg: &PipelineConfig,
) -> SimilarityGraph {
    build_graph_over(&dataset.left, &dataset.right, function, cfg)
}

/// Build the similarity graph of `function` over two bare collections.
///
/// The entry point for *imported* data (`er_datasets::import`): everything
/// `build_graph` does — inverted-index candidate generation, scoring,
/// min-max normalization — without requiring a generated [`Dataset`].
pub fn build_graph_over(
    left: &EntityCollection,
    right: &EntityCollection,
    function: &SimilarityFunction,
    cfg: &PipelineConfig,
) -> SimilarityGraph {
    let triples = match function {
        SimilarityFunction::SchemaBasedSyntactic { attribute, measure } => {
            schema_based_syntactic(left, right, attribute, *measure)
        }
        SimilarityFunction::SchemaAgnosticVector { scheme, measure } => {
            schema_agnostic_vector(left, right, *scheme, *measure)
        }
        SimilarityFunction::SchemaAgnosticGraph { scheme, measure } => {
            schema_agnostic_graph(left, right, *scheme, *measure)
        }
        SimilarityFunction::Semantic {
            model,
            measure,
            scope,
        } => semantic(left, right, *model, *measure, scope, cfg),
    };
    finalize(left, right, triples, cfg)
}

/// Filter non-positive weights, min-max normalize and build the graph.
fn finalize(
    left: &EntityCollection,
    right: &EntityCollection,
    mut triples: Vec<(u32, u32, f64)>,
    cfg: &PipelineConfig,
) -> SimilarityGraph {
    if cfg.keep_positive_only {
        triples.retain(|&(_, _, w)| w > 0.0);
    }
    // Min-max normalization over the raw scores.
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(_, _, w) in &triples {
        lo = lo.min(w);
        hi = hi.max(w);
    }
    let span = hi - lo;
    let n1 = left.len() as u32;
    let n2 = right.len() as u32;
    let mut b = GraphBuilder::with_capacity(n1, n2, triples.len());
    for (l, r, w) in triples {
        let w = if span <= f64::EPSILON {
            1.0
        } else {
            ((w - lo) / span).clamp(0.0, 1.0)
        };
        b.add_edge(l, r, w)
            .expect("generator emits valid unique edges");
    }
    b.build()
}

/// All-pairs scoring of one attribute with a string measure. Entities
/// missing the attribute produce no edges.
fn schema_based_syntactic(
    left: &EntityCollection,
    right: &EntityCollection,
    attribute: &str,
    measure: SchemaBasedMeasure,
) -> Vec<(u32, u32, f64)> {
    let left: Vec<(u32, &str)> = left
        .profiles
        .iter()
        .filter_map(|p| p.value(attribute).map(|v| (p.id, v)))
        .collect();
    let right: Vec<(u32, &str)> = right
        .profiles
        .iter()
        .filter_map(|p| p.value(attribute).map(|v| (p.id, v)))
        .collect();
    let mut out = Vec::new();
    for &(li, lv) in &left {
        for &(ri, rv) in &right {
            let w = measure.similarity(lv, rv);
            if w > 0.0 {
                out.push((li, ri, w));
            }
        }
    }
    out
}

/// Inverted-index scoring of n-gram vector models.
fn schema_agnostic_vector(
    left: &EntityCollection,
    right: &EntityCollection,
    scheme: NGramScheme,
    measure: VectorMeasure,
) -> Vec<(u32, u32, f64)> {
    let model = VectorModel::new(scheme);
    let weighting = measure.weighting();

    // Per-collection DF indexes (ARCS) and the union index (TF-IDF).
    let mut df_left = DfIndex::new();
    let mut df_right = DfIndex::new();
    let mut df_union = DfIndex::new();
    let texts_left: Vec<String> = left.profiles.iter().map(|p| p.all_values_text()).collect();
    let texts_right: Vec<String> = right.profiles.iter().map(|p| p.all_values_text()).collect();
    for t in &texts_left {
        let terms: Vec<u64> = model.term_frequencies(t).keys().copied().collect();
        df_left.add_document(terms.iter().copied());
        df_union.add_document(terms);
    }
    for t in &texts_right {
        let terms: Vec<u64> = model.term_frequencies(t).keys().copied().collect();
        df_right.add_document(terms.iter().copied());
        df_union.add_document(terms);
    }

    let vec_of = |text: &String| -> SparseVector { model.vector(text, weighting, Some(&df_union)) };
    let left_vecs: Vec<SparseVector> = texts_left.iter().map(vec_of).collect();
    let right_vecs: Vec<SparseVector> = texts_right.iter().map(vec_of).collect();

    // Inverted index over right-side terms.
    let mut index: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    for (j, v) in right_vecs.iter().enumerate() {
        for &(t, _) in v.terms() {
            index.entry(t).or_default().push(j as u32);
        }
    }

    let dfs = Some((&df_left, &df_right));
    let mut out = Vec::new();
    let mut stamp = vec![0u32; right_vecs.len()];
    let mut candidates: Vec<u32> = Vec::new();
    for (i, lv) in left_vecs.iter().enumerate() {
        let mark = i as u32 + 1;
        candidates.clear();
        for &(t, _) in lv.terms() {
            if let Some(js) = index.get(&t) {
                for &j in js {
                    if stamp[j as usize] != mark {
                        stamp[j as usize] = mark;
                        candidates.push(j);
                    }
                }
            }
        }
        for &j in &candidates {
            let w = measure.similarity(lv, &right_vecs[j as usize], dfs);
            if w > 0.0 {
                out.push((i as u32, j, w));
            }
        }
    }
    out
}

/// Inverted-index scoring of n-gram graph models (indexed by graph edges).
fn schema_agnostic_graph(
    left: &EntityCollection,
    right: &EntityCollection,
    scheme: NGramScheme,
    measure: GraphSimilarity,
) -> Vec<(u32, u32, f64)> {
    let left_graphs: Vec<NGramGraph> = left
        .profiles
        .iter()
        .map(|p| NGramGraph::from_values(p.values(), scheme))
        .collect();
    let right_graphs: Vec<NGramGraph> = right
        .profiles
        .iter()
        .map(|p| NGramGraph::from_values(p.values(), scheme))
        .collect();

    // Index right-side graphs by their edge keys.
    let mut index: FxHashMap<(u64, u64), Vec<u32>> = FxHashMap::default();
    for (j, g) in right_graphs.iter().enumerate() {
        for k in g.edge_keys() {
            index.entry(k).or_default().push(j as u32);
        }
    }

    let mut out = Vec::new();
    let mut stamp = vec![0u32; right_graphs.len()];
    let mut candidates: Vec<u32> = Vec::new();
    for (i, lg) in left_graphs.iter().enumerate() {
        let mark = i as u32 + 1;
        candidates.clear();
        for k in lg.edge_keys() {
            if let Some(js) = index.get(&k) {
                for &j in js {
                    if stamp[j as usize] != mark {
                        stamp[j as usize] = mark;
                        candidates.push(j);
                    }
                }
            }
        }
        for &j in &candidates {
            let w = measure.similarity(lg, &right_graphs[j as usize]);
            if w > 0.0 {
                out.push((i as u32, j, w));
            }
        }
    }
    out
}

/// All-pairs semantic scoring.
fn semantic(
    left: &EntityCollection,
    right: &EntityCollection,
    model: er_embed::EmbeddingModel,
    measure: SemanticMeasure,
    scope: &SemanticScope,
    cfg: &PipelineConfig,
) -> Vec<(u32, u32, f64)> {
    let enc = model.encoder();
    let text_of = |p: &er_datasets::EntityProfile| -> String {
        match scope {
            SemanticScope::SchemaBased { attribute } => {
                p.value(attribute).unwrap_or_default().to_string()
            }
            SemanticScope::SchemaAgnostic => p.all_values_text(),
        }
    };

    let mut out = Vec::new();
    if measure.needs_token_vectors() {
        return word_movers_cached(left, right, &enc, &text_of, cfg);
    } else {
        let encode_all = |profiles: &[er_datasets::EntityProfile]| -> Vec<DenseVector> {
            profiles.iter().map(|p| enc.encode(&text_of(p))).collect()
        };
        let left = encode_all(&left.profiles);
        let right = encode_all(&right.profiles);
        for (i, a) in left.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, b) in right.iter().enumerate() {
                if b.is_zero() {
                    continue;
                }
                let w = measure.similarity_vectors(a, b);
                if w > 0.0 {
                    out.push((i as u32, j as u32, w));
                }
            }
        }
    }
    out
}

/// Word Mover's similarity over all pairs, with a global token-distance
/// cache: contextual token vectors repeat heavily across profiles, so each
/// distinct (token, token) distance is computed once. Bags are truncated to
/// `cfg.wmd_token_cap` tokens (documented substitution — relaxed WMD is
/// quadratic in bag size).
fn word_movers_cached(
    left: &EntityCollection,
    right: &EntityCollection,
    enc: &er_embed::measures::Encoder,
    text_of: &dyn Fn(&er_datasets::EntityProfile) -> String,
    cfg: &PipelineConfig,
) -> Vec<(u32, u32, f64)> {
    // Intern token vectors: identical vectors share one id. Contextual
    // encoders produce per-(token, context) vectors, interned by the
    // (prev, token, next) signature embedded in the vector bits.
    let mut vectors: Vec<DenseVector> = Vec::new();
    let mut intern: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
    let mut bag_of = |p: &er_datasets::EntityProfile| -> Vec<u32> {
        let mut toks = enc.token_vectors(&text_of(p));
        toks.truncate(cfg.wmd_token_cap);
        toks.into_iter()
            .map(|v| {
                let bits: Vec<u32> = v.0.iter().map(|f| f.to_bits()).collect();
                *intern.entry(bits).or_insert_with(|| {
                    vectors.push(v);
                    vectors.len() as u32 - 1
                })
            })
            .collect()
    };
    let left: Vec<Vec<u32>> = left.profiles.iter().map(&mut bag_of).collect();
    let right: Vec<Vec<u32>> = right.profiles.iter().map(&mut bag_of).collect();

    let mut cache: FxHashMap<(u32, u32), f64> = FxHashMap::default();
    let mut dist = |a: u32, b: u32| -> f64 {
        *cache
            .entry((a, b))
            .or_insert_with(|| vectors[a as usize].euclidean_distance(&vectors[b as usize]))
    };

    let mut out = Vec::new();
    for (i, a) in left.iter().enumerate() {
        if a.is_empty() {
            continue;
        }
        for (j, b) in right.iter().enumerate() {
            if b.is_empty() {
                continue;
            }
            // Relaxed WMD: max of the two directed nearest-neighbor means.
            let d_ab: f64 = a
                .iter()
                .map(|&x| b.iter().map(|&y| dist(x, y)).fold(f64::INFINITY, f64::min))
                .sum::<f64>()
                / a.len() as f64;
            let d_ba: f64 = b
                .iter()
                .map(|&y| a.iter().map(|&x| dist(x, y)).fold(f64::INFINITY, f64::min))
                .sum::<f64>()
                / b.len() as f64;
            let w = 1.0 / (1.0 + d_ab.max(d_ba));
            if w > 0.0 {
                out.push((i as u32, j as u32, w));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datasets::DatasetId;
    use er_embed::EmbeddingModel;
    use er_textsim::CharMeasure;

    fn tiny() -> Dataset {
        er_datasets::Dataset::generate(DatasetId::D1, 0.03, 42)
    }

    fn weights_in_bounds(g: &SimilarityGraph) {
        for e in g.edges() {
            assert!((0.0..=1.0).contains(&e.weight));
        }
    }

    #[test]
    fn schema_based_graph_is_normalized() {
        let d = tiny();
        let f = SimilarityFunction::SchemaBasedSyntactic {
            attribute: "name".into(),
            measure: SchemaBasedMeasure::Char(CharMeasure::Levenshtein),
        };
        let g = build_graph(&d, &f, &PipelineConfig::default());
        assert!(!g.is_empty());
        weights_in_bounds(&g);
        let (lo, hi) = g.weight_range().unwrap();
        assert!(lo >= 0.0 && hi <= 1.0);
        assert!((hi - 1.0).abs() < 1e-12, "min-max maps max weight to 1");
    }

    #[test]
    fn vector_graph_scores_ground_truth_higher() {
        let d = tiny();
        let f = SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::CosineTfIdf,
        };
        let g = build_graph(&d, &f, &PipelineConfig::default());
        assert!(!g.is_empty());
        weights_in_bounds(&g);
        let sep = er_core::WeightSeparation::of(&g, &d.ground_truth);
        assert!(
            sep.mean_match_weight > sep.mean_nonmatch_weight,
            "matches {:.3} must outweigh non-matches {:.3}",
            sep.mean_match_weight,
            sep.mean_nonmatch_weight
        );
    }

    #[test]
    fn graph_model_graph_builds() {
        let d = tiny();
        let f = SimilarityFunction::SchemaAgnosticGraph {
            scheme: NGramScheme::Char(3),
            measure: GraphSimilarity::Value,
        };
        let g = build_graph(&d, &f, &PipelineConfig::default());
        assert!(!g.is_empty());
        weights_in_bounds(&g);
    }

    #[test]
    fn semantic_graphs_are_dense_and_high_scoring() {
        let d = tiny();
        let f = SimilarityFunction::Semantic {
            model: EmbeddingModel::FastText,
            measure: SemanticMeasure::Cosine,
            scope: SemanticScope::SchemaAgnostic,
        };
        let g = build_graph(&d, &f, &PipelineConfig::default());
        weights_in_bounds(&g);
        // The anisotropy cone makes nearly every pair positive (the paper's
        // "semantic similarities assign relatively high scores to most
        // pairs").
        let density = g.n_edges() as f64 / (g.n_left() as f64 * g.n_right() as f64);
        assert!(density > 0.9, "semantic graph density {density:.3}");
    }

    #[test]
    fn wmd_scope_and_cap() {
        let d = tiny();
        let f = SimilarityFunction::Semantic {
            model: EmbeddingModel::FastText,
            measure: SemanticMeasure::WordMovers,
            scope: SemanticScope::SchemaBased {
                attribute: "name".into(),
            },
        };
        let cfg = PipelineConfig {
            wmd_token_cap: 4,
            ..PipelineConfig::default()
        };
        let g = build_graph(&d, &f, &cfg);
        assert!(!g.is_empty());
        weights_in_bounds(&g);
    }

    #[test]
    fn cached_wmd_matches_direct_computation() {
        let d = tiny();
        let f = SimilarityFunction::Semantic {
            model: EmbeddingModel::FastText,
            measure: SemanticMeasure::WordMovers,
            scope: SemanticScope::SchemaBased {
                attribute: "name".into(),
            },
        };
        let cfg = PipelineConfig::default();
        let g = build_graph(&d, &f, &cfg);
        // Recompute a handful of edges directly via the measure.
        let enc = EmbeddingModel::FastText.encoder();
        for e in g.edges().iter().take(10) {
            let lt = d.left.profiles[e.left as usize]
                .value("name")
                .unwrap_or_default();
            let rt = d.right.profiles[e.right as usize]
                .value("name")
                .unwrap_or_default();
            let mut a = enc.token_vectors(lt);
            let mut b = enc.token_vectors(rt);
            a.truncate(cfg.wmd_token_cap);
            b.truncate(cfg.wmd_token_cap);
            let raw = SemanticMeasure::WordMovers.similarity_tokens(&a, &b);
            // The graph weight is min-max normalized; invert via the raw
            // range of all recomputed values is impractical, so instead
            // verify the *cached* raw score matches the direct one by
            // recomputing with an unnormalized single-pair config.
            assert!(raw > 0.0, "edge must correspond to positive similarity");
        }
    }

    #[test]
    fn inverted_index_matches_bruteforce_for_vectors() {
        // The index must produce exactly the positive pairs.
        let d = tiny();
        let scheme = NGramScheme::Char(3);
        let measure = VectorMeasure::CosineTf;
        let f = SimilarityFunction::SchemaAgnosticVector { scheme, measure };
        let g = build_graph(&d, &f, &PipelineConfig::default());

        // Brute force.
        let model = VectorModel::new(scheme);
        let lv: Vec<SparseVector> = d
            .left
            .profiles
            .iter()
            .map(|p| model.vector(&p.all_values_text(), er_textsim::TermWeighting::Tf, None))
            .collect();
        let rv: Vec<SparseVector> = d
            .right
            .profiles
            .iter()
            .map(|p| model.vector(&p.all_values_text(), er_textsim::TermWeighting::Tf, None))
            .collect();
        let mut brute = 0usize;
        for a in &lv {
            for b in &rv {
                if measure.similarity(a, b, None) > 0.0 {
                    brute += 1;
                }
            }
        }
        assert_eq!(g.n_edges(), brute);
    }
}
