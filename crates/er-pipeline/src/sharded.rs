//! Out-of-core top-k graph construction: score in bounded shards, spill,
//! k-way-merge into a columnar on-disk graph.
//!
//! The in-RAM streaming build ([`build_graph_topk_mode`](crate::build_graph_topk_mode)) already bounds
//! peak memory at `O(n_left × k)` edges — but the *finished* edge set
//! still materializes as one heap-resident graph. This module removes
//! that last ceiling: [`build_graph_sharded`] partitions the left rows
//! into contiguous ranges of [`ShardedConfig::shard_rows`], runs the
//! existing bound-driven top-k engine (indexed candidate generation and
//! all) one shard at a time against a scorer **prepared once over the
//! full collections**, spills each finished shard's raw triples to a
//! slab file, and externally merges the spills into one on-disk
//! [`MappedCsr`] store — version 2, with the weight-descending
//! sort-order column emitted by an external run sort, so the finished
//! file can be swept mmap-native without ever hydrating. Peak resident
//! edges stay bounded by the shard budget (see below) — the corpus's
//! dense edge set, and even its pruned top-k edge set, never needs to
//! fit in RAM.
//!
//! # Pipelining and the parallel merge
//!
//! With [`ShardedConfig::pipelined`] (the default), shard *scoring*
//! overlaps the previous shard's *spill*: the scoring loop hands each
//! finished shard across a rendezvous channel to a dedicated spill
//! thread. The channel is unbuffered, so at most **two** shards are
//! in flight — the one being scored and the one being spilled — and the
//! resident ceiling doubles to `2 × shard_rows × k`
//! ([`ShardedStats::resident_budget_edges`] reports whichever bound is
//! configured). Bit-identity is untouched: there is a single producer,
//! shards arrive at the spill thread in score order, each spill file's
//! bytes are computed per shard exactly as in the serial loop, and the
//! `(lo, hi)` frame fold is order-independent anyway.
//!
//! The final merge is parallelized **by left-row ranges**: shards cover
//! contiguous disjoint row ranges, so any contiguous group of spill
//! files can be finalized (positivity-filtered weights normalized
//! through the frame, rows sorted right-ascending) into a segment file
//! independently of the others. [`ShardedConfig::merge_threads`] workers
//! do exactly that, and one serial pass streams the segments — already
//! in global row order — into the [`SlabWriter`]. With one effective
//! thread the direct heap-merge path runs instead (no segment I/O).
//!
//! # Bit-identity with the in-RAM path
//!
//! The result is **bit-identical** to
//! `CsrGraph::from_graph(&build_graph_topk_mode(…).0)`, argued in three
//! steps (property-proven per taxonomy branch, thread count, shard
//! size and pipelining mode in `tests/sharded_props.rs`):
//!
//! 1. **Scores.** The scorer — DF statistics, inverted indexes, encoded
//!    vectors, candidate indexes — is prepared once over the *full*
//!    collections, exactly as the in-RAM build prepares it; per-row
//!    top-k selection is row-local; and row ranges are scored in
//!    ascending order. Concatenating the shard outputs therefore
//!    reproduces the in-RAM score phase's triple stream bit for bit
//!    (see `graphgen::score_topk_sharded`).
//! 2. **Frame.** The positivity filter is applied per shard before
//!    spilling — the same per-triple predicate the in-RAM finalize
//!    applies — and the normalization frame is folded from per-shard
//!    `(min, max)` bounds. Min/max folding is order- and
//!    grouping-independent, so the frame equals the in-RAM
//!    `NormFrame::compute` over the concatenated retained triples.
//! 3. **Merge.** Each spilled record's raw weight is mapped through
//!    that frame at merge time — the identical `f64` operations the
//!    in-RAM finalize applies — and rows are written right-ascending,
//!    which is exactly the canonical order `CsrGraph::from_graph`
//!    produces. Same edges, same weights, same layout — regardless of
//!    how the spill files were grouped into merge segments, because
//!    every row's bytes are a function of that row's spill records
//!    alone. The sort-order column is sorted by the *stored*
//!    (normalized) weights with ascending-slab-index tie-breaks, and
//!    re-validated against exactly that order when the store is opened.
//!
//! DESIGN.md §18 and §20 spell the argument out against the on-disk
//! format.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use er_core::{ConstructionCounters, MappedCsr, SlabWriter, StoreError, StoreMeta};
use er_datasets::EntityCollection;

use crate::candidates::CandidateMode;
use crate::config::PipelineConfig;
use crate::graphgen::{score_topk_sharded, NormFrame, Triple};
use crate::taxonomy::SimilarityFunction;

/// Bytes of one spill record: `(left u32, right u32, raw weight f64)`.
/// Segment files reuse the same layout with the weight normalized.
const SPILL_RECORD: usize = 16;

/// Bytes of one sort-order run record: `(weight f64, slab index u64)`.
const PERM_RECORD: usize = 16;

/// Floor for the external sort's run length: runs shorter than this cost
/// more in file handles than they save in memory (64 KiB resident).
const MIN_PERM_RUN: usize = 4096;

/// Shape of one out-of-core build.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Scorer rows per shard — the resident-memory knob: peak resident
    /// edges are at most `shard_rows × k` per in-flight shard.
    pub shard_rows: usize,
    /// Directory for the per-shard spill files (created if missing,
    /// spills deleted after the merge).
    pub spill_dir: PathBuf,
    /// Overlap shard scoring with the previous shard's spill on a
    /// dedicated thread. Keeps at most two shards in flight, doubling
    /// the resident ceiling to `2 × shard_rows × k`. Default `true`.
    pub pipelined: bool,
    /// Workers for the row-range-parallel merge; `0` (the default)
    /// means [`PipelineConfig::effective_threads`]. Clamped to the
    /// shard count; `1` selects the direct serial merge.
    pub merge_threads: usize,
}

impl ShardedConfig {
    /// A config spilling to `spill_dir` with `shard_rows` rows per
    /// shard — pipelined, merge parallelism following the pipeline
    /// thread count.
    pub fn new(shard_rows: usize, spill_dir: impl Into<PathBuf>) -> Self {
        ShardedConfig {
            shard_rows,
            spill_dir: spill_dir.into(),
            pipelined: true,
            merge_threads: 0,
        }
    }

    /// The fully serial variant — no spill overlap, direct single-pass
    /// merge. The strictest resident bound (`shard_rows × k`), and the
    /// A/B baseline the pipelined path is property-tested against.
    pub fn serial(shard_rows: usize, spill_dir: impl Into<PathBuf>) -> Self {
        ShardedConfig {
            shard_rows,
            spill_dir: spill_dir.into(),
            pipelined: false,
            merge_threads: 1,
        }
    }
}

/// Accounting of one out-of-core build — the construction-flow counters
/// of the in-RAM [`TopKStats`](crate::TopKStats) plus the spill/merge
/// volumes that replace resident memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedStats {
    /// Shards scored and spilled.
    pub shards: usize,
    /// Candidate pairs materialized and handed to a measure.
    pub generated_pairs: usize,
    /// Triples the scorers emitted into the bounded sinks.
    pub offered_edges: usize,
    /// Edges in the finished on-disk graph.
    pub retained_edges: usize,
    /// Maximum triples resident at once — bounded row heaps plus the
    /// in-flight shard buffers only, since each spilled shard releases
    /// its count. At most [`Self::resident_budget_edges`].
    pub peak_resident_edges: usize,
    /// The configured resident ceiling: `shard_rows × k`, doubled when
    /// the build is pipelined (two shards in flight).
    pub resident_budget_edges: usize,
    /// Candidate pairs skipped via exact upper bounds before scoring.
    pub pruned_pairs: usize,
    /// Candidate pairs fully scored.
    pub scored_pairs: usize,
    /// Positivity-filtered triples written to spill files.
    pub spilled_triples: usize,
    /// Bytes written to spill files.
    pub spilled_bytes: usize,
    /// Bytes of the merged on-disk graph (the final store file).
    pub merged_bytes: usize,
    /// Workers the final merge actually ran with (1 = direct serial).
    pub merge_workers: usize,
}

/// One spill (or segment) file being merged: a buffered reader plus the
/// decoded look-ahead record — the only triple of the shard resident
/// during the merge.
struct SpillReader {
    rd: BufReader<File>,
    next: Option<(u32, u32, f64)>,
}

impl SpillReader {
    fn open(path: &Path) -> Result<SpillReader, StoreError> {
        let mut reader = SpillReader {
            rd: BufReader::new(File::open(path)?),
            next: None,
        };
        reader.advance()?;
        Ok(reader)
    }

    fn advance(&mut self) -> Result<(), StoreError> {
        let mut buf = [0u8; SPILL_RECORD];
        let mut at = 0;
        while at < SPILL_RECORD {
            let n = self.rd.read(&mut buf[at..])?;
            if n == 0 {
                break;
            }
            at += n;
        }
        self.next = match at {
            0 => None,
            SPILL_RECORD => Some((
                u32::from_le_bytes(buf[0..4].try_into().unwrap()),
                u32::from_le_bytes(buf[4..8].try_into().unwrap()),
                f64::from_le_bytes(buf[8..16].try_into().unwrap()),
            )),
            _ => return Err(StoreError::Format("truncated spill record".into())),
        };
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Score-phase spilling (shared by the serial loop and the pipeline
// worker — one code path, so overlap cannot change the bytes).
// ----------------------------------------------------------------------

/// Mutable state of the spill stage.
struct SpillState {
    spills: Vec<PathBuf>,
    lo: f64,
    hi: f64,
    spilled_triples: usize,
    err: Option<StoreError>,
}

impl SpillState {
    fn new() -> Self {
        SpillState {
            spills: Vec::new(),
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
            spilled_triples: 0,
            err: None,
        }
    }

    /// Positivity-filter, fold the frame bounds, and spill one scored
    /// shard; `resident` is the triple count the shard's buffers held.
    fn spill_shard(
        &mut self,
        shard: usize,
        bufs: Vec<Vec<Triple>>,
        resident: usize,
        keep_positive_only: bool,
        spill_dir: &Path,
        acct: &ConstructionCounters,
    ) {
        if self.err.is_some() {
            return;
        }
        let path = spill_dir.join(format!("shard-{shard}.spill"));
        let spill = (|| -> Result<usize, StoreError> {
            let mut out = BufWriter::new(File::create(&path)?);
            let mut kept = 0usize;
            for (l, r, w) in bufs.into_iter().flatten() {
                if keep_positive_only && w <= 0.0 {
                    continue;
                }
                self.lo = self.lo.min(w);
                self.hi = self.hi.max(w);
                out.write_all(&l.to_le_bytes())?;
                out.write_all(&r.to_le_bytes())?;
                out.write_all(&w.to_le_bytes())?;
                kept += 1;
            }
            out.flush()?;
            Ok(kept)
        })();
        self.spills.push(path);
        match spill {
            Ok(kept) => {
                self.spilled_triples += kept;
                acct.add_spilled_bytes(kept * SPILL_RECORD);
                // The shard's buffers are dropped here: release their
                // resident count so the peak tracks the in-flight
                // shards, not the cumulative total.
                acct.sub_resident(resident);
            }
            Err(e) => self.err = Some(e),
        }
    }
}

// ----------------------------------------------------------------------
// External sort of the store's sort-order column.
// ----------------------------------------------------------------------

/// Run comparator: stored weight descending under `total_cmp`, ties by
/// ascending slab index — `edge_key_desc` expressed on `(weight, slab
/// index)`, since slab order is `(left, right)`-ascending.
fn perm_cmp(a: &(f64, u64), b: &(f64, u64)) -> std::cmp::Ordering {
    b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1))
}

/// Bounded-memory sorter for the sort-order column: buffers `(stored
/// weight, slab index)` entries up to the run budget, spills sorted
/// runs, and k-way-merges them into the order stream
/// [`SlabWriter::finish_with_order`] consumes. Small builds never spill
/// (one resident run).
struct PermSorter {
    dir: PathBuf,
    budget: usize,
    buf: Vec<(f64, u64)>,
    runs: Vec<PathBuf>,
}

impl PermSorter {
    fn new(dir: &Path, budget: usize) -> Self {
        PermSorter {
            dir: dir.to_path_buf(),
            budget: budget.max(MIN_PERM_RUN),
            buf: Vec::new(),
            runs: Vec::new(),
        }
    }

    fn push(&mut self, weight: f64, slab_idx: u64) -> Result<(), StoreError> {
        self.buf.push((weight, slab_idx));
        if self.buf.len() >= self.budget {
            self.spill_run()?;
        }
        Ok(())
    }

    fn spill_run(&mut self) -> Result<(), StoreError> {
        self.buf.sort_unstable_by(perm_cmp);
        let path = self.dir.join(format!("perm-run-{}.spill", self.runs.len()));
        let mut out = BufWriter::new(File::create(&path)?);
        for &(w, idx) in &self.buf {
            out.write_all(&w.to_le_bytes())?;
            out.write_all(&idx.to_le_bytes())?;
        }
        out.flush()?;
        self.runs.push(path);
        self.buf.clear();
        Ok(())
    }

    /// Freeze into the merged order stream (and the run paths to clean
    /// up afterwards).
    fn into_order(mut self) -> Result<(PermOrder, Vec<PathBuf>), StoreError> {
        self.buf.sort_unstable_by(perm_cmp);
        let run_paths = self.runs.clone();
        let mut sources = Vec::with_capacity(self.runs.len() + 1);
        for p in &self.runs {
            sources.push(PermSource::Run(PermRunReader::open(p)?));
        }
        sources.push(PermSource::Ram(self.buf.into_iter()));
        let mut heap = BinaryHeap::with_capacity(sources.len());
        for (i, s) in sources.iter_mut().enumerate() {
            if let Some((w, idx)) = s.pop()? {
                heap.push(PermHeapEntry { w, idx, src: i });
            }
        }
        Ok((PermOrder { sources, heap }, run_paths))
    }
}

/// One spilled run of the external sort.
struct PermRunReader {
    rd: BufReader<File>,
}

impl PermRunReader {
    fn open(path: &Path) -> Result<PermRunReader, StoreError> {
        Ok(PermRunReader {
            rd: BufReader::new(File::open(path)?),
        })
    }

    fn read(&mut self) -> Result<Option<(f64, u64)>, StoreError> {
        let mut buf = [0u8; PERM_RECORD];
        let mut at = 0;
        while at < PERM_RECORD {
            let n = self.rd.read(&mut buf[at..])?;
            if n == 0 {
                break;
            }
            at += n;
        }
        match at {
            0 => Ok(None),
            PERM_RECORD => Ok(Some((
                f64::from_le_bytes(buf[0..8].try_into().unwrap()),
                u64::from_le_bytes(buf[8..16].try_into().unwrap()),
            ))),
            _ => Err(StoreError::Format("truncated sort-order run record".into())),
        }
    }
}

enum PermSource {
    Run(PermRunReader),
    Ram(std::vec::IntoIter<(f64, u64)>),
}

impl PermSource {
    fn pop(&mut self) -> Result<Option<(f64, u64)>, StoreError> {
        match self {
            PermSource::Run(r) => r.read(),
            PermSource::Ram(it) => Ok(it.next()),
        }
    }
}

/// Max-heap key: "greater" means "comes first" under [`perm_cmp`], so
/// `BinaryHeap::pop` yields the globally next sort-order entry.
struct PermHeapEntry {
    w: f64,
    idx: u64,
    src: usize,
}

impl PartialEq for PermHeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for PermHeapEntry {}

impl PartialOrd for PermHeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PermHeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        perm_cmp(&(other.w, other.idx), &(self.w, self.idx))
    }
}

/// The merged weight-descending order, streamed into
/// [`SlabWriter::finish_with_order`]. One resident record per run.
struct PermOrder {
    sources: Vec<PermSource>,
    heap: BinaryHeap<PermHeapEntry>,
}

impl Iterator for PermOrder {
    type Item = Result<u64, StoreError>;

    fn next(&mut self) -> Option<Result<u64, StoreError>> {
        let top = self.heap.pop()?;
        match self.sources[top.src].pop() {
            Ok(Some((w, idx))) => self.heap.push(PermHeapEntry {
                w,
                idx,
                src: top.src,
            }),
            Ok(None) => {}
            Err(e) => return Some(Err(e)),
        }
        Some(Ok(top.idx))
    }
}

// ----------------------------------------------------------------------
// Store sink: rows in, finished v2 store out.
// ----------------------------------------------------------------------

/// Streams finalized rows (right-ascending, weights normalized) into a
/// [`SlabWriter::create_streamed`] writer while feeding the external
/// sort of the sort-order column. Gaps between pushed rows become empty
/// live rows, exactly like the direct merge wrote them.
struct StoreSink {
    writer: SlabWriter,
    perm: PermSorter,
    n_left: u32,
    next_row: u32,
    slab_idx: u64,
}

impl StoreSink {
    fn new(
        out_path: &Path,
        n_left: u32,
        n_right: u32,
        spill_dir: &Path,
        perm_budget: usize,
    ) -> Result<StoreSink, StoreError> {
        Ok(StoreSink {
            writer: SlabWriter::create_streamed(out_path, n_left, n_right, Vec::new())?,
            perm: PermSorter::new(spill_dir, perm_budget),
            n_left,
            next_row: 0,
            slab_idx: 0,
        })
    }

    /// Append row `l` (right-ascending `(right, stored weight)` pairs),
    /// filling any gap since the previous pushed row with empty rows.
    fn push_row(&mut self, l: u32, row: &[(u32, f64)]) -> Result<(), StoreError> {
        if l >= self.n_left || l < self.next_row {
            return Err(StoreError::Format(
                "spill records outside the left id space".into(),
            ));
        }
        while self.next_row < l {
            self.writer.append_row(&[])?;
            self.next_row += 1;
        }
        self.writer.append_row(row)?;
        self.next_row += 1;
        for &(_, w) in row {
            self.perm.push(w, self.slab_idx)?;
            self.slab_idx += 1;
        }
        Ok(())
    }

    /// Pad the remaining rows, merge the sort-order runs, seal the file.
    fn finish(mut self) -> Result<(StoreMeta, Vec<PathBuf>), StoreError> {
        while self.next_row < self.n_left {
            self.writer.append_row(&[])?;
            self.next_row += 1;
        }
        let (order, run_paths) = self.perm.into_order()?;
        let meta = self.writer.finish_with_order(order)?;
        Ok((meta, run_paths))
    }
}

// ----------------------------------------------------------------------
// Merge paths.
// ----------------------------------------------------------------------

/// Direct serial merge: k-way heap over all spill files straight into
/// the sink — no intermediate segment I/O. The path of choice on one
/// effective thread.
fn merge_serial(
    spills: &[PathBuf],
    frame: NormFrame,
    sink: &mut StoreSink,
    n_left: u32,
) -> Result<(), StoreError> {
    let mut readers = Vec::with_capacity(spills.len());
    for p in spills {
        readers.push(SpillReader::open(p)?);
    }
    let mut heap: BinaryHeap<Reverse<(u32, usize)>> = readers
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.next.map(|(l, _, _)| Reverse((l, i))))
        .collect();
    let mut row: Vec<(u32, f64)> = Vec::new();
    for l in 0..n_left {
        row.clear();
        while let Some(&Reverse((rl, idx))) = heap.peek() {
            if rl != l {
                break;
            }
            heap.pop();
            while let Some((el, er, ew)) = readers[idx].next {
                if el != l {
                    break;
                }
                row.push((er, frame.apply(ew)));
                readers[idx].advance()?;
            }
            if let Some((el, _, _)) = readers[idx].next {
                heap.push(Reverse((el, idx)));
            }
        }
        // Shard rows drain weight-descending; the store's canonical
        // row order is right-ascending, same as CsrGraph::from_graph.
        row.sort_unstable_by_key(|&(r, _)| r);
        sink.push_row(l, &row)?;
    }
    if !heap.is_empty() {
        return Err(StoreError::Format(
            "spill records outside the left id space".into(),
        ));
    }
    Ok(())
}

/// One parallel-merge worker: finalize a contiguous group of spill
/// files (rows `lo_row..hi_row`) into a segment file — rows in
/// ascending-left order, right-ascending within a row, weights
/// normalized. Row-local work only, so the segment bytes are identical
/// to what the direct merge writes for those rows.
fn merge_group(
    spills: &[PathBuf],
    frame: NormFrame,
    seg_path: &Path,
    lo_row: u32,
    hi_row: u32,
) -> Result<(), StoreError> {
    let mut out = BufWriter::new(File::create(seg_path)?);
    let mut row: Vec<(u32, f64)> = Vec::new();
    let mut cur: Option<u32> = None;
    let flush = |l: u32, row: &mut Vec<(u32, f64)>, out: &mut BufWriter<File>| {
        row.sort_unstable_by_key(|&(r, _)| r);
        for &(r, w) in row.iter() {
            out.write_all(&l.to_le_bytes())?;
            out.write_all(&r.to_le_bytes())?;
            out.write_all(&w.to_le_bytes())?;
        }
        row.clear();
        Ok::<(), StoreError>(())
    };
    for p in spills {
        let mut rd = SpillReader::open(p)?;
        while let Some((l, r, w)) = rd.next {
            if l < lo_row || l >= hi_row || cur.is_some_and(|c| l < c) {
                return Err(StoreError::Format(
                    "spill records outside the left id space".into(),
                ));
            }
            if cur != Some(l) {
                if let Some(prev) = cur {
                    flush(prev, &mut row, &mut out)?;
                }
                cur = Some(l);
            }
            row.push((r, frame.apply(w)));
            rd.advance()?;
        }
    }
    if let Some(prev) = cur {
        flush(prev, &mut row, &mut out)?;
    }
    out.flush()?;
    Ok(())
}

/// Parallel merge: split the spill files into `workers` contiguous
/// groups, finalize each into a segment on its own thread, then stream
/// the segments (already globally row-ordered) into the sink.
fn merge_parallel(
    spills: &[PathBuf],
    frame: NormFrame,
    sink: &mut StoreSink,
    shard_rows: usize,
    n_left: u32,
    workers: usize,
    spill_dir: &Path,
) -> Result<Vec<PathBuf>, StoreError> {
    let n_shards = spills.len();
    let per_group = n_shards.div_ceil(workers);
    let groups: Vec<(usize, usize)> = (0..workers)
        .map(|g| (g * per_group, ((g + 1) * per_group).min(n_shards)))
        .filter(|(s, e)| s < e)
        .collect();
    let seg_paths: Vec<PathBuf> = (0..groups.len())
        .map(|g| spill_dir.join(format!("seg-{g}.merged")))
        .collect();
    let results: Vec<Result<(), StoreError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .iter()
            .zip(&seg_paths)
            .map(|(&(s, e), seg)| {
                let group_spills = &spills[s..e];
                scope.spawn(move || {
                    let lo_row = (s * shard_rows).min(n_left as usize) as u32;
                    let hi_row = (e * shard_rows).min(n_left as usize) as u32;
                    merge_group(group_spills, frame, seg, lo_row, hi_row)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("merge worker panicked"))
            .collect()
    });
    for r in results {
        r?;
    }
    // Serial pass: segments are contiguous ascending row ranges, so
    // concatenation is the global row order.
    let mut row: Vec<(u32, f64)> = Vec::new();
    let mut cur: Option<u32> = None;
    for seg in &seg_paths {
        let mut rd = SpillReader::open(seg)?;
        while let Some((l, r, w)) = rd.next {
            if cur != Some(l) {
                if let Some(prev) = cur {
                    sink.push_row(prev, &row)?;
                    row.clear();
                }
                cur = Some(l);
            }
            row.push((r, w));
            rd.advance()?;
        }
    }
    if let Some(prev) = cur {
        sink.push_row(prev, &row)?;
    }
    Ok(seg_paths)
}

/// Build the top-k graph of `function` **out of core**: bounded shards
/// through the streaming engine, spill files, an external merge into a
/// columnar on-disk store at `out_path` — opened and returned as a
/// file-backed [`MappedCsr`] view (version 2: sort-order column
/// included), bit-identical to what the in-RAM
/// [`build_graph_topk_mode`](crate::build_graph_topk_mode) path would have produced (see the module
/// docs for the argument), with the frame and the spill/merge
/// accounting alongside.
///
/// ```
/// use er_datasets::{Dataset, DatasetId};
/// use er_pipeline::{
///     build_graph_sharded, build_graph_topk_mode, CandidateMode, PipelineConfig, ShardedConfig,
/// };
/// use er_pipeline::SimilarityFunction;
/// use er_textsim::{NGramScheme, VectorMeasure};
///
/// let d = Dataset::generate(DatasetId::D1, 0.02, 7);
/// let f = SimilarityFunction::SchemaAgnosticVector {
///     scheme: NGramScheme::Token(1),
///     measure: VectorMeasure::CosineTfIdf,
/// };
/// let cfg = PipelineConfig::default();
/// let dir = std::env::temp_dir().join("ccer-sharded-doc");
/// let out = dir.join("graph.slab");
/// let (mapped, stats, _frame) = build_graph_sharded(
///     &d.left, &d.right, &f, 2, CandidateMode::Indexed, &cfg,
///     &ShardedConfig::new(8, &dir), &out,
/// ).unwrap();
///
/// // Bit-identical to the in-RAM build, resident bound respected.
/// let (g, _) = build_graph_topk_mode(&d.left, &d.right, &f, 2, CandidateMode::Indexed, &cfg);
/// assert_eq!(mapped.to_csr(), er_core::CsrGraph::from_graph(&g));
/// assert!(stats.peak_resident_edges <= stats.resident_budget_edges);
/// assert!(mapped.has_sort_order());
/// # std::fs::remove_file(&out).ok();
/// ```
#[allow(clippy::too_many_arguments)]
pub fn build_graph_sharded(
    left: &EntityCollection,
    right: &EntityCollection,
    function: &SimilarityFunction,
    k: usize,
    mode: CandidateMode,
    cfg: &PipelineConfig,
    sharding: &ShardedConfig,
    out_path: &Path,
) -> Result<(MappedCsr, ShardedStats, NormFrame), StoreError> {
    if sharding.shard_rows == 0 {
        return Err(StoreError::Format("shard_rows must be at least 1".into()));
    }
    std::fs::create_dir_all(&sharding.spill_dir)?;

    // ---- Score phase: shard, positivity-filter, fold bounds, spill. ----
    let acct = ConstructionCounters::default();
    let mut state = SpillState::new();
    if sharding.pipelined {
        // Rendezvous handoff: the scorer blocks until the spill thread
        // takes the shard, so at most two shards are ever in flight.
        std::thread::scope(|scope| {
            let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, Vec<Vec<Triple>>, usize)>(0);
            let state_ref = &mut state;
            let acct_ref = &acct;
            let worker = scope.spawn(move || {
                while let Ok((shard, bufs, resident)) = rx.recv() {
                    state_ref.spill_shard(
                        shard,
                        bufs,
                        resident,
                        cfg.keep_positive_only,
                        &sharding.spill_dir,
                        acct_ref,
                    );
                }
            });
            score_topk_sharded(
                left,
                right,
                function,
                k,
                mode == CandidateMode::Indexed,
                cfg,
                sharding.shard_rows,
                &acct,
                |shard, bufs| {
                    let resident: usize = bufs.iter().map(Vec::len).sum();
                    let _ = tx.send((shard, bufs, resident));
                },
            );
            drop(tx);
            worker.join().expect("spill worker panicked");
        });
    } else {
        score_topk_sharded(
            left,
            right,
            function,
            k,
            mode == CandidateMode::Indexed,
            cfg,
            sharding.shard_rows,
            &acct,
            |shard, bufs| {
                let resident: usize = bufs.iter().map(Vec::len).sum();
                state.spill_shard(
                    shard,
                    bufs,
                    resident,
                    cfg.keep_positive_only,
                    &sharding.spill_dir,
                    &acct,
                );
            },
        );
    }
    let cleanup = |paths: &[PathBuf]| {
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    };
    let SpillState {
        spills,
        lo,
        hi,
        spilled_triples,
        err,
    } = state;
    if let Some(e) = err {
        cleanup(&spills);
        return Err(e);
    }
    let frame = NormFrame::from_bounds(lo, hi);

    // ---- Merge phase: by row ranges into the on-disk v2 store. ----
    let n_left = left.len() as u32;
    let n_right = right.len() as u32;
    let budget_factor = if sharding.pipelined { 2 } else { 1 };
    let resident_budget = sharding
        .shard_rows
        .saturating_mul(k)
        .saturating_mul(budget_factor);
    let workers = match sharding.merge_threads {
        0 => cfg.effective_threads(),
        n => n,
    }
    .min(spills.len())
    .max(1);
    let merged = (|| -> Result<(StoreMeta, Vec<PathBuf>), StoreError> {
        let mut sink = StoreSink::new(
            out_path,
            n_left,
            n_right,
            &sharding.spill_dir,
            resident_budget,
        )?;
        let mut temp_paths = Vec::new();
        if workers <= 1 {
            merge_serial(&spills, frame, &mut sink, n_left)?;
        } else {
            temp_paths = merge_parallel(
                &spills,
                frame,
                &mut sink,
                sharding.shard_rows,
                n_left,
                workers,
                &sharding.spill_dir,
            )?;
        }
        let (meta, run_paths) = sink.finish()?;
        temp_paths.extend(run_paths);
        Ok((meta, temp_paths))
    })();
    cleanup(&spills);
    let (meta, temp_paths) = merged?;
    cleanup(&temp_paths);
    acct.add_merged_bytes(meta.file_bytes as usize);

    let mapped = MappedCsr::open(out_path)?;
    let stats = ShardedStats {
        shards: spills.len(),
        generated_pairs: acct.generated(),
        offered_edges: acct.offered(),
        retained_edges: meta.n_edges as usize,
        peak_resident_edges: acct.peak(),
        resident_budget_edges: resident_budget,
        pruned_pairs: acct.pruned(),
        scored_pairs: acct.scored(),
        spilled_triples,
        spilled_bytes: acct.spilled_bytes(),
        merged_bytes: acct.merged_bytes(),
        merge_workers: workers,
    };
    Ok((mapped, stats, frame))
}
