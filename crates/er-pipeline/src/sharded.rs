//! Out-of-core top-k graph construction: score in bounded shards, spill,
//! k-way-merge into a columnar on-disk graph.
//!
//! The in-RAM streaming build ([`build_graph_topk_mode`](crate::build_graph_topk_mode)) already bounds
//! peak memory at `O(n_left × k)` edges — but the *finished* edge set
//! still materializes as one heap-resident graph. This module removes
//! that last ceiling: [`build_graph_sharded`] partitions the left rows
//! into contiguous ranges of [`ShardedConfig::shard_rows`], runs the
//! existing bound-driven top-k engine (indexed candidate generation and
//! all) one shard at a time against a scorer **prepared once over the
//! full collections**, spills each finished shard's raw triples to a
//! slab file, and externally merges the spills into one on-disk
//! [`MappedCsr`] store. Peak resident edges drop to one shard's
//! `shard_rows × k` (plus `O(k + n_shards)` merge buffers that never
//! touch the resident counter) — the corpus's dense edge set, and even
//! its pruned top-k edge set, never needs to fit in RAM.
//!
//! # Bit-identity with the in-RAM path
//!
//! The result is **bit-identical** to
//! `CsrGraph::from_graph(&build_graph_topk_mode(…).0)`, argued in three
//! steps (property-proven per taxonomy branch, thread count and shard
//! size in `tests/sharded_props.rs`):
//!
//! 1. **Scores.** The scorer — DF statistics, inverted indexes, encoded
//!    vectors, candidate indexes — is prepared once over the *full*
//!    collections, exactly as the in-RAM build prepares it; per-row
//!    top-k selection is row-local; and row ranges are scored in
//!    ascending order. Concatenating the shard outputs therefore
//!    reproduces the in-RAM score phase's triple stream bit for bit
//!    (see `graphgen::score_topk_sharded`).
//! 2. **Frame.** The positivity filter is applied per shard before
//!    spilling — the same per-triple predicate the in-RAM finalize
//!    applies — and the normalization frame is folded from per-shard
//!    `(min, max)` bounds. Min/max folding is order- and
//!    grouping-independent, so the frame equals the in-RAM
//!    `NormFrame::compute` over the concatenated retained triples.
//! 3. **Merge.** Each spilled record's raw weight is mapped through
//!    that frame at merge time — the identical `f64` operations the
//!    in-RAM finalize applies — and rows are written right-ascending,
//!    which is exactly the canonical order `CsrGraph::from_graph`
//!    produces. Same edges, same weights, same layout.
//!
//! DESIGN.md §18 spells the argument out against the on-disk format.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use er_core::{ConstructionCounters, MappedCsr, SlabWriter, StoreError};
use er_datasets::EntityCollection;

use crate::candidates::CandidateMode;
use crate::config::PipelineConfig;
use crate::graphgen::{score_topk_sharded, NormFrame};
use crate::taxonomy::SimilarityFunction;

/// Bytes of one spill record: `(left u32, right u32, raw weight f64)`.
const SPILL_RECORD: usize = 16;

/// Shape of one out-of-core build.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Scorer rows per shard — the resident-memory knob: peak resident
    /// edges are at most `shard_rows × k`.
    pub shard_rows: usize,
    /// Directory for the per-shard spill files (created if missing,
    /// spills deleted after the merge).
    pub spill_dir: PathBuf,
}

impl ShardedConfig {
    /// A config spilling to `spill_dir` with `shard_rows` rows per shard.
    pub fn new(shard_rows: usize, spill_dir: impl Into<PathBuf>) -> Self {
        ShardedConfig {
            shard_rows,
            spill_dir: spill_dir.into(),
        }
    }
}

/// Accounting of one out-of-core build — the construction-flow counters
/// of the in-RAM [`TopKStats`](crate::TopKStats) plus the spill/merge
/// volumes that replace resident memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedStats {
    /// Shards scored and spilled.
    pub shards: usize,
    /// Candidate pairs materialized and handed to a measure.
    pub generated_pairs: usize,
    /// Triples the scorers emitted into the bounded sinks.
    pub offered_edges: usize,
    /// Edges in the finished on-disk graph.
    pub retained_edges: usize,
    /// Maximum triples resident at once — bounded row heaps plus the
    /// *current* shard's buffers only, since each spilled shard releases
    /// its count. At most [`Self::resident_budget_edges`].
    pub peak_resident_edges: usize,
    /// The configured resident ceiling: `shard_rows × k` (saturating).
    pub resident_budget_edges: usize,
    /// Candidate pairs skipped via exact upper bounds before scoring.
    pub pruned_pairs: usize,
    /// Candidate pairs fully scored.
    pub scored_pairs: usize,
    /// Positivity-filtered triples written to spill files.
    pub spilled_triples: usize,
    /// Bytes written to spill files.
    pub spilled_bytes: usize,
    /// Bytes of the merged on-disk graph (the final store file).
    pub merged_bytes: usize,
}

/// One spill file being merged: a buffered reader plus the decoded
/// look-ahead record — the only triple of the shard resident during the
/// merge.
struct SpillReader {
    rd: BufReader<File>,
    next: Option<(u32, u32, f64)>,
}

impl SpillReader {
    fn open(path: &Path) -> Result<SpillReader, StoreError> {
        let mut reader = SpillReader {
            rd: BufReader::new(File::open(path)?),
            next: None,
        };
        reader.advance()?;
        Ok(reader)
    }

    fn advance(&mut self) -> Result<(), StoreError> {
        let mut buf = [0u8; SPILL_RECORD];
        let mut at = 0;
        while at < SPILL_RECORD {
            let n = self.rd.read(&mut buf[at..])?;
            if n == 0 {
                break;
            }
            at += n;
        }
        self.next = match at {
            0 => None,
            SPILL_RECORD => Some((
                u32::from_le_bytes(buf[0..4].try_into().unwrap()),
                u32::from_le_bytes(buf[4..8].try_into().unwrap()),
                f64::from_le_bytes(buf[8..16].try_into().unwrap()),
            )),
            _ => return Err(StoreError::Format("truncated spill record".into())),
        };
        Ok(())
    }
}

/// Build the top-k graph of `function` **out of core**: bounded shards
/// through the streaming engine, spill files, one external merge into a
/// columnar on-disk store at `out_path` — opened and returned as a
/// file-backed [`MappedCsr`] view, bit-identical to what the in-RAM
/// [`build_graph_topk_mode`](crate::build_graph_topk_mode) path would have produced (see the module
/// docs for the argument), with the frame and the spill/merge
/// accounting alongside.
///
/// ```
/// use er_datasets::{Dataset, DatasetId};
/// use er_pipeline::{
///     build_graph_sharded, build_graph_topk_mode, CandidateMode, PipelineConfig, ShardedConfig,
/// };
/// use er_pipeline::SimilarityFunction;
/// use er_textsim::{NGramScheme, VectorMeasure};
///
/// let d = Dataset::generate(DatasetId::D1, 0.02, 7);
/// let f = SimilarityFunction::SchemaAgnosticVector {
///     scheme: NGramScheme::Token(1),
///     measure: VectorMeasure::CosineTfIdf,
/// };
/// let cfg = PipelineConfig::default();
/// let dir = std::env::temp_dir().join("ccer-sharded-doc");
/// let out = dir.join("graph.slab");
/// let (mapped, stats, _frame) = build_graph_sharded(
///     &d.left, &d.right, &f, 2, CandidateMode::Indexed, &cfg,
///     &ShardedConfig::new(8, &dir), &out,
/// ).unwrap();
///
/// // Bit-identical to the in-RAM build, resident bound respected.
/// let (g, _) = build_graph_topk_mode(&d.left, &d.right, &f, 2, CandidateMode::Indexed, &cfg);
/// assert_eq!(mapped.to_csr(), er_core::CsrGraph::from_graph(&g));
/// assert!(stats.peak_resident_edges <= stats.resident_budget_edges);
/// # std::fs::remove_file(&out).ok();
/// ```
#[allow(clippy::too_many_arguments)]
pub fn build_graph_sharded(
    left: &EntityCollection,
    right: &EntityCollection,
    function: &SimilarityFunction,
    k: usize,
    mode: CandidateMode,
    cfg: &PipelineConfig,
    sharding: &ShardedConfig,
    out_path: &Path,
) -> Result<(MappedCsr, ShardedStats, NormFrame), StoreError> {
    if sharding.shard_rows == 0 {
        return Err(StoreError::Format("shard_rows must be at least 1".into()));
    }
    std::fs::create_dir_all(&sharding.spill_dir)?;

    // ---- Score phase: shard, positivity-filter, fold bounds, spill. ----
    let acct = ConstructionCounters::default();
    let mut spills: Vec<PathBuf> = Vec::new();
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let mut spilled_triples = 0usize;
    let mut spill_err: Option<StoreError> = None;
    score_topk_sharded(
        left,
        right,
        function,
        k,
        mode == CandidateMode::Indexed,
        cfg,
        sharding.shard_rows,
        &acct,
        |shard, bufs| {
            if spill_err.is_some() {
                return;
            }
            let resident: usize = bufs.iter().map(Vec::len).sum();
            let path = sharding.spill_dir.join(format!("shard-{shard}.spill"));
            let spill = (|| -> Result<usize, StoreError> {
                let mut out = BufWriter::new(File::create(&path)?);
                let mut kept = 0usize;
                for (l, r, w) in bufs.into_iter().flatten() {
                    if cfg.keep_positive_only && w <= 0.0 {
                        continue;
                    }
                    lo = lo.min(w);
                    hi = hi.max(w);
                    out.write_all(&l.to_le_bytes())?;
                    out.write_all(&r.to_le_bytes())?;
                    out.write_all(&w.to_le_bytes())?;
                    kept += 1;
                }
                out.flush()?;
                Ok(kept)
            })();
            spills.push(path);
            match spill {
                Ok(kept) => {
                    spilled_triples += kept;
                    acct.add_spilled_bytes(kept * SPILL_RECORD);
                    // The shard's buffers are dropped here: release their
                    // resident count so the peak tracks one shard, not
                    // the cumulative total.
                    acct.sub_resident(resident);
                }
                Err(e) => spill_err = Some(e),
            }
        },
    );
    let cleanup = |spills: &[PathBuf]| {
        for p in spills {
            std::fs::remove_file(p).ok();
        }
    };
    if let Some(e) = spill_err {
        cleanup(&spills);
        return Err(e);
    }
    let frame = NormFrame::from_bounds(lo, hi);

    // ---- Merge phase: k-way merge by left id into the on-disk store. ----
    let n_left = left.len() as u32;
    let n_right = right.len() as u32;
    let merged = (|| -> Result<_, StoreError> {
        let mut readers = Vec::with_capacity(spills.len());
        for p in &spills {
            readers.push(SpillReader::open(p)?);
        }
        let mut heap: BinaryHeap<Reverse<(u32, usize)>> = readers
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.next.map(|(l, _, _)| Reverse((l, i))))
            .collect();
        let mut writer = SlabWriter::create(out_path, n_left, n_right, Vec::new())?;
        let mut row: Vec<(u32, f64)> = Vec::new();
        for l in 0..n_left {
            row.clear();
            while let Some(&Reverse((rl, idx))) = heap.peek() {
                if rl != l {
                    break;
                }
                heap.pop();
                while let Some((el, er, ew)) = readers[idx].next {
                    if el != l {
                        break;
                    }
                    row.push((er, frame.apply(ew)));
                    readers[idx].advance()?;
                }
                if let Some((el, _, _)) = readers[idx].next {
                    heap.push(Reverse((el, idx)));
                }
            }
            // Shard rows drain weight-descending; the store's canonical
            // row order is right-ascending, same as CsrGraph::from_graph.
            row.sort_unstable_by_key(|&(r, _)| r);
            writer.append_row(&row)?;
        }
        if !heap.is_empty() {
            return Err(StoreError::Format(
                "spill records outside the left id space".into(),
            ));
        }
        writer.finish()
    })();
    cleanup(&spills);
    let meta = merged?;
    acct.add_merged_bytes(meta.file_bytes as usize);

    let mapped = MappedCsr::open(out_path)?;
    let stats = ShardedStats {
        shards: spills.len(),
        generated_pairs: acct.generated(),
        offered_edges: acct.offered(),
        retained_edges: meta.n_edges as usize,
        peak_resident_edges: acct.peak(),
        resident_budget_edges: sharding.shard_rows.saturating_mul(k),
        pruned_pairs: acct.pruned(),
        scored_pairs: acct.scored(),
        spilled_triples,
        spilled_bytes: acct.spilled_bytes(),
        merged_bytes: acct.merged_bytes(),
    };
    Ok((mapped, stats, frame))
}
