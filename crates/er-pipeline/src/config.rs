//! Pipeline configuration.

use serde::Serialize;

/// Which kernel set the scoring engine runs.
///
/// Both modes produce **bit-identical** graphs for every branch of the
/// taxonomy, every candidate mode and every thread count — the lane
/// kernels replicate the scalar float/integer operation sequences per
/// lane (see `er_textsim::lanes` / `er_embed::lanes` and DESIGN.md §19;
/// property-proven in `tests/kernel_props.rs` and
/// `tests/graphgen_props.rs`). What changes is throughput: lanes
/// advance up to eight candidates per kernel step, turning the serial
/// per-candidate dependency chains into independent lanes the core can
/// overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum KernelMode {
    /// One-candidate-at-a-time kernels (the PR 5–8 engine).
    Scalar,
    /// Lane-parallel batch kernels: multi-text Myers, batched
    /// length/counting-filter screens, lane-parallel dense dot/cosine
    /// and batched WMD token distances. The default — strictly more
    /// work per step at identical results.
    #[default]
    Lanes,
}

/// Knobs for graph generation.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineConfig {
    /// Cap on token-bag size for schema-agnostic Word Mover's similarity.
    ///
    /// Relaxed WMD is quadratic in bag size; whole-profile texts can carry
    /// dozens of tokens. Capping at the first `wmd_token_cap` tokens bounds
    /// the cost while preserving the measure's character (documented
    /// substitution; schema-based values stay uncapped in practice as they
    /// are short).
    pub wmd_token_cap: usize,
    /// Drop edges with weight ≤ 0 before normalization (the paper keeps
    /// "all pairs of entities … with a similarity higher than 0").
    pub keep_positive_only: bool,
    /// Number of worker threads (0 = all cores). Governs both the corpus
    /// runner's across-graph fan-out and the construction engine's
    /// within-graph left-row sharding; the runner divides its budget so
    /// the two never multiply (see `runner::generate_corpus`).
    pub threads: usize,
    /// Left rows per work chunk of the parallel construction engine
    /// (0 = auto). Chunks are contiguous row ranges claimed by workers
    /// through an atomic cursor and merged back in chunk order, so the
    /// chunk size affects load balancing only — never results.
    pub chunk_rows: usize,
    /// Which kernel set scores candidates. Both settings build
    /// bit-identical graphs; [`KernelMode::Lanes`] (the default) batches
    /// up to eight candidates per kernel step.
    pub kernel_mode: KernelMode,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            wmd_token_cap: 16,
            keep_positive_only: true,
            threads: 0,
            chunk_rows: 0,
            kernel_mode: KernelMode::default(),
        }
    }
}

impl PipelineConfig {
    /// Effective worker count.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// The config an outer fan-out (corpus runner, repro harness) hands
    /// to each of its `workers` per-graph builds: the thread budget is
    /// **divided**, `⌊T / workers⌋` (at least 1) intra-graph threads, so
    /// nested fan-outs never multiply into `T × T` threads.
    pub fn divided_among(&self, workers: usize) -> PipelineConfig {
        PipelineConfig {
            threads: (self.effective_threads() / workers.max(1)).max(1),
            ..self.clone()
        }
    }

    /// Effective rows per construction chunk for a graph with `n_rows`
    /// left rows scored by `threads` workers. Auto mode (0) targets ~8
    /// chunks per worker so a slow chunk (skewed profile lengths) cannot
    /// idle the rest of the pool.
    pub fn effective_chunk_rows(&self, n_rows: usize, threads: usize) -> usize {
        if self.chunk_rows > 0 {
            self.chunk_rows
        } else {
            n_rows.div_ceil(threads.max(1) * 8).max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = PipelineConfig::default();
        assert!(c.wmd_token_cap >= 8);
        assert!(c.keep_positive_only);
        assert!(c.effective_threads() >= 1);
        let c2 = PipelineConfig {
            threads: 3,
            ..PipelineConfig::default()
        };
        assert_eq!(c2.effective_threads(), 3);
    }

    #[test]
    fn divided_among_splits_without_multiplying() {
        let c = PipelineConfig {
            threads: 8,
            ..PipelineConfig::default()
        };
        assert_eq!(c.divided_among(4).effective_threads(), 2);
        assert_eq!(c.divided_among(8).effective_threads(), 1);
        assert_eq!(c.divided_among(100).effective_threads(), 1, "floors at 1");
        assert_eq!(
            c.divided_among(0).effective_threads(),
            8,
            "0 workers → whole budget"
        );
        assert_eq!(c.divided_among(1).effective_threads(), 8);
    }

    #[test]
    fn chunk_rows_auto_and_explicit() {
        let auto = PipelineConfig::default();
        // 100 rows over 4 workers → ceil(100/32) = 4 rows per chunk.
        assert_eq!(auto.effective_chunk_rows(100, 4), 4);
        // Tiny inputs never produce zero-sized chunks.
        assert_eq!(auto.effective_chunk_rows(1, 8), 1);
        assert_eq!(auto.effective_chunk_rows(0, 4), 1);
        let explicit = PipelineConfig {
            chunk_rows: 7,
            ..PipelineConfig::default()
        };
        assert_eq!(explicit.effective_chunk_rows(100, 4), 7);
    }
}
