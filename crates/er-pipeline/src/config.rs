//! Pipeline configuration.

use serde::Serialize;

/// Knobs for graph generation.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineConfig {
    /// Cap on token-bag size for schema-agnostic Word Mover's similarity.
    ///
    /// Relaxed WMD is quadratic in bag size; whole-profile texts can carry
    /// dozens of tokens. Capping at the first `wmd_token_cap` tokens bounds
    /// the cost while preserving the measure's character (documented
    /// substitution; schema-based values stay uncapped in practice as they
    /// are short).
    pub wmd_token_cap: usize,
    /// Drop edges with weight ≤ 0 before normalization (the paper keeps
    /// "all pairs of entities … with a similarity higher than 0").
    pub keep_positive_only: bool,
    /// Number of worker threads for corpus generation (0 = all cores).
    pub threads: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            wmd_token_cap: 16,
            keep_positive_only: true,
            threads: 0,
        }
    }
}

impl PipelineConfig {
    /// Effective worker count.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = PipelineConfig::default();
        assert!(c.wmd_token_cap >= 8);
        assert!(c.keep_positive_only);
        assert!(c.effective_threads() >= 1);
        let c2 = PipelineConfig {
            threads: 3,
            ..PipelineConfig::default()
        };
        assert_eq!(c2.effective_threads(), 3);
    }
}
