#![warn(missing_docs)]

//! # er-pipeline — similarity graph generation
//!
//! Turns a CCER [`Dataset`](er_datasets::Dataset) into the similarity
//! graphs that feed the matching algorithms, exactly as §4/§5 of the paper
//! prescribe:
//!
//! * the full **taxonomy** of learning-free similarity functions
//!   ([`taxonomy`]): 16 schema-based syntactic measures per focus
//!   attribute, 60 schema-agnostic syntactic functions (36 n-gram vector +
//!   24 n-gram graph), and the semantic functions (fastText/ALBERT ×
//!   cosine/Euclidean/Word-Mover's, schema-based and schema-agnostic);
//! * **no blocking**: every entity pair with similarity above 0 becomes an
//!   edge; set/bag measures use exact inverted-index candidate generation
//!   (a pair shares a term iff its similarity is positive), edit-distance
//!   and semantic measures score all pairs;
//! * **min-max normalization** of every graph's weights with a `0.0`
//!   floor (non-negative measures map onto `(0, 1]`);
//! * the paper's first **cleaning rule** (drop graphs whose true matches
//!   all have zero weight) — the F1-dependent rules 2-3 live in `er-eval`,
//!   as they need algorithm sweeps;
//! * a **parallel construction engine** ([`graphgen`]): per-graph
//!   left-row sharding over scoped workers with bit-identical results to
//!   the serial path, a candidate-restricted fast path
//!   ([`build_graph_restricted`]) for blocking-first pipelines, a
//!   **streaming top-k path** ([`build_graph_topk`]) that bounds peak
//!   memory at `O(n_left × k)` edges by pruning during the score phase,
//!   and a prepared output ([`build_prepared`]) whose emit-time sorted
//!   edge view is shared with threshold sweeps (one sort across
//!   construction and matching);
//! * **index-driven candidate generation** ([`candidates`]): the top-k
//!   path can generate candidates from per-branch indexes (prefix-filtered
//!   postings, length buckets with counting filters, centroid balls)
//!   under the sink's admission bound — [`build_graph_topk_mode`] with
//!   [`CandidateMode::Indexed`] — so ruled-out pairs are never
//!   materialized while graphs stay bit-identical to enumeration;
//! * an **out-of-core build** ([`sharded`]): [`build_graph_sharded`]
//!   scores bounded left-row shards through the same engine, spills each
//!   finished shard, and externally merges the spills into a columnar
//!   on-disk store (`er_core::store`) read back as a file-backed
//!   `MappedCsr` — peak resident edges drop to one shard's
//!   `shard_rows × k` while the result stays bit-identical to the in-RAM
//!   top-k build;
//! * a crossbeam-parallel [`runner`] that generates a dataset's whole
//!   graph corpus, dividing its thread budget with the per-graph engine.

pub mod blocking;
pub mod candidates;
pub mod cleaning;
pub mod config;
pub mod graphgen;
pub mod resident;
pub mod runner;
pub mod sharded;
pub mod taxonomy;

pub use blocking::{
    blocking_quality, restrict_graph, token_blocking, Block, BlockCollection, BlockingQuality,
};
pub use candidates::CandidateMode;
pub use cleaning::{clean_graphs, CleaningOutcome};
pub use config::{KernelMode, PipelineConfig};
pub use graphgen::{
    build_graph, build_graph_over, build_graph_restricted, build_graph_topk,
    build_graph_topk_framed, build_graph_topk_mode, build_graph_topk_over,
    build_graph_topk_restricted, build_graph_topk_stats, build_prepared, build_prepared_over,
    BuiltGraph, GeneratedGraph, NormFrame, TopKStats,
};
pub use resident::ResidentScorer;
pub use runner::generate_corpus;
pub use sharded::{build_graph_sharded, ShardedConfig, ShardedStats};
pub use taxonomy::{SemanticScope, SimilarityFunction, WeightType};
