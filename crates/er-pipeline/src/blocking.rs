//! Blocking — step (i) of the CCER pipeline.
//!
//! §2 of the paper: "a typical CCER pipeline involves the steps of
//! (i) (meta-)blocking, i.e., indexing steps that generate candidate
//! matching pairs, this way reducing the otherwise quadratic search space
//! of matches, (ii) matching, … and (iii) bipartite graph matching". The
//! paper's evaluation deliberately skips this step ("we do not apply any
//! blocking method when producing these inputs"), letting the similarity
//! threshold play its role; a production pipeline, however, cannot score
//! `|V1|·|V2|` pairs. This module provides the standard learning-free
//! block-building stack from the blocking survey the paper builds on:
//!
//! * **Token blocking** — one block per normalized token occurring on
//!   both sides; redundancy-positive and schema-agnostic.
//! * **Block purging** — drop oversized blocks (stop-word keys) whose
//!   comparison count exceeds a cap.
//! * **Block filtering** — keep each entity only in its `⌈r·|Bₑ|⌉`
//!   smallest blocks, shrinking the comparison set around every entity.
//!
//! plus the standard blocking quality measures (pairs completeness, pairs
//! quality, reduction ratio) and [`restrict_graph`], which turns a scored
//! similarity graph into its blocked counterpart so the effect of
//! blocking on the *matching algorithms* can be isolated.

use er_core::{FxHashMap, FxHashSet, GraphBuilder, GroundTruth, SimilarityGraph};
use er_datasets::EntityCollection;
use er_textsim::tokenize::{normalize_text, tokens};

/// One block: the entities of each collection sharing a blocking key.
#[derive(Debug, Clone)]
pub struct Block {
    /// The blocking key (a normalized token).
    pub key: String,
    /// Entity ids from `V1`.
    pub left: Vec<u32>,
    /// Entity ids from `V2`.
    pub right: Vec<u32>,
}

impl Block {
    /// Cross-source comparisons this block suggests.
    #[inline]
    pub fn comparisons(&self) -> u64 {
        self.left.len() as u64 * self.right.len() as u64
    }

    /// Total entities in the block.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.left.len() + self.right.len()
    }
}

/// A set of blocks over two clean collections.
#[derive(Debug, Clone)]
pub struct BlockCollection {
    blocks: Vec<Block>,
    n_left: u32,
    n_right: u32,
}

impl BlockCollection {
    /// The blocks, sorted by key.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total suggested comparisons, counting a pair once per shared block
    /// (the raw, redundancy-positive aggregate).
    pub fn total_comparisons(&self) -> u64 {
        self.blocks.iter().map(Block::comparisons).sum()
    }

    /// **Block purging**: drop every block whose comparison count exceeds
    /// `max_comparisons`. Oversized blocks stem from stop-word-like keys
    /// and contribute quadratically many, mostly useless comparisons.
    pub fn purge(mut self, max_comparisons: u64) -> Self {
        self.blocks.retain(|b| b.comparisons() <= max_comparisons);
        self
    }

    /// **Block filtering**: keep each entity only in the `⌈ratio·|Bₑ|⌉`
    /// smallest (by cardinality) of its blocks; a comparison survives only
    /// if *both* entities keep the block. `ratio` must lie in `(0, 1]`
    /// (values above 1 are clamped down); `1.0` is a no-op.
    ///
    /// # Panics
    ///
    /// Panics on `ratio <= 0.0` or NaN. A non-positive ratio has no
    /// meaningful reading — the old behaviour silently clamped it to
    /// `f64::MIN_POSITIVE`, turning an invalid argument into a near-zero
    /// filter that kept exactly one block per entity.
    pub fn filter(self, ratio: f64) -> Self {
        assert!(
            ratio > 0.0,
            "block-filtering ratio must be positive, got {ratio}"
        );
        let ratio = ratio.min(1.0);
        if ratio >= 1.0 {
            return self;
        }
        // Rank blocks by cardinality (ties: key order — blocks are sorted).
        let order: Vec<usize> = {
            let mut idx: Vec<usize> = (0..self.blocks.len()).collect();
            idx.sort_by_key(|&i| self.blocks[i].cardinality());
            let mut rank = vec![0usize; self.blocks.len()];
            for (pos, &i) in idx.iter().enumerate() {
                rank[i] = pos;
            }
            rank
        };

        // Per-entity block lists (indices into self.blocks).
        let mut left_blocks: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
        let mut right_blocks: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
        for (i, b) in self.blocks.iter().enumerate() {
            for &l in &b.left {
                left_blocks.entry(l).or_default().push(i);
            }
            for &r in &b.right {
                right_blocks.entry(r).or_default().push(i);
            }
        }

        let keep = |blocks: &mut FxHashMap<u32, Vec<usize>>| -> FxHashMap<u32, FxHashSet<usize>> {
            let mut kept = FxHashMap::default();
            for (&e, list) in blocks.iter_mut() {
                list.sort_by_key(|&i| order[i]);
                let k = ((ratio * list.len() as f64).ceil() as usize).max(1);
                kept.insert(e, list.iter().copied().take(k).collect());
            }
            kept
        };
        let left_kept = keep(&mut left_blocks);
        let right_kept = keep(&mut right_blocks);

        let blocks = self
            .blocks
            .into_iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let left: Vec<u32> = b
                    .left
                    .iter()
                    .copied()
                    .filter(|l| left_kept.get(l).is_some_and(|s| s.contains(&i)))
                    .collect();
                let right: Vec<u32> = b
                    .right
                    .iter()
                    .copied()
                    .filter(|r| right_kept.get(r).is_some_and(|s| s.contains(&i)))
                    .collect();
                if left.is_empty() || right.is_empty() {
                    None
                } else {
                    Some(Block {
                        key: b.key,
                        left,
                        right,
                    })
                }
            })
            .collect();
        BlockCollection {
            blocks,
            n_left: self.n_left,
            n_right: self.n_right,
        }
    }

    /// The deduplicated candidate pairs all blocks suggest.
    pub fn candidate_pairs(&self) -> FxHashSet<(u32, u32)> {
        let mut out = FxHashSet::default();
        for b in &self.blocks {
            for &l in &b.left {
                for &r in &b.right {
                    out.insert((l, r));
                }
            }
        }
        out
    }
}

/// Schema-agnostic token blocking: every normalized token appearing in any
/// attribute value is a blocking key; blocks that touch only one side are
/// dropped (they suggest no cross-source comparison).
pub fn token_blocking(left: &EntityCollection, right: &EntityCollection) -> BlockCollection {
    let mut index: FxHashMap<String, (Vec<u32>, Vec<u32>)> = FxHashMap::default();
    let mut insert = |side: usize, id: u32, profile: &er_datasets::EntityProfile| {
        let mut seen: FxHashSet<String> = FxHashSet::default();
        for value in profile.values() {
            for tok in tokens(&normalize_text(value)) {
                if seen.insert(tok.to_string()) {
                    let entry = index.entry(tok.to_string()).or_default();
                    if side == 0 {
                        entry.0.push(id);
                    } else {
                        entry.1.push(id);
                    }
                }
            }
        }
    };
    for (id, p) in left.profiles.iter().enumerate() {
        insert(0, id as u32, p);
    }
    for (id, p) in right.profiles.iter().enumerate() {
        insert(1, id as u32, p);
    }

    let mut blocks: Vec<Block> = index
        .into_iter()
        .filter(|(_, (l, r))| !l.is_empty() && !r.is_empty())
        .map(|(key, (left, right))| Block { key, left, right })
        .collect();
    blocks.sort_by(|a, b| a.key.cmp(&b.key));
    BlockCollection {
        blocks,
        n_left: left.len() as u32,
        n_right: right.len() as u32,
    }
}

/// The standard blocking quality measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingQuality {
    /// Pairs completeness: recall of the candidate set over the ground
    /// truth (1 when there are no true pairs).
    pub pairs_completeness: f64,
    /// Pairs quality: precision of the candidate set (1 when empty).
    pub pairs_quality: f64,
    /// Reduction ratio: `1 − |candidates| / (|V1|·|V2|)`.
    pub reduction_ratio: f64,
    /// Candidate pair count.
    pub n_candidates: u64,
}

/// Score a candidate set against the ground truth.
pub fn blocking_quality(
    candidates: &FxHashSet<(u32, u32)>,
    gt: &GroundTruth,
    n_left: u32,
    n_right: u32,
) -> BlockingQuality {
    let hits = gt
        .pairs()
        .iter()
        .filter(|&&(l, r)| candidates.contains(&(l, r)))
        .count() as u64;
    let n_candidates = candidates.len() as u64;
    let total = n_left as u64 * n_right as u64;
    BlockingQuality {
        pairs_completeness: if gt.is_empty() {
            1.0
        } else {
            hits as f64 / gt.len() as f64
        },
        pairs_quality: if n_candidates == 0 {
            1.0
        } else {
            hits as f64 / n_candidates as f64
        },
        reduction_ratio: if total == 0 {
            0.0
        } else {
            1.0 - n_candidates as f64 / total as f64
        },
        n_candidates,
    }
}

/// Restrict a scored similarity graph to the blocked candidate pairs,
/// keeping the full graph's normalized weights — the tool for isolating
/// blocking's effect on the *matching algorithms* over identical weights.
///
/// A production pipeline that blocks **before** scoring should use
/// [`crate::graphgen::build_graph_restricted`] instead: it scores only the
/// candidate pairs (instead of building the full graph and discarding most
/// of it) and normalizes over the restricted score set.
pub fn restrict_graph(g: &SimilarityGraph, candidates: &FxHashSet<(u32, u32)>) -> SimilarityGraph {
    let mut b = GraphBuilder::with_capacity(g.n_left(), g.n_right(), candidates.len());
    for e in g.edges() {
        if candidates.contains(&(e.left, e.right)) {
            b.add_edge(e.left, e.right, e.weight)
                .expect("edges of a valid graph remain valid");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datasets::EntityProfile;

    fn collection(texts: &[&str]) -> EntityCollection {
        EntityCollection {
            profiles: texts
                .iter()
                .enumerate()
                .map(|(i, t)| EntityProfile::new(i as u32, vec![("name".into(), (*t).into())]))
                .collect(),
            attribute_names: vec!["name".into()],
        }
    }

    fn sample() -> (EntityCollection, EntityCollection) {
        (
            collection(&["apple iphone pro", "samsung galaxy", "nokia brick"]),
            collection(&["iphone pro max", "galaxy ultra", "sony xperia"]),
        )
    }

    #[test]
    fn token_blocking_builds_cross_blocks_only() {
        let (l, r) = sample();
        let bc = token_blocking(&l, &r);
        let keys: Vec<&str> = bc.blocks().iter().map(|b| b.key.as_str()).collect();
        // "iphone", "pro", "galaxy" co-occur; "apple", "nokia", "sony" etc.
        // appear on one side only and yield no block.
        assert_eq!(keys, vec!["galaxy", "iphone", "pro"]);
        assert_eq!(bc.n_blocks(), 3);
        let cands = bc.candidate_pairs();
        assert!(cands.contains(&(0, 0)), "iphone pair");
        assert!(cands.contains(&(1, 1)), "galaxy pair");
        assert!(!cands.contains(&(2, 2)), "nokia-sony never co-blocked");
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn duplicate_tokens_in_one_entity_count_once() {
        let l = collection(&["pro pro pro"]);
        let r = collection(&["pro"]);
        let bc = token_blocking(&l, &r);
        assert_eq!(bc.n_blocks(), 1);
        assert_eq!(bc.blocks()[0].left, vec![0]);
        assert_eq!(bc.total_comparisons(), 1);
    }

    #[test]
    fn purging_drops_oversized_blocks() {
        let l = collection(&["the alpha", "the beta", "the gamma"]);
        let r = collection(&["the alpha", "the delta"]);
        let bc = token_blocking(&l, &r);
        // "the" suggests 3·2 = 6 comparisons, "alpha" 1.
        assert_eq!(bc.total_comparisons(), 7);
        let purged = bc.purge(5);
        assert_eq!(purged.n_blocks(), 1);
        assert_eq!(purged.blocks()[0].key, "alpha");
        assert_eq!(purged.candidate_pairs().len(), 1);
    }

    #[test]
    fn purging_keeps_blocks_at_the_cap() {
        let l = collection(&["x y"]);
        let r = collection(&["x y"]);
        let bc = token_blocking(&l, &r).purge(1);
        assert_eq!(bc.n_blocks(), 2, "blocks exactly at the cap survive");
    }

    #[test]
    fn filtering_keeps_smallest_blocks_per_entity() {
        // Entity l0 is in blocks "a" (small) and "stop" (big); ratio 0.5
        // keeps only its smallest block.
        let l = collection(&["a stop", "stop", "stop"]);
        let r = collection(&["a stop", "stop"]);
        let bc = token_blocking(&l, &r);
        assert_eq!(bc.n_blocks(), 2);
        let filtered = bc.filter(0.5);
        // l0/r0 keep "a" (cardinality 2 < 5); the pure-"stop" entities keep
        // "stop" (their only block), so "stop" survives with fewer members.
        let cands = filtered.candidate_pairs();
        assert!(cands.contains(&(0, 0)), "kept via block 'a'");
        assert!(cands.contains(&(1, 1)) && cands.contains(&(2, 1)));
        assert!(
            !cands.contains(&(0, 1)),
            "l0 dropped 'stop', so the l0-r1 comparison disappears"
        );
    }

    #[test]
    fn filter_ratio_one_is_a_noop() {
        let (l, r) = sample();
        let bc = token_blocking(&l, &r);
        let before = bc.candidate_pairs();
        let after = bc.filter(1.0).candidate_pairs();
        assert_eq!(before, after);
    }

    #[test]
    fn filter_ratio_above_one_clamps_to_noop() {
        let (l, r) = sample();
        let bc = token_blocking(&l, &r);
        let before = bc.candidate_pairs();
        assert_eq!(bc.filter(1.5).candidate_pairs(), before);
    }

    #[test]
    #[should_panic(expected = "ratio must be positive")]
    fn filter_rejects_zero_ratio() {
        let (l, r) = sample();
        token_blocking(&l, &r).filter(0.0);
    }

    #[test]
    #[should_panic(expected = "ratio must be positive")]
    fn filter_rejects_negative_ratio() {
        let (l, r) = sample();
        token_blocking(&l, &r).filter(-0.5);
    }

    #[test]
    #[should_panic(expected = "ratio must be positive")]
    fn filter_rejects_nan_ratio() {
        let (l, r) = sample();
        token_blocking(&l, &r).filter(f64::NAN);
    }

    #[test]
    fn quality_measures() {
        let (l, r) = sample();
        let bc = token_blocking(&l, &r);
        let gt = GroundTruth::new(vec![(0, 0), (1, 1), (2, 2)]);
        let q = blocking_quality(&bc.candidate_pairs(), &gt, 3, 3);
        // 2 of 3 true pairs covered by 2 candidates out of 9 possible.
        assert!((q.pairs_completeness - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.pairs_quality - 1.0).abs() < 1e-12);
        assert!((q.reduction_ratio - (1.0 - 2.0 / 9.0)).abs() < 1e-12);
        assert_eq!(q.n_candidates, 2);
    }

    #[test]
    fn quality_degenerate_cases() {
        let empty = FxHashSet::default();
        let gt = GroundTruth::new(vec![]);
        let q = blocking_quality(&empty, &gt, 0, 0);
        assert_eq!(q.pairs_completeness, 1.0);
        assert_eq!(q.pairs_quality, 1.0);
        assert_eq!(q.reduction_ratio, 0.0);
    }

    #[test]
    fn restrict_graph_keeps_only_candidates() {
        let mut b = er_core::GraphBuilder::new(2, 2);
        b.add_edge(0, 0, 0.9).unwrap();
        b.add_edge(0, 1, 0.8).unwrap();
        b.add_edge(1, 1, 0.7).unwrap();
        let g = b.build();
        let mut cands = FxHashSet::default();
        cands.insert((0, 0));
        cands.insert((1, 1));
        cands.insert((1, 0)); // candidate without a scored edge: fine
        let rg = restrict_graph(&g, &cands);
        assert_eq!(rg.n_edges(), 2);
        assert_eq!(rg.weight_of(0, 0), Some(0.9));
        assert_eq!(rg.weight_of(0, 1), None);
        assert_eq!(rg.n_left(), 2);
        assert_eq!(rg.n_right(), 2);
    }
}
