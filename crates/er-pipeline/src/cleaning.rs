//! Graph-corpus cleaning (paper §5, "Generation Process").
//!
//! The paper applies three rules before analysis:
//!
//! 1. remove graphs where **all matching entities have a zero edge
//!    weight** — implemented here (needs only the graph + ground truth);
//! 2. remove noisy graphs where every algorithm's best F1 is below 0.25;
//! 3. remove duplicate inputs (same dataset, same edge count, at least two
//!    algorithms optimal at the same threshold with near-identical
//!    effectiveness).
//!
//! Rules 2–3 depend on full algorithm sweeps, so they are applied by
//! `er-eval::cleaning` on the sweep results; this module performs rule 1
//! and exposes the structural half of rule 3 (edge-count grouping).

use er_core::{GroundTruth, WeightSeparation};
use serde::Serialize;

use crate::graphgen::GeneratedGraph;

/// The outcome of structural cleaning.
#[derive(Debug, Clone, Serialize)]
pub struct CleaningOutcome {
    /// Names of graphs dropped by rule 1 (zero-weight matches).
    pub dropped_zero_matches: Vec<String>,
    /// Number of graphs retained.
    pub retained: usize,
}

/// Apply rule 1 to a generated corpus, returning the survivors.
pub fn clean_graphs(
    graphs: Vec<GeneratedGraph>,
    ground_truth: &GroundTruth,
) -> (Vec<GeneratedGraph>, CleaningOutcome) {
    let mut dropped = Vec::new();
    let mut kept = Vec::new();
    for g in graphs {
        let sep = WeightSeparation::of(&g.graph, ground_truth);
        if sep.all_matches_zero() {
            dropped.push(g.function.name());
        } else {
            kept.push(g);
        }
    }
    let outcome = CleaningOutcome {
        dropped_zero_matches: dropped,
        retained: kept.len(),
    };
    (kept, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::SimilarityFunction;
    use er_core::{Edge, SimilarityGraph};
    use er_textsim::{CharMeasure, SchemaBasedMeasure};

    fn gen_graph(edges: Vec<Edge>) -> GeneratedGraph {
        GeneratedGraph {
            function: SimilarityFunction::SchemaBasedSyntactic {
                attribute: "name".into(),
                measure: SchemaBasedMeasure::Char(CharMeasure::Levenshtein),
            },
            graph: SimilarityGraph::new(3, 3, edges).unwrap(),
        }
    }

    #[test]
    fn rule1_drops_zero_match_graphs() {
        let gt = GroundTruth::new(vec![(0, 0)]);
        let good = gen_graph(vec![Edge::new(0, 0, 0.8), Edge::new(1, 1, 0.3)]);
        let bad = gen_graph(vec![Edge::new(0, 0, 0.0), Edge::new(1, 2, 0.9)]);
        let no_match_edge = gen_graph(vec![Edge::new(2, 2, 0.9)]);
        let (kept, outcome) = clean_graphs(vec![good, bad, no_match_edge], &gt);
        assert_eq!(kept.len(), 1);
        assert_eq!(outcome.retained, 1);
        assert_eq!(outcome.dropped_zero_matches.len(), 2);
    }

    #[test]
    fn empty_corpus_is_fine() {
        let gt = GroundTruth::new(vec![]);
        let (kept, outcome) = clean_graphs(vec![], &gt);
        assert!(kept.is_empty());
        assert_eq!(outcome.retained, 0);
    }
}
