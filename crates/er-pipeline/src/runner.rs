//! Parallel corpus generation: every similarity function over one dataset.

use crossbeam::thread;
use parking_lot::Mutex;

use er_datasets::Dataset;

use crate::config::PipelineConfig;
use crate::graphgen::{build_graph, GeneratedGraph};
use crate::taxonomy::SimilarityFunction;

/// Generate the graphs of all `functions` over `dataset`, fanning work out
/// over `cfg.effective_threads()` workers. Results preserve the catalog
/// order regardless of completion order.
///
/// The thread budget is **divided**, not multiplied, with the per-graph
/// construction engine: with `T` effective threads and `W = min(T, n)`
/// corpus workers, each `build_graph` call runs with `⌊T / W⌋` (at least
/// one) intra-graph threads. Full catalogs therefore keep today's
/// one-thread-per-function layout, while a short function list (or a
/// single graph) lets construction itself use the whole budget. Results
/// are independent of either thread count.
pub fn generate_corpus(
    dataset: &Dataset,
    functions: &[SimilarityFunction],
    cfg: &PipelineConfig,
) -> Vec<GeneratedGraph> {
    let n = functions.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = cfg.effective_threads().min(n);
    let inner_cfg = cfg.divided_among(workers);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<GeneratedGraph>>> = Mutex::new((0..n).map(|_| None).collect());

    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let function = functions[idx].clone();
                let graph = build_graph(dataset, &function, &inner_cfg);
                slots.lock()[idx] = Some(GeneratedGraph { function, graph });
            });
        }
    })
    .expect("corpus generation worker panicked");

    slots
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datasets::{DatasetId, DatasetSpec};

    #[test]
    fn corpus_preserves_order_and_parallel_matches_serial() {
        let dataset = er_datasets::Dataset::generate(DatasetId::D1, 0.02, 9);
        let spec = DatasetSpec::of(DatasetId::D1);
        // Small sub-catalog to keep the test quick.
        let functions: Vec<SimilarityFunction> = SimilarityFunction::catalog(&spec, false)
            .into_iter()
            .take(8)
            .collect();
        let cfg_parallel = PipelineConfig::default();
        let cfg_serial = PipelineConfig {
            threads: 1,
            ..PipelineConfig::default()
        };
        let par = generate_corpus(&dataset, &functions, &cfg_parallel);
        let ser = generate_corpus(&dataset, &functions, &cfg_serial);
        assert_eq!(par.len(), functions.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.function, s.function);
            assert_eq!(p.graph.n_edges(), s.graph.n_edges());
        }
        for (g, f) in par.iter().zip(&functions) {
            assert_eq!(&g.function, f, "catalog order preserved");
        }
    }

    #[test]
    fn empty_function_list() {
        let dataset = er_datasets::Dataset::generate(DatasetId::D1, 0.02, 9);
        let out = generate_corpus(&dataset, &[], &PipelineConfig::default());
        assert!(out.is_empty());
    }
}
