//! The similarity-function taxonomy of Figure 6.

use serde::{Deserialize, Serialize};

use er_datasets::DatasetSpec;
use er_embed::{EmbeddingModel, SemanticMeasure};
use er_textsim::{GraphSimilarity, NGramScheme, SchemaBasedMeasure, VectorMeasure};

/// The four input types the paper's analysis groups by (Tables 3–9,
/// Figures 3–4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WeightType {
    /// Schema-based syntactic edge weights.
    SchemaBasedSyntactic,
    /// Schema-agnostic syntactic edge weights.
    SchemaAgnosticSyntactic,
    /// Schema-based semantic edge weights.
    SchemaBasedSemantic,
    /// Schema-agnostic semantic edge weights.
    SchemaAgnosticSemantic,
}

impl WeightType {
    /// All four types, in the paper's presentation order.
    pub const ALL: [WeightType; 4] = [
        WeightType::SchemaBasedSyntactic,
        WeightType::SchemaAgnosticSyntactic,
        WeightType::SchemaBasedSemantic,
        WeightType::SchemaAgnosticSemantic,
    ];

    /// Display name as used in table headers.
    pub fn name(&self) -> &'static str {
        match self {
            WeightType::SchemaBasedSyntactic => "schema-based syntactic",
            WeightType::SchemaAgnosticSyntactic => "schema-agnostic syntactic",
            WeightType::SchemaBasedSemantic => "schema-based semantic",
            WeightType::SchemaAgnosticSemantic => "schema-agnostic semantic",
        }
    }

    /// Whether embeddings produce the weights.
    pub fn is_semantic(&self) -> bool {
        matches!(
            self,
            WeightType::SchemaBasedSemantic | WeightType::SchemaAgnosticSemantic
        )
    }

    /// Whether a single attribute (vs the whole profile) is compared.
    pub fn is_schema_based(&self) -> bool {
        matches!(
            self,
            WeightType::SchemaBasedSyntactic | WeightType::SchemaBasedSemantic
        )
    }
}

/// The scope of a semantic similarity function.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub enum SemanticScope {
    /// Compare one attribute's values.
    SchemaBased {
        /// The compared attribute.
        attribute: String,
    },
    /// Compare whole-profile texts.
    SchemaAgnostic,
}

/// One similarity function of the taxonomy: representation model +
/// similarity measure (+ scope).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub enum SimilarityFunction {
    /// A schema-based syntactic measure applied to one attribute.
    SchemaBasedSyntactic {
        /// The compared attribute.
        attribute: String,
        /// One of the 16 string measures.
        measure: SchemaBasedMeasure,
    },
    /// An n-gram **vector** model with a bag similarity.
    SchemaAgnosticVector {
        /// n-gram scheme (char 2-4 / token 1-3).
        scheme: NGramScheme,
        /// One of the 6 bag measures.
        measure: VectorMeasure,
    },
    /// An n-gram **graph** model with a graph similarity.
    SchemaAgnosticGraph {
        /// n-gram scheme (char 2-4 / token 1-3).
        scheme: NGramScheme,
        /// One of the 4 graph measures.
        measure: GraphSimilarity,
    },
    /// A semantic (embedding) function.
    Semantic {
        /// fastText-like or ALBERT-like encoder.
        model: EmbeddingModel,
        /// Cosine / Euclidean / Word Mover's.
        measure: SemanticMeasure,
        /// Schema-based (one attribute) or schema-agnostic.
        scope: SemanticScope,
    },
}

impl SimilarityFunction {
    /// Which of the four input types this function produces.
    pub fn weight_type(&self) -> WeightType {
        match self {
            SimilarityFunction::SchemaBasedSyntactic { .. } => WeightType::SchemaBasedSyntactic,
            SimilarityFunction::SchemaAgnosticVector { .. }
            | SimilarityFunction::SchemaAgnosticGraph { .. } => WeightType::SchemaAgnosticSyntactic,
            SimilarityFunction::Semantic { scope, .. } => match scope {
                SemanticScope::SchemaBased { .. } => WeightType::SchemaBasedSemantic,
                SemanticScope::SchemaAgnostic => WeightType::SchemaAgnosticSemantic,
            },
        }
    }

    /// A stable human-readable identifier, e.g.
    /// `sb-syn/title/Levenshtein` or `sa-syn/c3/CosineTF`.
    pub fn name(&self) -> String {
        match self {
            SimilarityFunction::SchemaBasedSyntactic { attribute, measure } => {
                format!("sb-syn/{attribute}/{}", measure.name())
            }
            SimilarityFunction::SchemaAgnosticVector { scheme, measure } => {
                format!("sa-syn/{}/{}", scheme.short_name(), measure.name())
            }
            SimilarityFunction::SchemaAgnosticGraph { scheme, measure } => {
                format!("sa-syn/{}g/{}", scheme.short_name(), measure.name())
            }
            SimilarityFunction::Semantic {
                model,
                measure,
                scope,
            } => match scope {
                SemanticScope::SchemaBased { attribute } => {
                    format!("sb-sem/{attribute}/{}-{}", model.name(), measure.name())
                }
                SemanticScope::SchemaAgnostic => {
                    format!("sa-sem/{}-{}", model.name(), measure.name())
                }
            },
        }
    }

    /// The full catalog of similarity functions for a dataset:
    ///
    /// * 16 schema-based syntactic measures × each focus attribute;
    /// * 36 vector + 24 graph schema-agnostic syntactic functions;
    /// * 6 schema-based semantic functions × each focus attribute;
    /// * 6 schema-agnostic semantic functions (2 models × 3 measures),
    ///   unless `include_agnostic_semantic` is false (the paper reports no
    ///   such runs for D8/D10).
    pub fn catalog(spec: &DatasetSpec, include_agnostic_semantic: bool) -> Vec<SimilarityFunction> {
        let mut out = Vec::new();
        // Schema-based syntactic: 16 per focus attribute.
        for attr in &spec.focus_attributes {
            for measure in SchemaBasedMeasure::all() {
                out.push(SimilarityFunction::SchemaBasedSyntactic {
                    attribute: attr.to_string(),
                    measure,
                });
            }
        }
        // Schema-agnostic syntactic: 6 schemes × (6 vector + 4 graph) = 60.
        for scheme in NGramScheme::all() {
            for measure in VectorMeasure::all() {
                out.push(SimilarityFunction::SchemaAgnosticVector { scheme, measure });
            }
            for measure in GraphSimilarity::all() {
                out.push(SimilarityFunction::SchemaAgnosticGraph { scheme, measure });
            }
        }
        // Semantic.
        for model in EmbeddingModel::all() {
            for measure in SemanticMeasure::all() {
                for attr in &spec.focus_attributes {
                    out.push(SimilarityFunction::Semantic {
                        model,
                        measure,
                        scope: SemanticScope::SchemaBased {
                            attribute: attr.to_string(),
                        },
                    });
                }
                if include_agnostic_semantic {
                    out.push(SimilarityFunction::Semantic {
                        model,
                        measure,
                        scope: SemanticScope::SchemaAgnostic,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datasets::{DatasetId, DatasetSpec};

    #[test]
    fn catalog_counts_match_the_paper() {
        // D2 has one focus attribute ("name"): 16 + 60 + 6 + 6 = 88.
        let d2 = DatasetSpec::of(DatasetId::D2);
        let cat = SimilarityFunction::catalog(&d2, true);
        assert_eq!(cat.len(), 16 + 60 + 6 + 6);
        // D4 has two focus attributes: 32 + 60 + 12 + 6 = 110.
        let d4 = DatasetSpec::of(DatasetId::D4);
        let cat = SimilarityFunction::catalog(&d4, true);
        assert_eq!(cat.len(), 32 + 60 + 12 + 6);
        // Without agnostic semantic (D8/D10 policy): 6 fewer.
        let cat = SimilarityFunction::catalog(&d4, false);
        assert_eq!(cat.len(), 32 + 60 + 12);
    }

    #[test]
    fn schema_agnostic_syntactic_is_sixty() {
        let d2 = DatasetSpec::of(DatasetId::D2);
        let n = SimilarityFunction::catalog(&d2, true)
            .into_iter()
            .filter(|f| f.weight_type() == WeightType::SchemaAgnosticSyntactic)
            .count();
        assert_eq!(n, 60, "36 vector + 24 graph functions");
    }

    #[test]
    fn names_are_unique_and_stable() {
        let d4 = DatasetSpec::of(DatasetId::D4);
        let cat = SimilarityFunction::catalog(&d4, true);
        let mut names: Vec<String> = cat.iter().map(|f| f.name()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "function names must be unique");
        assert!(names.iter().any(|n| n == "sb-syn/title/Levenshtein"));
        assert!(names.iter().any(|n| n == "sa-syn/c3/CosineTF"));
        assert!(names.iter().any(|n| n == "sa-sem/fastText-Cosine"));
    }

    #[test]
    fn weight_type_properties() {
        assert!(WeightType::SchemaBasedSemantic.is_semantic());
        assert!(WeightType::SchemaBasedSemantic.is_schema_based());
        assert!(!WeightType::SchemaAgnosticSyntactic.is_schema_based());
        assert_eq!(WeightType::ALL.len(), 4);
    }
}
