//! Index-driven candidate generation: the sub-quadratic alternative to
//! enumerating all `n_left × n_right` pairs.
//!
//! PR 5's bound-driven engine pruned candidates *after* enumerating them —
//! the scored volume shrank but the generated volume stayed `Θ(n²)`. This
//! module inverts each branch's pruning filter into an index probe, so the
//! filtered-out pairs are never even produced:
//!
//! * **Token vector measures** (`generate_token_candidates`) — an
//!   AllPairs/PPJoin-style prefix filter: the probe's terms are visited in
//!   the [`ProbePlan`] order over the existing right-side inverted index,
//!   and generation stops at the first plan step whose *suffix bound* (the
//!   best similarity any still-undiscovered candidate could reach) falls
//!   strictly below the sink's admission bound.
//! * **Character edit measures** (`generate_char_candidates`) — the
//!   length-difference and char-bag counting filters inverted into a
//!   [`LengthBucketIndex`]: whole length buckets are skipped via the
//!   `O(1)` length bound, and bucket members via the counting-filter bound
//!   computed by one multiplicity probe of the bucket postings.
//! * **Semantic measures** (`generate_ball_candidates`) — centroid-ball
//!   pruning over a [`VectorBallIndex`]: balls are visited in ascending
//!   distance-lower-bound order and generation stops at the first ball
//!   whose mapped similarity bound falls strictly below the admission
//!   bound.
//!
//! # Completeness (why no admitted pair is lost)
//!
//! Every generator consumes the admission bound of the streaming top-k
//! sink — the row heap's current k-th weight — and skips a candidate (or a
//! whole bucket/ball/suffix of candidates) only when an **exact upper
//! bound** on its similarity falls **strictly** below that bound. Within a
//! row the admission bound only rises, so a skip decision taken against
//! the bound-at-decision-time also holds against the final bound: the
//! skipped pair's true similarity is strictly below the row's final k-th
//! weight, and the pair could not have been retained by the dense path
//! either. The retained edge multiset — and therefore the finished graph —
//! is bit-identical to enumerated-mode [`build_graph_topk`], which
//! `tests/candidates_props.rs` proves per taxonomy branch and thread
//! count. DESIGN.md §15 spells out the per-index domination arguments.
//!
//! Pairs skipped by a generator are **not generated**: they never reach a
//! scorer, are not counted in `TopKStats::generated_pairs`, and appear in
//! neither `pruned_pairs` nor `scored_pairs` — the stats invariant
//! `generated == pruned + scored` holds on every path because pruning and
//! scoring only ever apply to generated candidates.
//!
//! [`build_graph_topk`]: crate::build_graph_topk
//! [`ProbePlan`]: er_textsim::ProbePlan
//! [`LengthBucketIndex`]: er_textsim::LengthBucketIndex
//! [`VectorBallIndex`]: er_embed::VectorBallIndex

use er_core::FxHashMap;
use er_embed::{DenseVector, VectorBallIndex};
use er_textsim::{CharMeasure, LengthBucketIndex, ProbePlan};

/// How a streaming top-k construction produces its candidate pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CandidateMode {
    /// Enumerate every pair the branch's scorer would consider (full cross
    /// product, or every term-sharing pair for the inverted-index
    /// branches) and let the sink's bounds prune after the fact — PR 5
    /// behaviour, `Θ(n²)` generated pairs on the all-pairs branches.
    #[default]
    Enumerated,
    /// Generate candidates from the branch's index (prefix-filtered
    /// postings, length buckets, centroid balls) under the sink's
    /// admission bound: the generated pair count itself is `o(n²)` while
    /// the finished graph stays bit-identical to [`Enumerated`]
    /// (property-proven in `tests/candidates_props.rs`).
    ///
    /// [`Enumerated`]: CandidateMode::Enumerated
    Indexed,
}

/// Prefix-filtered token-measure generation: probe the right-side postings
/// in [`ProbePlan`] order, deduplicate via `stamp`/`mark`, and hand each
/// newly discovered right id to `score`, which must score it and return
/// the sink's updated admission bound.
///
/// Stops before plan step `i` when the current bound is live (not `-∞`)
/// and `plan.suffix_bound(i)` is strictly below it: every undiscovered
/// candidate shares terms only among steps `i..` (otherwise an earlier
/// posting probe would have discovered it), so its similarity is dominated
/// by the suffix bound and it could never be admitted.
pub(crate) fn generate_token_candidates(
    plan: &ProbePlan,
    probe_terms: &[(u64, f64)],
    postings: &FxHashMap<u64, Vec<u32>>,
    stamp: &mut [u32],
    mark: u32,
    mut bound: f64,
    mut score: impl FnMut(u32) -> f64,
) {
    for i in 0..plan.len() {
        if bound != f64::NEG_INFINITY && plan.suffix_bound(i) < bound {
            return;
        }
        let (term, _) = probe_terms[plan.term_position(i)];
        if let Some(js) = postings.get(&term) {
            for &j in js {
                let s = &mut stamp[j as usize];
                if *s != mark {
                    *s = mark;
                    bound = score(j);
                }
            }
        }
    }
}

/// Length-bucketed char-measure generation: visit buckets closest-length
/// first, skip a whole bucket when the measure's length bound falls
/// strictly below the admission bound, probe the counting filter over the
/// survivors, and hand each member whose bag bound meets the bound to
/// `score` (which returns the updated admission bound).
///
/// Buckets are *skipped*, not stopped at — the length bound is not
/// monotone along the closest-first interleaving (a failing
/// shorter-than-probe bucket says nothing about the next
/// longer-than-probe one), and buckets are few (one per distinct length).
///
/// `order` and `counts` are caller-provided scratch.
#[allow(clippy::too_many_arguments)]
pub(crate) fn generate_char_candidates(
    index: &LengthBucketIndex,
    measure: CharMeasure,
    probe_len: usize,
    probe_bag: &[u32],
    order: &mut Vec<u32>,
    counts: &mut Vec<u32>,
    mut bound: f64,
    mut score: impl FnMut(u32) -> f64,
) {
    index.bucket_order_closest_first(probe_len, order);
    let use_bag = measure.has_bag_bound();
    for &b in order.iter() {
        let b = b as usize;
        let bucket_len = index.bucket_char_len(b);
        if bound != f64::NEG_INFINITY {
            if measure.length_upper_bound(probe_len, bucket_len) < bound {
                continue;
            }
            if use_bag {
                index.count_common_into(b, probe_bag, counts);
                for (pos, &slot) in index.bucket_members(b).iter().enumerate() {
                    let ub = measure
                        .bag_upper_bound_from_common(counts[pos] as usize, probe_len, bucket_len)
                        .expect("has_bag_bound implies a counting-filter bound");
                    if ub < bound {
                        continue;
                    }
                    bound = score(slot);
                }
                continue;
            }
        }
        for &slot in index.bucket_members(b) {
            bound = score(slot);
        }
    }
}

/// Centroid-ball semantic generation: visit balls in ascending
/// distance-lower-bound order, map each bound through the measure's
/// monotone non-increasing `map` (distance lower bound → similarity upper
/// bound), and hand every member of a surviving ball to `score` (which
/// returns the updated admission bound).
///
/// Stops at the first ball whose mapped bound falls strictly below the
/// live admission bound: all later balls have equal-or-larger distance
/// bounds, hence equal-or-smaller similarity bounds.
///
/// `bounds` is caller-provided scratch.
pub(crate) fn generate_ball_candidates(
    index: &VectorBallIndex,
    probe: &DenseVector,
    probe_radius: f64,
    bounds: &mut Vec<(f64, u32)>,
    map: impl Fn(f64) -> f64,
    mut bound: f64,
    mut score: impl FnMut(u32) -> f64,
) {
    index.distance_lower_bounds(probe, probe_radius, bounds);
    for &(lb, b) in bounds.iter() {
        if bound != f64::NEG_INFINITY && map(lb) < bound {
            return;
        }
        for &slot in index.ball_members(b as usize) {
            bound = score(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_embed::inverse_distance_bound;
    use er_textsim::{CharTable, SparseVector, VectorMeasure};

    /// With no live bound (`-∞`), the token generator discovers exactly
    /// the term-sharing pairs — the dense inverted-index candidate set.
    #[test]
    fn token_generation_without_bound_is_the_full_index_walk() {
        let vecs: Vec<SparseVector> = [
            vec![(1u64, 0.5), (2, 0.5)],
            vec![(2, 1.0)],
            vec![(9, 1.0)],
            vec![(1, 0.2), (9, 0.8)],
        ]
        .into_iter()
        .map(SparseVector::from_pairs)
        .collect();
        let mut postings: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for (j, v) in vecs.iter().enumerate() {
            for &(t, _) in v.terms() {
                postings.entry(t).or_default().push(j as u32);
            }
        }
        let probe = SparseVector::from_pairs(vec![(1, 0.7), (2, 0.3)]);
        let plan = VectorMeasure::CosineTf.probe_plan(&probe, None);
        let mut stamp = vec![0u32; vecs.len()];
        let mut seen = Vec::new();
        generate_token_candidates(
            &plan,
            probe.terms(),
            &postings,
            &mut stamp,
            1,
            f64::NEG_INFINITY,
            |j| {
                seen.push(j);
                f64::NEG_INFINITY
            },
        );
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 3], "exactly the term-sharing slots");
    }

    /// A saturating bound (anything below 1 is inadmissible) stops token
    /// generation as soon as the suffix bound proves no candidate can
    /// reach it.
    #[test]
    fn token_generation_early_stops_under_a_high_bound() {
        let vecs: Vec<SparseVector> = (0..8)
            .map(|j| SparseVector::from_pairs(vec![(j as u64 + 10, 1.0)]))
            .collect();
        let mut postings: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for (j, v) in vecs.iter().enumerate() {
            for &(t, _) in v.terms() {
                postings.entry(t).or_default().push(j as u32);
            }
        }
        // The probe's dominant weight sits on a term nobody shares; the
        // tiny tail terms cannot reach the bound, so the plan stops after
        // the first (empty-postings) step.
        let probe = SparseVector::from_pairs(vec![(1, 100.0), (10, 1e-9), (11, 1e-9)]);
        let plan = VectorMeasure::CosineTf.probe_plan(&probe, None);
        let mut stamp = vec![0u32; vecs.len()];
        let mut generated = 0usize;
        generate_token_candidates(&plan, probe.terms(), &postings, &mut stamp, 1, 0.9, |_| {
            generated += 1;
            0.9
        });
        assert_eq!(generated, 0, "suffix bound must stop the tail probes");
    }

    /// The char generator under `-∞` produces every indexed entry once;
    /// under a live bound it skips exactly the entries whose length or bag
    /// bound falls below it.
    #[test]
    fn char_generation_skips_by_length_and_bag() {
        let t = CharTable::build(["abcd", "abce", "zzzz", "ab"]);
        let index = LengthBucketIndex::build((0..t.len()).map(|i| t.bag(i)));
        let probe = CharTable::build(["abcd"]);
        let m = CharMeasure::Levenshtein;
        let (mut order, mut counts) = (Vec::new(), Vec::new());

        let mut all = Vec::new();
        generate_char_candidates(
            &index,
            m,
            4,
            probe.bag(0),
            &mut order,
            &mut counts,
            f64::NEG_INFINITY,
            |s| {
                all.push(s);
                f64::NEG_INFINITY
            },
        );
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3], "no bound, every entry generated");

        // Bound 0.7: "ab" fails the length bound (0.5), "zzzz" the bag
        // bound (0 common chars → 0), the two near-identical strings
        // survive ("abce"'s bag bound is 0.75 ≥ 0.7).
        let mut survivors = Vec::new();
        generate_char_candidates(
            &index,
            m,
            4,
            probe.bag(0),
            &mut order,
            &mut counts,
            0.7,
            |s| {
                survivors.push(s);
                0.7
            },
        );
        survivors.sort_unstable();
        assert_eq!(survivors, vec![0, 1]);
    }

    /// The ball generator visits everything under `-∞` and stops at the
    /// first inadmissible ball under a live bound.
    #[test]
    fn ball_generation_stops_at_inadmissible_balls() {
        let points = [
            DenseVector(vec![0.0, 0.0]),
            DenseVector(vec![0.2, 0.0]),
            DenseVector(vec![50.0, 0.0]),
        ];
        let entries: Vec<(u32, &DenseVector, f64)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u32, p, 0.0))
            .collect();
        let index = VectorBallIndex::build(&entries);
        let probe = DenseVector(vec![0.1, 0.0]);
        let mut scratch = Vec::new();

        let mut all = Vec::new();
        generate_ball_candidates(
            &index,
            &probe,
            0.0,
            &mut scratch,
            inverse_distance_bound,
            f64::NEG_INFINITY,
            |s| {
                all.push(s);
                f64::NEG_INFINITY
            },
        );
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2], "no bound, every member generated");

        // Bound 0.5 admits distances up to 1: the far point (d ≈ 49.9,
        // similarity ≈ 0.02) sits in a ball whose mapped bound is far
        // below, so it is never generated.
        let mut near = Vec::new();
        generate_ball_candidates(
            &index,
            &probe,
            0.0,
            &mut scratch,
            inverse_distance_bound,
            0.5,
            |s| {
                near.push(s);
                0.5
            },
        );
        near.sort_unstable();
        assert_eq!(near, vec![0, 1], "far ball must be cut off");
    }
}
