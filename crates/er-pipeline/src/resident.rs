//! Resident incremental row scoring: one new record against the corpus.
//!
//! The batch engine ([`crate::graphgen`]) scores `n_left × n_right` once
//! and exits; a long-lived matching service instead receives records one
//! at a time and must score each against an **already-resident** corpus
//! without re-preparing anything. [`ResidentScorer`] keeps the score-side
//! state of one similarity function alive between calls:
//!
//! * **token-vector measures** — the frozen [`VectorModel`], the DF
//!   indexes and the term postings stay resident; a probe builds its
//!   sparse vector once and walks the postings in
//!   [`ProbePlan`](er_textsim::ProbePlan) order through
//!   [`generate_token_candidates`](crate::candidates), exactly the PR 6
//!   index path;
//! * **character edit measures** — interned char bags and the
//!   [`LengthBucketIndex`] stay resident; probes ride
//!   [`generate_char_candidates`](crate::candidates);
//! * **dense semantic measures** — encoded vectors and the
//!   [`VectorBallIndex`] stay resident; probes ride
//!   [`generate_ball_candidates`](crate::candidates);
//! * every other taxonomy branch (schema-based token measures, n-gram
//!   graph models, Word Mover's) falls back to re-preparing a
//!   singleton-probe build over the resident collections — correct, just
//!   not sub-linear in the corpus.
//!
//! Each probe runs under the row's **top-k admission bound**: a
//! [`TopKRow`] heap collects the candidates, its k-th weight feeds the
//! generators' early-stopping bounds, and the survivors are normalized
//! through the build's frozen [`NormFrame`] and emitted as a
//! [`RowDelta`] ready for `CsrGraph::apply` and the delta matchers.
//!
//! # Incremental drift (what a full rebuild removes)
//!
//! The resident path trades three documented approximations for `O(k)`
//! admission state and index-pruned probes; all three vanish on rebuild:
//!
//! 1. **Frozen statistics** — DF indexes, the normalization frame, and
//!    (for the fallback families) collection-level stats are those of the
//!    load-time build. New records are *scored* against them but do not
//!    update them, so a probe's raw score can drift from what a batch
//!    rebuild would produce once many records have churned.
//! 2. **Row-local admission** — a left insert's top-k admission matches
//!    the batch semantics exactly (per-left-row best `k`); a right insert
//!    keeps its own best `k` edges but does **not** retroactively evict
//!    weaker edges from resident left rows the way a batch rebuild would.
//! 3. **Tombstone residue** — deleted records stay in the resident
//!    indexes (marked dead and never emitted) until a rebuild compacts
//!    them away.

use er_core::delta::Side;
use er_core::{FxHashMap, FxHashSet, RowDelta, TopKRow};
use er_datasets::{EntityCollection, EntityProfile};
use er_embed::measures::Encoder;
use er_embed::{
    cosine_distance_bound, inverse_distance_bound, DenseVector, SemanticMeasure, VectorBallIndex,
};
use er_textsim::lanes::{MyersBatch, LANE_WIDTH};
use er_textsim::{
    CharMeasure, DfIndex, LengthBucketIndex, SchemaBasedMeasure, SparseVector, TermWeighting,
    VectorMeasure, VectorModel,
};

use crate::candidates::{
    generate_ball_candidates, generate_char_candidates, generate_token_candidates,
};
use crate::config::{KernelMode, PipelineConfig};
use crate::graphgen::{scoped_text, unit_probe, NormFrame, ScoreMode};
use crate::taxonomy::{SemanticScope, SimilarityFunction};

/// Fraction of un-indexed overflow entries (relative to the indexed
/// prefix) that triggers a resident index rebuild. Overflow entries are
/// scored without index pruning, so letting them accumulate unboundedly
/// would degrade probes back to linear scans.
const OVERFLOW_REBUILD_FRACTION: f64 = 0.25;

/// Resident score-side state of one similarity function over one pair of
/// collections, supporting incremental record inserts (see the module
/// docs for the drift contract).
///
/// Id discipline matches [`er_core::CsrGraph`]: profile ids equal their
/// position in the collection, inserts append the next id, deletes
/// tombstone ids forever.
pub struct ResidentScorer {
    left: EntityCollection,
    right: EntityCollection,
    function: SimilarityFunction,
    cfg: PipelineConfig,
    k: usize,
    frame: NormFrame,
    dead_left: FxHashSet<u32>,
    dead_right: FxHashSet<u32>,
    family: Family,
}

enum Family {
    Token(Box<TokenFamily>),
    Char(Box<CharFamily>),
    Dense(Box<DenseFamily>),
    Fallback,
}

impl ResidentScorer {
    /// Build the resident state from the collections a graph was built
    /// over, the build's `k`, and its [`NormFrame`] (from
    /// [`build_graph_topk_framed`](crate::build_graph_topk_framed)).
    pub fn prepare(
        left: &EntityCollection,
        right: &EntityCollection,
        function: &SimilarityFunction,
        k: usize,
        frame: NormFrame,
        cfg: &PipelineConfig,
    ) -> Self {
        for (i, p) in left.profiles.iter().enumerate() {
            assert_eq!(p.id as usize, i, "left profile ids must be positional");
        }
        for (i, p) in right.profiles.iter().enumerate() {
            assert_eq!(p.id as usize, i, "right profile ids must be positional");
        }
        let family =
            match function {
                SimilarityFunction::SchemaAgnosticVector { scheme, measure } => Family::Token(
                    Box::new(TokenFamily::prepare(left, right, *scheme, *measure)),
                ),
                SimilarityFunction::SchemaBasedSyntactic { attribute, measure } => match measure {
                    SchemaBasedMeasure::Char(m) => Family::Char(Box::new(CharFamily::prepare(
                        left,
                        right,
                        attribute,
                        *m,
                        cfg.kernel_mode,
                    ))),
                    SchemaBasedMeasure::Token(_) => Family::Fallback,
                },
                SimilarityFunction::Semantic {
                    model,
                    measure,
                    scope,
                } if !measure.needs_token_vectors() => Family::Dense(Box::new(
                    DenseFamily::prepare(left, right, model.encoder(), *measure, scope.clone()),
                )),
                _ => Family::Fallback,
            };
        ResidentScorer {
            left: left.clone(),
            right: right.clone(),
            function: function.clone(),
            cfg: cfg.clone(),
            k,
            frame,
            dead_left: FxHashSet::default(),
            dead_right: FxHashSet::default(),
            family,
        }
    }

    /// The frozen normalization frame probes are mapped through.
    pub fn frame(&self) -> NormFrame {
        self.frame
    }

    /// Edges kept per inserted row (the build's `k`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The resident left collection (tombstoned profiles included).
    pub fn left(&self) -> &EntityCollection {
        &self.left
    }

    /// The resident right collection (tombstoned profiles included).
    pub fn right(&self) -> &EntityCollection {
        &self.right
    }

    /// Score `profile` (arriving on `side`) against the live records of
    /// the opposite side under the row's top-k admission bound, register
    /// it in the resident indexes, and return the insert [`RowDelta`]
    /// with **normalized** edge weights — ready for `CsrGraph::apply`
    /// and the delta matchers.
    ///
    /// Panics unless `profile.id` is the side's next append id.
    pub fn score_insert(&mut self, side: Side, profile: &EntityProfile) -> RowDelta {
        let expected = match side {
            Side::Left => self.left.len(),
            Side::Right => self.right.len(),
        };
        assert_eq!(
            profile.id as usize, expected,
            "insert must carry the side's next append id"
        );
        let dead = match side {
            Side::Left => &self.dead_right,
            Side::Right => &self.dead_left,
        };
        let keep_positive = self.cfg.keep_positive_only;
        let mut row = TopKRow::new(self.k);
        match &mut self.family {
            Family::Token(f) => f.score_probe(profile, side, dead, keep_positive, &mut row),
            Family::Char(f) => f.score_probe(profile, side, dead, keep_positive, &mut row),
            Family::Dense(f) => f.score_probe(profile, side, dead, keep_positive, &mut row),
            Family::Fallback => fallback_probe(
                &self.left,
                &self.right,
                &self.function,
                &self.cfg,
                profile,
                side,
                dead,
                keep_positive,
                &mut row,
            ),
        }
        let mut raw = Vec::new();
        row.drain_sorted_into(&mut raw);
        let edges: Vec<(u32, f64)> = raw
            .into_iter()
            .map(|(other, w)| (other, self.frame.apply(w)))
            .collect();
        // Register after scoring (a record never edges to its own side).
        match &mut self.family {
            Family::Token(f) => f.register(profile, side),
            Family::Char(f) => f.register(profile, side),
            Family::Dense(f) => f.register(profile, side),
            Family::Fallback => {}
        }
        match side {
            Side::Left => {
                self.left.profiles.push(profile.clone());
                RowDelta::insert_left(profile.id, edges)
            }
            Side::Right => {
                self.right.profiles.push(profile.clone());
                RowDelta::insert_right(profile.id, edges)
            }
        }
    }

    /// Tombstone a record: it stays in the resident indexes but is never
    /// emitted as a candidate again. Mirrors `CsrGraph::remove_*`.
    pub fn mark_deleted(&mut self, side: Side, id: u32) {
        match side {
            Side::Left => self.dead_left.insert(id),
            Side::Right => self.dead_right.insert(id),
        };
    }

    /// Whether `id` on `side` is registered and not tombstoned.
    pub fn is_live(&self, side: Side, id: u32) -> bool {
        match side {
            Side::Left => (id as usize) < self.left.len() && !self.dead_left.contains(&id),
            Side::Right => (id as usize) < self.right.len() && !self.dead_right.contains(&id),
        }
    }
}

/// Offer one scored candidate to the row heap under the positivity
/// protocol, returning the updated admission bound.
#[inline]
fn offer(row: &mut TopKRow, other: u32, w: f64, keep_positive: bool) -> f64 {
    if w > 0.0 || !keep_positive {
        row.offer(other, w);
    }
    row.admission_bound()
}

// ---------------------------------------------------------------------------
// Token-vector family: frozen model + DF + postings, ProbePlan probes.
// ---------------------------------------------------------------------------

struct TokenSide {
    vecs: Vec<SparseVector>,
    postings: FxHashMap<u64, Vec<u32>>,
    stamp: Vec<u32>,
}

impl TokenSide {
    fn build(vecs: Vec<SparseVector>) -> Self {
        let mut postings: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for (j, v) in vecs.iter().enumerate() {
            for &(t, _) in v.terms() {
                postings.entry(t).or_default().push(j as u32);
            }
        }
        let stamp = vec![0u32; vecs.len()];
        TokenSide {
            vecs,
            postings,
            stamp,
        }
    }

    fn push(&mut self, v: SparseVector) {
        let j = self.vecs.len() as u32;
        for &(t, _) in v.terms() {
            self.postings.entry(t).or_default().push(j);
        }
        self.vecs.push(v);
        self.stamp.push(0);
    }
}

struct TokenFamily {
    model: VectorModel,
    weighting: TermWeighting,
    measure: VectorMeasure,
    df_left: DfIndex,
    df_right: DfIndex,
    df_union: DfIndex,
    left: TokenSide,
    right: TokenSide,
    mark: u32,
}

impl TokenFamily {
    fn prepare(
        left: &EntityCollection,
        right: &EntityCollection,
        scheme: er_textsim::NGramScheme,
        measure: VectorMeasure,
    ) -> Self {
        let model = VectorModel::new(scheme);
        let weighting = measure.weighting();
        let mut df_left = DfIndex::new();
        let mut df_right = DfIndex::new();
        let mut df_union = DfIndex::new();
        let texts_left: Vec<String> = left.profiles.iter().map(|p| p.all_values_text()).collect();
        let texts_right: Vec<String> = right.profiles.iter().map(|p| p.all_values_text()).collect();
        for t in &texts_left {
            let terms: Vec<u64> = model.term_frequencies(t).keys().copied().collect();
            df_left.add_document(terms.iter().copied());
            df_union.add_document(terms);
        }
        for t in &texts_right {
            let terms: Vec<u64> = model.term_frequencies(t).keys().copied().collect();
            df_right.add_document(terms.iter().copied());
            df_union.add_document(terms);
        }
        let vec_of = |text: &String| model.vector(text, weighting, Some(&df_union));
        TokenFamily {
            model,
            weighting,
            measure,
            left: TokenSide::build(texts_left.iter().map(vec_of).collect()),
            right: TokenSide::build(texts_right.iter().map(vec_of).collect()),
            df_left,
            df_right,
            df_union,
            mark: 0,
        }
    }

    /// The probe's vector under the frozen model and DF statistics.
    fn probe_vector(&self, p: &EntityProfile) -> SparseVector {
        self.model
            .vector(&p.all_values_text(), self.weighting, Some(&self.df_union))
    }

    fn next_mark(&mut self) -> u32 {
        if self.mark == u32::MAX {
            self.left.stamp.fill(0);
            self.right.stamp.fill(0);
            self.mark = 0;
        }
        self.mark += 1;
        self.mark
    }

    fn score_probe(
        &mut self,
        p: &EntityProfile,
        side: Side,
        dead: &FxHashSet<u32>,
        keep_positive: bool,
        row: &mut TopKRow,
    ) {
        let mark = self.next_mark();
        let pv = self.probe_vector(p);
        let dfs = Some((&self.df_left, &self.df_right));
        let plan = self.measure.probe_plan(&pv, dfs);
        let target = match side {
            Side::Left => &mut self.right,
            Side::Right => &mut self.left,
        };
        let measure = self.measure;
        generate_token_candidates(
            &plan,
            pv.terms(),
            &target.postings,
            &mut target.stamp,
            mark,
            row.admission_bound(),
            |j| {
                if dead.contains(&j) {
                    return row.admission_bound();
                }
                let cv = &target.vecs[j as usize];
                let w = match side {
                    Side::Left => measure.similarity(&pv, cv, dfs),
                    Side::Right => measure.similarity(cv, &pv, dfs),
                };
                offer(row, j, w, keep_positive)
            },
        );
    }

    fn register(&mut self, p: &EntityProfile, side: Side) {
        let v = self.probe_vector(p);
        match side {
            Side::Left => self.left.push(v),
            Side::Right => self.right.push(v),
        }
    }
}

// ---------------------------------------------------------------------------
// Character family: resident bags + length buckets, counting-filter probes.
// ---------------------------------------------------------------------------

struct CharSide {
    /// Entity ids carrying the attribute (slot → id).
    ids: Vec<u32>,
    values: Vec<String>,
    /// Sorted Unicode-scalar bags (comparable across entries — scalar
    /// values are a global code space).
    bags: Vec<Vec<u32>>,
    /// Length-bucket index over `bags[..indexed_len]`; later entries are
    /// overflow, scanned with explicit bounds until the next rebuild.
    index: LengthBucketIndex,
    indexed_len: usize,
}

impl CharSide {
    fn build(ids: Vec<u32>, values: Vec<String>) -> Self {
        let bags: Vec<Vec<u32>> = values.iter().map(|v| char_bag(v)).collect();
        let index = LengthBucketIndex::build(bags.iter().map(Vec::as_slice));
        let indexed_len = bags.len();
        CharSide {
            ids,
            values,
            bags,
            index,
            indexed_len,
        }
    }

    fn push(&mut self, id: u32, value: String) {
        self.bags.push(char_bag(&value));
        self.values.push(value);
        self.ids.push(id);
        let overflow = self.bags.len() - self.indexed_len;
        if overflow as f64 > self.indexed_len.max(4) as f64 * OVERFLOW_REBUILD_FRACTION {
            self.index = LengthBucketIndex::build(self.bags.iter().map(Vec::as_slice));
            self.indexed_len = self.bags.len();
        }
    }
}

fn char_bag(v: &str) -> Vec<u32> {
    let mut bag: Vec<u32> = v.chars().map(u32::from).collect();
    bag.sort_unstable();
    bag
}

/// Flush one lane chunk of a resident Levenshtein probe: decode the
/// buffered slots' values into the per-lane code buffers, run the
/// multi-text Myers batch (prepared over the probe), and offer the
/// similarities to the row heap. Bit-identical to the scalar
/// `measure.similarity` calls: the integer edit distance is symmetric,
/// so probe-as-pattern equals the scalar kernel's
/// shorter-side-as-pattern, and the weight formula is the same float
/// expression.
#[allow(clippy::too_many_arguments)]
fn flush_char_lanes(
    target: &CharSide,
    batch: &mut MyersBatch,
    lane_codes: &mut [Vec<u32>],
    probe_m: usize,
    slots: &[u32],
    dead: &FxHashSet<u32>,
    keep_positive: bool,
    row: &mut TopKRow,
) {
    let mut ids = [0u32; LANE_WIDTH];
    let mut kn = 0;
    for &slot in slots {
        let id = target.ids[slot as usize];
        if dead.contains(&id) {
            continue;
        }
        let lc = &mut lane_codes[kn];
        lc.clear();
        lc.extend(target.values[slot as usize].chars().map(u32::from));
        ids[kn] = id;
        kn += 1;
    }
    if kn == 0 {
        return;
    }
    let mut dists = [0usize; LANE_WIDTH];
    {
        let mut texts: [&[u32]; LANE_WIDTH] = [&[]; LANE_WIDTH];
        for (i, lc) in lane_codes[..kn].iter().enumerate() {
            texts[i] = lc;
        }
        batch.distances(&texts[..kn], &mut dists[..kn]);
    }
    for i in 0..kn {
        let max_len = probe_m.max(lane_codes[i].len());
        let w = if max_len == 0 {
            1.0
        } else {
            1.0 - dists[i] as f64 / max_len as f64
        };
        offer(row, ids[i], w, keep_positive);
    }
}

struct CharFamily {
    attribute: String,
    measure: CharMeasure,
    left: CharSide,
    right: CharSide,
    order: Vec<u32>,
    counts: Vec<u32>,
    kernel: KernelMode,
    /// Lanes-mode probe state (Levenshtein only): the probe's code
    /// points, the multi-text Myers batch prepared over them, and the
    /// per-lane candidate code buffers.
    probe_codes: Vec<u32>,
    batch: MyersBatch,
    lane_codes: Vec<Vec<u32>>,
}

impl CharFamily {
    fn prepare(
        left: &EntityCollection,
        right: &EntityCollection,
        attribute: &str,
        measure: CharMeasure,
        kernel: KernelMode,
    ) -> Self {
        fn with_attr(c: &EntityCollection, attribute: &str) -> (Vec<u32>, Vec<String>) {
            let mut ids = Vec::new();
            let mut values = Vec::new();
            for p in &c.profiles {
                if let Some(v) = p.value(attribute) {
                    ids.push(p.id);
                    values.push(v.to_string());
                }
            }
            (ids, values)
        }
        let (lid, lval) = with_attr(left, attribute);
        let (rid, rval) = with_attr(right, attribute);
        CharFamily {
            attribute: attribute.to_string(),
            measure,
            left: CharSide::build(lid, lval),
            right: CharSide::build(rid, rval),
            order: Vec::new(),
            counts: Vec::new(),
            kernel,
            probe_codes: Vec::new(),
            batch: MyersBatch::new(),
            lane_codes: vec![Vec::new(); LANE_WIDTH],
        }
    }

    fn score_probe(
        &mut self,
        p: &EntityProfile,
        side: Side,
        dead: &FxHashSet<u32>,
        keep_positive: bool,
        row: &mut TopKRow,
    ) {
        let Some(value) = p.value(&self.attribute) else {
            return; // No attribute, no edges — as in the batch scorer.
        };
        let probe_bag = char_bag(value);
        let probe_len = probe_bag.len();
        let target = match side {
            Side::Left => &self.right,
            Side::Right => &self.left,
        };
        let measure = self.measure;
        if matches!(self.kernel, KernelMode::Lanes) && matches!(measure, CharMeasure::Levenshtein) {
            // Lanes mode: buffer generated slots and flush them through
            // the multi-text Myers batch. Between flushes the
            // generators see the bound of the last flush — a superset
            // of the scalar candidates whose extras all score strictly
            // below the final admission bound, so the retained row is
            // bit-identical (same argument as the batch engine's
            // indexed path, DESIGN.md §19).
            self.probe_codes.clear();
            self.probe_codes.extend(value.chars().map(u32::from));
            self.batch.prepare(&self.probe_codes);
            let probe_m = self.probe_codes.len();
            let batch = &mut self.batch;
            let lane_codes = &mut self.lane_codes;
            let mut buf = [0u32; LANE_WIDTH];
            let mut cn = 0usize;
            generate_char_candidates(
                &target.index,
                measure,
                probe_len,
                &probe_bag,
                &mut self.order,
                &mut self.counts,
                row.admission_bound(),
                |slot| {
                    buf[cn] = slot;
                    cn += 1;
                    if cn == LANE_WIDTH {
                        flush_char_lanes(
                            target,
                            batch,
                            lane_codes,
                            probe_m,
                            &buf[..cn],
                            dead,
                            keep_positive,
                            row,
                        );
                        cn = 0;
                    }
                    row.admission_bound()
                },
            );
            for slot in target.indexed_len..target.bags.len() {
                let bound = row.admission_bound();
                if bound != f64::NEG_INFINITY {
                    let blen = target.bags[slot].len();
                    if measure.length_upper_bound(probe_len, blen) < bound {
                        continue;
                    }
                    if let Some(ub) = measure.bag_upper_bound(&probe_bag, &target.bags[slot]) {
                        if ub < bound {
                            continue;
                        }
                    }
                }
                buf[cn] = slot as u32;
                cn += 1;
                if cn == LANE_WIDTH {
                    flush_char_lanes(
                        target,
                        batch,
                        lane_codes,
                        probe_m,
                        &buf[..cn],
                        dead,
                        keep_positive,
                        row,
                    );
                    cn = 0;
                }
            }
            if cn > 0 {
                flush_char_lanes(
                    target,
                    batch,
                    lane_codes,
                    probe_m,
                    &buf[..cn],
                    dead,
                    keep_positive,
                    row,
                );
            }
            return;
        }
        let score = |slot: u32, row: &mut TopKRow| -> f64 {
            let id = target.ids[slot as usize];
            if dead.contains(&id) {
                return row.admission_bound();
            }
            let w = measure.similarity(value, &target.values[slot as usize]);
            offer(row, id, w, keep_positive)
        };
        generate_char_candidates(
            &target.index,
            measure,
            probe_len,
            &probe_bag,
            &mut self.order,
            &mut self.counts,
            row.admission_bound(),
            |slot| score(slot, row),
        );
        // Overflow entries carry no bucket structure: apply the same
        // length and counting-filter bounds per entry.
        for slot in target.indexed_len..target.bags.len() {
            let bound = row.admission_bound();
            if bound != f64::NEG_INFINITY {
                let blen = target.bags[slot].len();
                if measure.length_upper_bound(probe_len, blen) < bound {
                    continue;
                }
                if let Some(ub) = measure.bag_upper_bound(&probe_bag, &target.bags[slot]) {
                    if ub < bound {
                        continue;
                    }
                }
            }
            score(slot as u32, row);
        }
    }

    fn register(&mut self, p: &EntityProfile, side: Side) {
        if let Some(v) = p.value(&self.attribute) {
            let v = v.to_string();
            match side {
                Side::Left => self.left.push(p.id, v),
                Side::Right => self.right.push(p.id, v),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Dense semantic family: resident encodings + centroid-ball probes.
// ---------------------------------------------------------------------------

struct DenseSide {
    vecs: Vec<DenseVector>,
    /// Ball index over the non-zero vectors of `vecs[..indexed_len]`
    /// (unit-normalized copies for cosine); later entries are overflow.
    ball: VectorBallIndex,
    indexed_len: usize,
}

impl DenseSide {
    fn build(vecs: Vec<DenseVector>, cosine: bool) -> Self {
        let ball = build_ball(&vecs, cosine);
        let indexed_len = vecs.len();
        DenseSide {
            vecs,
            ball,
            indexed_len,
        }
    }

    fn push(&mut self, v: DenseVector, cosine: bool) {
        self.vecs.push(v);
        let overflow = self.vecs.len() - self.indexed_len;
        if overflow as f64 > self.indexed_len.max(4) as f64 * OVERFLOW_REBUILD_FRACTION {
            self.ball = build_ball(&self.vecs, cosine);
            self.indexed_len = self.vecs.len();
        }
    }
}

fn build_ball(vecs: &[DenseVector], cosine: bool) -> VectorBallIndex {
    if cosine {
        let normalized: Vec<(u32, DenseVector, f64)> = vecs
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_zero())
            .map(|(j, v)| {
                let (u, r) = unit_probe(v);
                (j as u32, u, r)
            })
            .collect();
        let entries: Vec<(u32, &DenseVector, f64)> =
            normalized.iter().map(|(j, u, r)| (*j, u, *r)).collect();
        VectorBallIndex::build(&entries)
    } else {
        let entries: Vec<(u32, &DenseVector, f64)> = vecs
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_zero())
            .map(|(j, v)| (j as u32, v, 0.0))
            .collect();
        VectorBallIndex::build(&entries)
    }
}

struct DenseFamily {
    encoder: Encoder,
    measure: SemanticMeasure,
    scope: SemanticScope,
    left: DenseSide,
    right: DenseSide,
    scratch: Vec<(f64, u32)>,
}

impl DenseFamily {
    fn prepare(
        left: &EntityCollection,
        right: &EntityCollection,
        encoder: Encoder,
        measure: SemanticMeasure,
        scope: SemanticScope,
    ) -> Self {
        let cosine = matches!(measure, SemanticMeasure::Cosine);
        let encode_all = |c: &EntityCollection| -> Vec<DenseVector> {
            c.profiles
                .iter()
                .map(|p| encoder.encode(&scoped_text(p, &scope)))
                .collect()
        };
        let lv = encode_all(left);
        let rv = encode_all(right);
        DenseFamily {
            encoder,
            measure,
            scope,
            left: DenseSide::build(lv, cosine),
            right: DenseSide::build(rv, cosine),
            scratch: Vec::new(),
        }
    }

    fn score_probe(
        &mut self,
        p: &EntityProfile,
        side: Side,
        dead: &FxHashSet<u32>,
        keep_positive: bool,
        row: &mut TopKRow,
    ) {
        let a = self.encoder.encode(&scoped_text(p, &self.scope));
        if a.is_zero() {
            return;
        }
        let cosine = matches!(self.measure, SemanticMeasure::Cosine);
        let probe_owned;
        let (probe, probe_radius) = if cosine {
            let (u, r) = unit_probe(&a);
            probe_owned = u;
            (&probe_owned, r)
        } else {
            (&a, 0.0)
        };
        let map: fn(f64) -> f64 = if cosine {
            cosine_distance_bound
        } else {
            inverse_distance_bound
        };
        let target = match side {
            Side::Left => &self.right,
            Side::Right => &self.left,
        };
        let measure = self.measure;
        let score = |j: u32, row: &mut TopKRow| -> f64 {
            if dead.contains(&j) {
                return row.admission_bound();
            }
            let w = measure.similarity_vectors(&a, &target.vecs[j as usize]);
            offer(row, j, w, keep_positive)
        };
        generate_ball_candidates(
            &target.ball,
            probe,
            probe_radius,
            &mut self.scratch,
            map,
            row.admission_bound(),
            |j| score(j, row),
        );
        for j in target.indexed_len..target.vecs.len() {
            if target.vecs[j].is_zero() {
                continue;
            }
            score(j as u32, row);
        }
    }

    fn register(&mut self, p: &EntityProfile, side: Side) {
        let v = self.encoder.encode(&scoped_text(p, &self.scope));
        let cosine = matches!(self.measure, SemanticMeasure::Cosine);
        match side {
            Side::Left => self.left.push(v, cosine),
            Side::Right => self.right.push(v, cosine),
        }
    }
}

// ---------------------------------------------------------------------------
// Fallback: singleton-probe re-preparation over the resident collections.
// ---------------------------------------------------------------------------

/// Score a probe through the batch engine with a singleton collection on
/// the probe's side. Re-prepares the branch scorer per call (`O(corpus)`
/// — the documented fallback cost) but sees the *current* collections,
/// so its per-call statistics are fresher than the frozen fast paths'.
#[allow(clippy::too_many_arguments)]
fn fallback_probe(
    left: &EntityCollection,
    right: &EntityCollection,
    function: &SimilarityFunction,
    cfg: &PipelineConfig,
    p: &EntityProfile,
    side: Side,
    dead: &FxHashSet<u32>,
    keep_positive: bool,
    row: &mut TopKRow,
) {
    let singleton = EntityCollection {
        profiles: vec![p.clone()],
        attribute_names: match side {
            Side::Left => left.attribute_names.clone(),
            Side::Right => right.attribute_names.clone(),
        },
    };
    let shards = match side {
        Side::Left => {
            crate::graphgen::score_shards(&singleton, right, function, None, cfg, ScoreMode::Dense)
        }
        Side::Right => {
            crate::graphgen::score_shards(left, &singleton, function, None, cfg, ScoreMode::Dense)
        }
    };
    for (l, r, w) in shards.into_iter().flatten() {
        // The probe's own component carries whatever id its branch
        // assigns (positional or entity id); only the resident side's
        // component is read — it equals the entity id under the
        // positional-id invariant.
        let other = match side {
            Side::Left => r,
            Side::Right => l,
        };
        if dead.contains(&other) {
            continue;
        }
        offer(row, other, w, keep_positive);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphgen::build_graph_topk_framed;
    use crate::CandidateMode;
    use er_core::CsrGraph;
    use er_datasets::{Dataset, DatasetId};
    use er_textsim::NGramScheme;

    fn small_dataset() -> Dataset {
        Dataset::generate(DatasetId::D1, 0.02, 7)
    }

    fn token_fn() -> SimilarityFunction {
        SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::CosineTfIdf,
        }
    }

    /// The reference for one probe: rebuild the graph with the probe in
    /// its collection (frozen-stats drift excluded by construction: the
    /// reference uses the *original* collections plus the probe, so DF
    /// indexes differ — the assertion therefore checks candidate set and
    /// ordering agreement through the shared frame, not bit equality).
    #[test]
    fn left_insert_edges_match_a_fresh_row_scoring() {
        let d = small_dataset();
        let f = token_fn();
        let cfg = PipelineConfig::default();
        let k = 3;
        let (_, _, frame) =
            build_graph_topk_framed(&d.left, &d.right, &f, k, CandidateMode::Indexed, &cfg);
        let mut rs = ResidentScorer::prepare(&d.left, &d.right, &f, k, frame, &cfg);

        // Take an existing left profile's attributes as the new record.
        let mut probe = d.left.profiles[0].clone();
        probe.id = d.left.len() as u32;
        let delta = rs.score_insert(Side::Left, &probe);
        assert_eq!(delta.id, probe.id);
        assert!(delta.edges.len() <= k);
        // The probe duplicates left row 0, whose scored row under the
        // same frozen DF statistics is exactly row 0's edge list.
        let mut reference = TopKRow::new(k);
        match &mut rs.family {
            Family::Token(fam) => {
                let p0 = &d.left.profiles[0];
                fam.score_probe(
                    p0,
                    Side::Left,
                    &FxHashSet::default(),
                    cfg.keep_positive_only,
                    &mut reference,
                );
            }
            _ => unreachable!(),
        }
        let mut expect = Vec::new();
        reference.drain_sorted_into(&mut expect);
        let expect: Vec<(u32, f64)> = expect
            .into_iter()
            .map(|(r, w)| (r, frame.apply(w)))
            .collect();
        assert_eq!(delta.edges, expect);
    }

    #[test]
    fn deltas_apply_cleanly_to_the_built_store() {
        let d = small_dataset();
        let f = token_fn();
        let cfg = PipelineConfig::default();
        let k = 2;
        let (g, _, frame) =
            build_graph_topk_framed(&d.left, &d.right, &f, k, CandidateMode::Indexed, &cfg);
        let mut csr = CsrGraph::from_graph(&g);
        let mut rs = ResidentScorer::prepare(&d.left, &d.right, &f, k, frame, &cfg);

        let mut probe = d.left.profiles[1].clone();
        probe.id = d.left.len() as u32;
        let delta = rs.score_insert(Side::Left, &probe);
        csr.apply(&delta).expect("insert applies");
        assert_eq!(csr.n_left(), d.left.len() as u32 + 1);
        assert_eq!(csr.degree(probe.id), delta.edges.len());

        let mut rprobe = d.right.profiles[2].clone();
        rprobe.id = d.right.len() as u32;
        let rdelta = rs.score_insert(Side::Right, &rprobe);
        csr.apply(&rdelta).expect("right insert applies");
        assert!(rdelta.edges.len() <= k);
        for &(l, w) in &rdelta.edges {
            assert_eq!(csr.weight_of(l, rprobe.id), Some(w));
        }
    }

    #[test]
    fn tombstoned_counterparts_are_never_emitted() {
        let d = small_dataset();
        let f = token_fn();
        let cfg = PipelineConfig::default();
        let k = 5;
        let (_, _, frame) =
            build_graph_topk_framed(&d.left, &d.right, &f, k, CandidateMode::Indexed, &cfg);
        let mut rs = ResidentScorer::prepare(&d.left, &d.right, &f, k, frame, &cfg);

        let mut probe = d.left.profiles[0].clone();
        probe.id = d.left.len() as u32;
        let before = rs.score_insert(Side::Left, &probe);
        // Kill every counterpart the first probe found, then re-probe.
        for &(r, _) in &before.edges {
            rs.mark_deleted(Side::Right, r);
            assert!(!rs.is_live(Side::Right, r));
        }
        let mut probe2 = d.left.profiles[0].clone();
        probe2.id = rs.left().len() as u32;
        let after = rs.score_insert(Side::Left, &probe2);
        for &(r, _) in &after.edges {
            assert!(
                before.edges.iter().all(|&(br, _)| br != r),
                "tombstoned right {r} re-emitted"
            );
        }
    }

    #[test]
    fn char_family_probe_agrees_with_direct_similarity() {
        let d = small_dataset();
        let attribute = d.left.attribute_names[0].clone();
        let f = SimilarityFunction::SchemaBasedSyntactic {
            attribute: attribute.clone(),
            measure: SchemaBasedMeasure::Char(CharMeasure::Levenshtein),
        };
        let cfg = PipelineConfig::default();
        let k = 4;
        let (_, _, frame) =
            build_graph_topk_framed(&d.left, &d.right, &f, k, CandidateMode::Indexed, &cfg);
        let mut rs = ResidentScorer::prepare(&d.left, &d.right, &f, k, frame, &cfg);
        let mut probe = d.left.profiles[3].clone();
        probe.id = d.left.len() as u32;
        let delta = rs.score_insert(Side::Left, &probe);
        let value = probe.value(&attribute).unwrap();
        for &(r, w) in &delta.edges {
            let rv = d.right.profiles[r as usize].value(&attribute).unwrap();
            let raw = CharMeasure::Levenshtein.similarity(value, rv);
            assert!(
                (frame.apply(raw) - w).abs() < 1e-12,
                "edge weight must be the framed direct similarity"
            );
        }
    }

    #[test]
    fn fallback_family_emits_probe_edges() {
        let d = small_dataset();
        let attribute = d.left.attribute_names[0].clone();
        let f = SimilarityFunction::SchemaBasedSyntactic {
            attribute,
            measure: SchemaBasedMeasure::Token(er_textsim::TokenMeasure::Jaccard),
        };
        let cfg = PipelineConfig::default();
        let k = 3;
        let (g, _, frame) =
            build_graph_topk_framed(&d.left, &d.right, &f, k, CandidateMode::Enumerated, &cfg);
        let mut rs = ResidentScorer::prepare(&d.left, &d.right, &f, k, frame, &cfg);
        let mut probe = d.left.profiles[0].clone();
        probe.id = d.left.len() as u32;
        let delta = rs.score_insert(Side::Left, &probe);
        // The probe clones left 0's attributes and the fallback re-scores
        // with fresh per-call statistics over the same corpus, so its top
        // candidate set matches row 0's resident edges.
        let mut resident_row: Vec<u32> = g
            .edges()
            .iter()
            .filter(|e| e.left == 0)
            .map(|e| e.right)
            .collect();
        resident_row.sort_unstable();
        let mut got: Vec<u32> = delta.edges.iter().map(|&(r, _)| r).collect();
        got.sort_unstable();
        assert_eq!(got, resident_row);
    }
}
