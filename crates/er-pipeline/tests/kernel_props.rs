//! Kernel-equivalence property suite: the lane-parallel (SWAR) kernels
//! behind `KernelMode::Lanes` are **bit-identical** to the scalar
//! kernels they replace — not approximately, not "up to an epsilon",
//! but the same integers and the same `f64` bit patterns.
//!
//! Layers covered:
//! * the multi-text Myers batch vs. the scalar bit-parallel pattern
//!   kernel, over arbitrary unicode (beyond-BMP scalars included),
//!   multi-block patterns (> 64 chars), and ragged batch tails;
//! * the batched length/counting-filter screens vs. the scalar
//!   per-candidate bound formulas, for all 7 character measures;
//! * the lane-parallel dense kernels (dot, cosine, Euclidean, the
//!   guarded similarity wrapper) vs. the scalar `DenseVector` geometry,
//!   plus the operand-order symmetry the WMD cache prefill relies on;
//! * whole graphs: for all 7 character measures and the three semantic
//!   measures (cosine, Euclidean, Word Mover's), dense and top-k builds
//!   under `KernelMode::Lanes` equal `KernelMode::Scalar` bit for bit.

use er_core::SimilarityGraph;
use er_datasets::{EntityCollection, EntityProfile};
use er_embed::{lanes as embed_lanes, DenseVector, EmbeddingModel, SemanticMeasure};
use er_pipeline::{
    build_graph_over, build_graph_topk_mode, CandidateMode, KernelMode, PipelineConfig,
    SemanticScope, SimilarityFunction,
};
use er_textsim::lanes::{
    bag_upper_bounds_from_common, length_upper_bounds, sorted_common_counts, MyersBatch, LANE_WIDTH,
};
use er_textsim::{
    sorted_common_count, CharMeasure, MyersPattern, NGramScheme, SchemaBasedMeasure, VectorMeasure,
};
use proptest::prelude::*;

/// An alphabet that spans ASCII, Latin-1, BMP CJK, and beyond-BMP
/// scalars (𝄞 U+1D11E, 😀 U+1F600) — the char kernels operate on
/// unicode scalar values, so supplementary-plane chars must round-trip
/// exactly like ASCII.
const ALPHABET: [char; 10] = ['a', 'b', 'c', 'é', 'ß', 'Ω', '漢', 'か', '𝄞', '😀'];

/// Strings of 0..=max chars from [`ALPHABET`]; `max > 64` forces
/// multi-block Myers patterns with inter-block carries.
fn arb_text(max: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(proptest::sample::select(ALPHABET.to_vec()), 0..=max)
        .prop_map(|cs| cs.into_iter().collect())
}

fn codes(s: &str) -> Vec<u32> {
    s.chars().map(u32::from).collect()
}

fn sorted_bag(s: &str) -> Vec<u32> {
    let mut bag = codes(s);
    bag.sort_unstable();
    bag
}

/// Collections whose "name" values come from the unicode alphabet —
/// small enough for dense reference builds, adversarial enough to hit
/// multi-block patterns and supplementary-plane chars in the pipeline.
fn arb_unicode_collection(max_entities: usize) -> impl Strategy<Value = EntityCollection> {
    proptest::collection::vec(arb_text(70), 1..=max_entities).prop_map(|names| EntityCollection {
        profiles: names
            .into_iter()
            .enumerate()
            .map(|(i, name)| EntityProfile::new(i as u32, vec![("name".to_string(), name)]))
            .collect(),
        attribute_names: vec!["name".into()],
    })
}

fn cfg(kernel: KernelMode) -> PipelineConfig {
    PipelineConfig {
        threads: 1,
        wmd_token_cap: 4,
        kernel_mode: kernel,
        ..PipelineConfig::default()
    }
}

fn assert_bit_identical(a: &SimilarityGraph, b: &SimilarityGraph, what: &str) {
    assert_eq!(a.n_edges(), b.n_edges(), "{what}: edge count");
    for (x, y) in a.edges().iter().zip(b.edges()) {
        assert_eq!((x.left, x.right), (y.left, y.right), "{what}: pair order");
        assert_eq!(
            x.weight.to_bits(),
            y.weight.to_bits(),
            "{what}: weight bits of ({}, {})",
            x.left,
            x.right
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The multi-text Myers batch returns exactly the scalar kernel's
    /// distances for every lane — any pattern length (0, 1..64, and
    /// multi-block > 64), any text lengths (ragged tails), any unicode.
    #[test]
    fn myers_batch_matches_scalar_pattern(
        pattern in arb_text(100),
        texts in proptest::collection::vec(arb_text(100), 1..=LANE_WIDTH),
    ) {
        let pattern = codes(&pattern);
        let text_codes: Vec<Vec<u32>> = texts.iter().map(|t| codes(t)).collect();
        let refs: Vec<&[u32]> = text_codes.iter().map(Vec::as_slice).collect();
        let mut batch = MyersBatch::new();
        batch.prepare(&pattern);
        let mut got = [0usize; LANE_WIDTH];
        batch.distances(&refs, &mut got);
        let mut scalar = MyersPattern::new();
        scalar.prepare(&pattern);
        for (l, t) in text_codes.iter().enumerate() {
            prop_assert_eq!(
                got[l],
                scalar.distance(t),
                "lane {} of {} (pattern {} chars, text {} chars)",
                l,
                refs.len(),
                pattern.len(),
                t.len()
            );
        }
    }

    /// The batched length and counting-filter screens compute the same
    /// `f64` bits as the scalar per-candidate bound calls, for all 7
    /// character measures (q-grams' missing bag bound maps to +∞, which
    /// never prunes — the scalar `None` behaviour).
    #[test]
    fn bound_screens_match_scalar_bits(
        a in arb_text(80),
        bs in proptest::collection::vec(arb_text(80), 1..=LANE_WIDTH),
    ) {
        let bag_a = sorted_bag(&a);
        let bags: Vec<Vec<u32>> = bs.iter().map(|b| sorted_bag(b)).collect();
        let refs: Vec<&[u32]> = bags.iter().map(Vec::as_slice).collect();
        let lens: Vec<usize> = bags.iter().map(Vec::len).collect();
        let la = bag_a.len();
        let mut commons = [0usize; LANE_WIDTH];
        sorted_common_counts(&bag_a, &refs, &mut commons[..refs.len()]);
        for (l, bag_b) in bags.iter().enumerate() {
            prop_assert_eq!(commons[l], sorted_common_count(&bag_a, bag_b));
        }
        for m in CharMeasure::all() {
            let mut len_ub = [0.0f64; LANE_WIDTH];
            length_upper_bounds(m, la, &lens, &mut len_ub[..lens.len()]);
            let mut bag_ub = [0.0f64; LANE_WIDTH];
            bag_upper_bounds_from_common(
                m,
                &commons[..lens.len()],
                la,
                &lens,
                &mut bag_ub[..lens.len()],
            );
            for (l, bag_b) in bags.iter().enumerate() {
                prop_assert_eq!(
                    len_ub[l].to_bits(),
                    m.length_upper_bound(la, lens[l]).to_bits(),
                    "{:?} length bound lane {}",
                    m,
                    l
                );
                match m.bag_upper_bound(&bag_a, bag_b) {
                    Some(ub) => prop_assert_eq!(
                        bag_ub[l].to_bits(),
                        ub.to_bits(),
                        "{:?} bag bound lane {}",
                        m,
                        l
                    ),
                    None => prop_assert_eq!(bag_ub[l], f64::INFINITY),
                }
            }
        }
    }

    /// The lane-parallel dense kernels equal the scalar `DenseVector`
    /// geometry bit for bit — including zero vectors (the guarded
    /// similarity wrapper) and ragged batches. Also pins the symmetry
    /// `‖a − b‖ ≡ ‖b − a‖` at the bit level: the WMD cache prefill
    /// computes distances probe-first while the scalar cache computes
    /// them in canonical key order, and this is why the two fills agree.
    #[test]
    fn dense_lane_kernels_match_scalar_bits(
        a in proptest::collection::vec(-1000.0f32..1000.0, 5),
        bs in proptest::collection::vec(
            (0usize..6, proptest::collection::vec(-1000.0f32..1000.0, 5)),
            1..=embed_lanes::LANE_WIDTH,
        ),
    ) {
        let a = DenseVector(a);
        // Selector 0 swaps in a zero vector (~1 lane in 6), exercising
        // the guarded similarity wrapper's zero cases.
        let bs: Vec<DenseVector> = bs
            .into_iter()
            .map(|(z, v)| if z == 0 { DenseVector::zeros(5) } else { DenseVector(v) })
            .collect();
        let refs: Vec<&DenseVector> = bs.iter().collect();
        let mut out = [0.0f64; embed_lanes::LANE_WIDTH];
        embed_lanes::dot_batch(&a, &refs, &mut out);
        for (l, b) in bs.iter().enumerate() {
            prop_assert_eq!(out[l].to_bits(), a.dot(b).to_bits(), "dot lane {}", l);
        }
        embed_lanes::cosine_batch(&a, &refs, &mut out);
        for (l, b) in bs.iter().enumerate() {
            prop_assert_eq!(out[l].to_bits(), a.cosine(b).to_bits(), "cosine lane {}", l);
        }
        embed_lanes::euclidean_distance_batch(&a, &refs, &mut out);
        for (l, b) in bs.iter().enumerate() {
            prop_assert_eq!(
                out[l].to_bits(),
                a.euclidean_distance(b).to_bits(),
                "distance lane {}",
                l
            );
            prop_assert_eq!(
                a.euclidean_distance(b).to_bits(),
                b.euclidean_distance(&a).to_bits(),
                "operand-order symmetry lane {}",
                l
            );
        }
        for m in [SemanticMeasure::Cosine, SemanticMeasure::Euclidean] {
            embed_lanes::similarity_vectors_batch(m, &a, &refs, &mut out);
            for (l, b) in bs.iter().enumerate() {
                prop_assert_eq!(
                    out[l].to_bits(),
                    m.similarity_vectors(&a, b).to_bits(),
                    "{} lane {}",
                    m.name(),
                    l
                );
            }
        }
    }
}

proptest! {
    // Whole-graph equivalence builds dense reference graphs per measure,
    // so fewer, larger cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// End to end: for all 7 character measures and the three semantic
    /// measures, both the dense build and the pruned top-k build (both
    /// candidate modes) produce bit-identical graphs under
    /// `KernelMode::Lanes` and `KernelMode::Scalar`. The unicode
    /// collections include > 64-char values (multi-block Myers) and
    /// supplementary-plane chars; right-side counts indivisible by the
    /// lane width exercise ragged tails through every chunked path.
    #[test]
    fn graphs_are_bit_identical_across_kernel_modes(
        left in arb_unicode_collection(5),
        right in arb_unicode_collection(7),
        k in 1usize..=2,
    ) {
        let mut functions: Vec<SimilarityFunction> = CharMeasure::all()
            .into_iter()
            .map(|m| SimilarityFunction::SchemaBasedSyntactic {
                attribute: "name".into(),
                measure: SchemaBasedMeasure::Char(m),
            })
            .collect();
        for measure in [
            SemanticMeasure::Cosine,
            SemanticMeasure::Euclidean,
            SemanticMeasure::WordMovers,
        ] {
            functions.push(SimilarityFunction::Semantic {
                model: EmbeddingModel::FastText,
                measure,
                scope: SemanticScope::SchemaAgnostic,
            });
        }
        // Token-vector cosine: the weighted-postings dot accumulator
        // must add candidate products in exactly the sorted-merge order.
        functions.push(SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::CosineTfIdf,
        });
        functions.push(SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Char(3),
            measure: VectorMeasure::CosineTf,
        });
        for function in functions {
            let dense_scalar =
                build_graph_over(&left, &right, &function, &cfg(KernelMode::Scalar));
            let dense_lanes = build_graph_over(&left, &right, &function, &cfg(KernelMode::Lanes));
            assert_bit_identical(
                &dense_scalar,
                &dense_lanes,
                &format!("{} dense", function.name()),
            );
            for mode in [CandidateMode::Enumerated, CandidateMode::Indexed] {
                let (topk_scalar, _) = build_graph_topk_mode(
                    &left,
                    &right,
                    &function,
                    k,
                    mode,
                    &cfg(KernelMode::Scalar),
                );
                let (topk_lanes, _) = build_graph_topk_mode(
                    &left,
                    &right,
                    &function,
                    k,
                    mode,
                    &cfg(KernelMode::Lanes),
                );
                assert_bit_identical(
                    &topk_scalar,
                    &topk_lanes,
                    &format!("{} topk k={k} mode={mode:?}", function.name()),
                );
            }
        }
    }
}
