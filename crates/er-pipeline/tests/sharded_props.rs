//! Property tests for the out-of-core sharded construction path
//! (`er_pipeline::sharded`).
//!
//! Invariants:
//! 1. **bit identity**: `build_graph_sharded` followed by
//!    `MappedCsr::to_csr` equals `CsrGraph::from_graph` over the in-RAM
//!    `build_graph_topk_mode` graph — same edges, same order, same
//!    weight bits — for every taxonomy branch, across shard sizes
//!    (including 1-row shards and shards larger than the input), thread
//!    counts, and both candidate modes;
//! 2. **normalization frame identity**: the frame folded from per-shard
//!    bounds equals the in-RAM build's frame (`NormFrame` is `PartialEq`
//!    over its raw `f64` fields, so this is a bitwise statement);
//! 3. **resident budget**: peak resident edges never exceed the
//!    configured admission budget (`shard_rows × k`, doubled when the
//!    build pipelines scoring against spilling), and the spill/merge
//!    accounting is consistent with the retained edge count;
//! 4. **pipelining and merge parallelism are invisible in the bytes**:
//!    the serial build, the pipelined build, and every merge-worker
//!    count produce *byte-identical* store files — sort-order column,
//!    checksum and all — and identical normalization frames.

use er_core::CsrGraph;
use er_datasets::{EntityCollection, EntityProfile};
use er_embed::{EmbeddingModel, SemanticMeasure};
use er_pipeline::{
    build_graph_sharded, build_graph_topk_framed, CandidateMode, PipelineConfig, SemanticScope,
    ShardedConfig, SimilarityFunction,
};
use er_textsim::{CharMeasure, GraphSimilarity, NGramScheme, SchemaBasedMeasure, VectorMeasure};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static NEXT_DIR: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ccer-sharded-props-{}-{}",
        std::process::id(),
        NEXT_DIR.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const VOCAB: [&str; 10] = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
];

fn arb_collection(max_entities: usize) -> impl Strategy<Value = EntityCollection> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0usize..VOCAB.len(), 0..4),
            proptest::collection::vec(0usize..VOCAB.len(), 0..3),
        ),
        1..=max_entities,
    )
    .prop_map(|entities| EntityCollection {
        profiles: entities
            .into_iter()
            .enumerate()
            .map(|(i, (name, desc))| {
                let text = |toks: Vec<usize>| -> String {
                    toks.into_iter()
                        .map(|t| VOCAB[t])
                        .collect::<Vec<_>>()
                        .join(" ")
                };
                let mut attrs = vec![("name".to_string(), text(name))];
                if !desc.is_empty() {
                    attrs.push(("desc".to_string(), text(desc)));
                }
                EntityProfile::new(i as u32, attrs)
            })
            .collect(),
        attribute_names: vec!["name".into(), "desc".into()],
    })
}

fn branch_representatives() -> Vec<SimilarityFunction> {
    vec![
        SimilarityFunction::SchemaBasedSyntactic {
            attribute: "name".into(),
            measure: SchemaBasedMeasure::Char(CharMeasure::Levenshtein),
        },
        SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::CosineTfIdf,
        },
        SimilarityFunction::SchemaAgnosticGraph {
            scheme: NGramScheme::Char(3),
            measure: GraphSimilarity::Value,
        },
        SimilarityFunction::Semantic {
            model: EmbeddingModel::FastText,
            measure: SemanticMeasure::Cosine,
            scope: SemanticScope::SchemaAgnostic,
        },
        SimilarityFunction::Semantic {
            model: EmbeddingModel::Albert,
            measure: SemanticMeasure::WordMovers,
            scope: SemanticScope::SchemaBased {
                attribute: "name".into(),
            },
        },
    ]
}

fn cfg(threads: usize) -> PipelineConfig {
    PipelineConfig {
        threads,
        chunk_rows: 2,
        wmd_token_cap: 4,
        ..PipelineConfig::default()
    }
}

/// Exact comparison of the read-back store against the in-RAM build.
fn assert_sharded_matches_ram(
    left: &EntityCollection,
    right: &EntityCollection,
    function: &SimilarityFunction,
    k: usize,
    mode: CandidateMode,
    config: &PipelineConfig,
    shard_rows: usize,
) {
    let (ram_graph, ram_stats, ram_frame) =
        build_graph_topk_framed(left, right, function, k, mode, config);
    let want = CsrGraph::from_graph(&ram_graph);

    let dir = scratch_dir();
    let out = dir.join("graph.slab");
    let sharding = ShardedConfig::new(shard_rows, dir.join("spills"));
    let (mapped, stats, frame) =
        build_graph_sharded(left, right, function, k, mode, config, &sharding, &out)
            .expect("sharded build succeeds");

    let what = format!(
        "{} k={k} shard_rows={shard_rows} mode={mode:?}",
        function.name()
    );
    assert_eq!(mapped.to_csr(), want, "{what}: bit-identical store");
    assert!(
        mapped.has_sort_order(),
        "{what}: sharded builds persist the sort-order column"
    );
    assert!(stats.merge_workers >= 1, "{what}: merge ran");
    assert_eq!(frame, ram_frame, "{what}: identical normalization frame");
    assert_eq!(stats.retained_edges, want.n_edges(), "{what}: retained");
    assert_eq!(
        stats.generated_pairs, ram_stats.generated_pairs,
        "{what}: same candidate stream"
    );
    assert!(
        stats.peak_resident_edges <= stats.resident_budget_edges,
        "{what}: peak {} exceeds shard budget {}",
        stats.peak_resident_edges,
        stats.resident_budget_edges
    );
    assert_eq!(
        stats.spilled_triples, stats.retained_edges,
        "{what}: every retained edge passed through a spill"
    );
    assert_eq!(stats.spilled_bytes, stats.spilled_triples * 16);
    // The scorer's row count can undershoot `left.len()` (schema-based
    // branches skip rows without the focus attribute), so the shard
    // count is bounded, not exact.
    assert!(
        stats.shards <= left.len().div_ceil(shard_rows),
        "{what}: {} shards for {} rows",
        stats.shards,
        left.len()
    );
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Invariants 1-3 across every taxonomy branch, with shard sizes
    /// spanning degenerate (1 row per shard) through larger-than-input.
    #[test]
    fn sharded_build_is_bit_identical_to_ram_build(
        left in arb_collection(6),
        right in arb_collection(6),
        shard_rows in 1usize..=8,
        k in 1usize..=3,
    ) {
        for function in branch_representatives() {
            assert_sharded_matches_ram(
                &left,
                &right,
                &function,
                k,
                CandidateMode::Enumerated,
                &cfg(1),
                shard_rows,
            );
        }
    }

    /// Indexed candidate generation and multi-threaded scoring change
    /// nothing: the spilled/merged store still equals the in-RAM graph.
    #[test]
    fn sharded_build_is_stable_across_modes_and_threads(
        left in arb_collection(6),
        right in arb_collection(6),
        threads in 2usize..=4,
        shard_rows in 1usize..=5,
    ) {
        let function = SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::CosineTfIdf,
        };
        for mode in [CandidateMode::Enumerated, CandidateMode::Indexed] {
            assert_sharded_matches_ram(
                &left,
                &right,
                &function,
                2,
                mode,
                &cfg(threads),
                shard_rows,
            );
        }
    }

    /// Invariant 4: serial vs pipelined, and 1 vs many merge workers —
    /// every combination writes the same file, byte for byte, and equals
    /// the in-RAM build.
    #[test]
    fn pipelining_and_merge_parallelism_preserve_bytes(
        left in arb_collection(8),
        right in arb_collection(8),
        shard_rows in 1usize..=4,
        merge_threads in 2usize..=4,
    ) {
        let function = SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::CosineTfIdf,
        };
        let k = 2;
        let config = cfg(2);
        let (ram_graph, _, ram_frame) =
            build_graph_topk_framed(&left, &right, &function, k, CandidateMode::Indexed, &config);
        let want = CsrGraph::from_graph(&ram_graph);

        let dir = scratch_dir();
        let mut variants = Vec::new();
        for (tag, sharding) in [
            ("serial", ShardedConfig::serial(shard_rows, dir.join("sp-serial"))),
            ("pipelined-1", {
                let mut s = ShardedConfig::new(shard_rows, dir.join("sp-p1"));
                s.merge_threads = 1;
                s
            }),
            ("pipelined-n", {
                let mut s = ShardedConfig::new(shard_rows, dir.join("sp-pn"));
                s.merge_threads = merge_threads;
                s
            }),
        ] {
            let out = dir.join(format!("{tag}.slab"));
            let (mapped, stats, frame) = build_graph_sharded(
                &left, &right, &function, k, CandidateMode::Indexed, &config, &sharding, &out,
            )
            .expect("sharded build succeeds");
            prop_assert_eq!(mapped.to_csr(), want.clone(), "{}: store equals RAM build", tag);
            prop_assert_eq!(frame, ram_frame, "{}: frame", tag);
            prop_assert!(
                stats.peak_resident_edges <= stats.resident_budget_edges,
                "{}: peak {} over budget {}",
                tag, stats.peak_resident_edges, stats.resident_budget_edges
            );
            let expected_budget = shard_rows * k * if sharding.pipelined { 2 } else { 1 };
            prop_assert_eq!(stats.resident_budget_edges, expected_budget, "{}: budget", tag);
            drop(mapped);
            variants.push((tag, std::fs::read(&out).unwrap(), stats));
        }
        let (_, base_bytes, base_stats) = &variants[0];
        for (tag, bytes, stats) in &variants[1..] {
            prop_assert_eq!(
                bytes, base_bytes,
                "{} file differs from the serial build", tag
            );
            prop_assert_eq!(stats.retained_edges, base_stats.retained_edges);
            prop_assert_eq!(stats.spilled_triples, base_stats.spilled_triples);
            prop_assert_eq!(stats.shards, base_stats.shards);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
