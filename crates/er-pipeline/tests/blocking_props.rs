//! Property-based tests for the blocking stack.
//!
//! Invariants:
//! 1. token blocking is *complete* for token sharing: a cross pair is a
//!    candidate iff the two entities share at least one normalized token;
//! 2. purging and filtering only ever shrink the candidate set, and
//!    filtering is monotone in its ratio;
//! 3. every restricted-graph edge is a candidate pair and carries its
//!    original weight;
//! 4. the quality measures stay in range and reduction ratio reflects the
//!    candidate count exactly.

use er_core::{FxHashSet, GraphBuilder, GroundTruth};
use er_datasets::{EntityCollection, EntityProfile};
use er_pipeline::blocking::{blocking_quality, restrict_graph, token_blocking};
use proptest::prelude::*;

/// A vocabulary of short distinct tokens.
const VOCAB: [&str; 12] = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
    "lambda", "mu",
];

fn arb_collection(max_entities: usize) -> impl Strategy<Value = EntityCollection> {
    proptest::collection::vec(
        proptest::collection::vec(0usize..VOCAB.len(), 0..5),
        1..=max_entities,
    )
    .prop_map(|entities| EntityCollection {
        profiles: entities
            .into_iter()
            .enumerate()
            .map(|(i, toks)| {
                let text: Vec<&str> = toks.into_iter().map(|t| VOCAB[t]).collect();
                EntityProfile::new(i as u32, vec![("name".into(), text.join(" "))])
            })
            .collect(),
        attribute_names: vec!["name".into()],
    })
}

fn token_set(p: &EntityProfile) -> FxHashSet<String> {
    p.values()
        .flat_map(|v| {
            er_textsim::tokenize::tokens(&er_textsim::tokenize::normalize_text(v))
                .into_iter()
                .map(str::to_string)
                .collect::<Vec<_>>()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn candidates_are_exactly_token_sharing_pairs(
        left in arb_collection(8),
        right in arb_collection(8),
    ) {
        let cands = token_blocking(&left, &right).candidate_pairs();
        for (l, lp) in left.profiles.iter().enumerate() {
            let lt = token_set(lp);
            for (r, rp) in right.profiles.iter().enumerate() {
                let shares = token_set(rp).iter().any(|t| lt.contains(t));
                prop_assert_eq!(
                    cands.contains(&(l as u32, r as u32)),
                    shares,
                    "pair ({}, {}) candidacy mismatch", l, r
                );
            }
        }
    }

    #[test]
    fn purge_and_filter_only_shrink(
        left in arb_collection(8),
        right in arb_collection(8),
        cap in 1u64..20,
        ratio in 0.1f64..1.0,
    ) {
        let bc = token_blocking(&left, &right);
        let all = bc.candidate_pairs();
        let purged = bc.clone().purge(cap).candidate_pairs();
        prop_assert!(purged.is_subset(&all));
        let filtered = bc.clone().filter(ratio).candidate_pairs();
        prop_assert!(filtered.is_subset(&all));
        // Monotonicity in the filter ratio.
        let tighter = bc.filter(ratio / 2.0).candidate_pairs();
        prop_assert!(tighter.is_subset(&filtered));
    }

    #[test]
    fn restricted_graph_edges_are_candidates(
        left in arb_collection(6),
        right in arb_collection(6),
    ) {
        // Score every pair 0.5 and restrict by the blocks.
        let (nl, nr) = (left.len() as u32, right.len() as u32);
        let mut b = GraphBuilder::new(nl, nr);
        for l in 0..nl {
            for r in 0..nr {
                b.add_edge(l, r, 0.5).unwrap();
            }
        }
        let g = b.build();
        let cands = token_blocking(&left, &right).candidate_pairs();
        let rg = restrict_graph(&g, &cands);
        prop_assert_eq!(rg.n_edges(), cands.len());
        for e in rg.edges() {
            prop_assert!(cands.contains(&(e.left, e.right)));
            prop_assert_eq!(e.weight, 0.5);
        }
    }

    #[test]
    fn quality_measures_are_bounded(
        left in arb_collection(8),
        right in arb_collection(8),
        n_truth in 0usize..6,
    ) {
        let (nl, nr) = (left.len() as u32, right.len() as u32);
        // Ground truth must be one-to-one (clean collections).
        let truth: Vec<(u32, u32)> = (0..(n_truth as u32).min(nl).min(nr))
            .map(|i| (i, i))
            .collect();
        let gt = GroundTruth::new(truth);
        let cands = token_blocking(&left, &right).candidate_pairs();
        let q = blocking_quality(&cands, &gt, nl, nr);
        prop_assert!((0.0..=1.0).contains(&q.pairs_completeness));
        prop_assert!((0.0..=1.0).contains(&q.pairs_quality));
        prop_assert!((0.0..=1.0).contains(&q.reduction_ratio));
        prop_assert_eq!(q.n_candidates, cands.len() as u64);
        let expect_rr = 1.0 - cands.len() as f64 / (nl as f64 * nr as f64);
        prop_assert!((q.reduction_ratio - expect_rr).abs() < 1e-12);
    }
}
