//! Property-based tests for the parallel similarity-graph construction
//! engine.
//!
//! Invariants:
//! 1. parallel construction is **bit-identical** to the serial path
//!    (same edges, same order, same weight bits) for every branch of the
//!    similarity-function taxonomy, across thread counts and chunk sizes;
//! 2. the candidate-restricted fast path scores exactly the candidate
//!    edge set (equal to `restrict_graph` over the full build) and is
//!    itself bit-identical across thread counts;
//! 3. the prepared output's sorted edge view equals a from-scratch
//!    `sorted_edges()` of the same graph;
//! 4. every normalized weight is finite, in `[0, 1]`, and positive under
//!    `keep_positive_only` (the 0.0-floor normalization contract);
//! 5. the streaming top-k path is bit-identical to dense-then-prune
//!    (`build_graph` + `pruned_top_k`) for finite `k`, reproduces the
//!    dense edge set at `k = ∞`, holds its `O(n_left × k)` peak-resident
//!    bound, and is itself bit-identical across thread counts;
//! 6. **bound-driven scoring is exact**: for every character-level
//!    measure and the Word Mover's branch — the scorers that prune
//!    candidates against the sink's admission bound (length/bag filters,
//!    banded edit-distance cutoffs, centroid bounds, transport
//!    short-circuits) — the pruned top-k build remains bit-identical to
//!    dense-then-prune for `threads ∈ {1, 4}`, and the offered/pruned/
//!    scored accounting stays consistent;
//! 7. **kernel modes are equivalent**: `KernelMode::Lanes` (batched
//!    screens, multi-text Myers, lane-parallel dense kernels, batched
//!    WMD cache fills) builds bit-identical top-k graphs to
//!    `KernelMode::Scalar` for every bounded scorer, across both
//!    candidate modes and `threads ∈ {1, 4}`.

use er_core::{FxHashSet, SimilarityGraph};
use er_datasets::{EntityCollection, EntityProfile};
use er_embed::{EmbeddingModel, SemanticMeasure};
use er_pipeline::blocking::{restrict_graph, token_blocking};
use er_pipeline::{
    build_graph_over, build_graph_restricted, build_graph_topk_mode, build_graph_topk_over,
    build_graph_topk_stats, build_prepared_over, CandidateMode, KernelMode, PipelineConfig,
    SemanticScope, SimilarityFunction,
};
use er_textsim::{CharMeasure, GraphSimilarity, NGramScheme, SchemaBasedMeasure, VectorMeasure};
use proptest::prelude::*;

/// A vocabulary of short distinct tokens.
const VOCAB: [&str; 10] = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
];

/// Collections of 1..=max entities with a "name" attribute (always) and a
/// "desc" attribute (missing when its token list is empty, exercising the
/// attribute filter).
fn arb_collection(max_entities: usize) -> impl Strategy<Value = EntityCollection> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0usize..VOCAB.len(), 0..4),
            proptest::collection::vec(0usize..VOCAB.len(), 0..3),
        ),
        1..=max_entities,
    )
    .prop_map(|entities| EntityCollection {
        profiles: entities
            .into_iter()
            .enumerate()
            .map(|(i, (name, desc))| {
                let text = |toks: Vec<usize>| -> String {
                    toks.into_iter()
                        .map(|t| VOCAB[t])
                        .collect::<Vec<_>>()
                        .join(" ")
                };
                let mut attrs = vec![("name".to_string(), text(name))];
                if !desc.is_empty() {
                    attrs.push(("desc".to_string(), text(desc)));
                }
                EntityProfile::new(i as u32, attrs)
            })
            .collect(),
        attribute_names: vec!["name".into(), "desc".into()],
    })
}

/// One representative function per taxonomy branch (the WMD variant covers
/// the token-vector semantic sub-path with its per-worker distance cache).
fn branch_representatives() -> Vec<SimilarityFunction> {
    vec![
        SimilarityFunction::SchemaBasedSyntactic {
            attribute: "name".into(),
            measure: SchemaBasedMeasure::Char(CharMeasure::Levenshtein),
        },
        SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::CosineTfIdf,
        },
        SimilarityFunction::SchemaAgnosticGraph {
            scheme: NGramScheme::Char(3),
            measure: GraphSimilarity::Value,
        },
        SimilarityFunction::Semantic {
            model: EmbeddingModel::FastText,
            measure: SemanticMeasure::Cosine,
            scope: SemanticScope::SchemaAgnostic,
        },
        SimilarityFunction::Semantic {
            model: EmbeddingModel::Albert,
            measure: SemanticMeasure::WordMovers,
            scope: SemanticScope::SchemaBased {
                attribute: "name".into(),
            },
        },
    ]
}

fn serial_cfg() -> PipelineConfig {
    PipelineConfig {
        threads: 1,
        wmd_token_cap: 4,
        ..PipelineConfig::default()
    }
}

fn parallel_cfg(threads: usize, chunk_rows: usize) -> PipelineConfig {
    PipelineConfig {
        threads,
        chunk_rows,
        wmd_token_cap: 4,
        ..PipelineConfig::default()
    }
}

/// Exact comparison: edge sequence and weight bits.
fn assert_bit_identical(a: &SimilarityGraph, b: &SimilarityGraph, what: &str) {
    assert_eq!(a.n_left(), b.n_left(), "{what}: n_left");
    assert_eq!(a.n_right(), b.n_right(), "{what}: n_right");
    assert_eq!(a.n_edges(), b.n_edges(), "{what}: edge count");
    for (x, y) in a.edges().iter().zip(b.edges()) {
        assert_eq!((x.left, x.right), (y.left, y.right), "{what}: pair order");
        assert_eq!(
            x.weight.to_bits(),
            y.weight.to_bits(),
            "{what}: weight bits of ({}, {})",
            x.left,
            x.right
        );
    }
}

fn assert_weights_normalized(g: &SimilarityGraph, what: &str) {
    for e in g.edges() {
        assert!(
            e.weight.is_finite() && e.weight > 0.0 && e.weight <= 1.0,
            "{what}: weight {} of ({}, {}) outside (0, 1]",
            e.weight,
            e.left,
            e.right
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariants 1 and 4: parallel ≡ serial, bit for bit, for every
    /// taxonomy branch, under an awkward chunk size (forcing multi-chunk
    /// merges) and an oversubscribed thread count.
    #[test]
    fn parallel_construction_matches_serial(
        left in arb_collection(6),
        right in arb_collection(6),
        threads in 2usize..=5,
        chunk_rows in 1usize..=3,
    ) {
        for function in branch_representatives() {
            let serial = build_graph_over(&left, &right, &function, &serial_cfg());
            let parallel =
                build_graph_over(&left, &right, &function, &parallel_cfg(threads, chunk_rows));
            assert_bit_identical(&serial, &parallel, &function.name());
            assert_weights_normalized(&serial, &function.name());
        }
    }

    /// Invariant 2: the restricted fast path scores exactly the candidate
    /// edges of the full graph, and parallel restricted ≡ serial
    /// restricted bit for bit.
    #[test]
    fn restricted_path_matches_full_restriction(
        left in arb_collection(6),
        right in arb_collection(6),
        threads in 2usize..=4,
    ) {
        let candidates = token_blocking(&left, &right).candidate_pairs();
        for function in branch_representatives() {
            let serial =
                build_graph_restricted(&left, &right, &function, &candidates, &serial_cfg());
            let parallel = build_graph_restricted(
                &left,
                &right,
                &function,
                &candidates,
                &parallel_cfg(threads, 2),
            );
            assert_bit_identical(&serial, &parallel, &function.name());

            let full = build_graph_over(&left, &right, &function, &serial_cfg());
            let via_restrict = restrict_graph(&full, &candidates);
            let pair_set = |g: &SimilarityGraph| -> FxHashSet<(u32, u32)> {
                g.edges().iter().map(|e| (e.left, e.right)).collect()
            };
            assert_eq!(
                pair_set(&serial),
                pair_set(&via_restrict),
                "{}: restricted edge set equals full ∩ candidates",
                function.name()
            );
            assert_weights_normalized(&serial, &function.name());
        }
    }

    /// Invariant 5: streaming top-k ≡ dense-then-prune for every branch,
    /// bit for bit; `k = ∞` reproduces the dense edge set; parallel ≡
    /// serial; the peak-resident accounting never exceeds `n_left × k`.
    #[test]
    fn topk_streaming_matches_dense_then_prune(
        left in arb_collection(6),
        right in arb_collection(6),
        threads in 2usize..=4,
        k in 1usize..=3,
    ) {
        for function in branch_representatives() {
            let dense = build_graph_over(&left, &right, &function, &serial_cfg());
            let (streamed, stats) =
                build_graph_topk_stats(&left, &right, &function, k, &serial_cfg());
            assert_bit_identical(
                &dense.pruned_top_k(k),
                &streamed,
                &format!("{} topk k={k}", function.name()),
            );
            prop_assert!(stats.peak_resident_edges <= left.len() * k);
            prop_assert_eq!(stats.retained_edges, streamed.n_edges());

            let parallel =
                build_graph_topk_over(&left, &right, &function, k, &parallel_cfg(threads, 2));
            assert_bit_identical(
                &streamed,
                &parallel,
                &format!("{} topk parallel k={k}", function.name()),
            );

            let unbounded =
                build_graph_topk_over(&left, &right, &function, usize::MAX, &serial_cfg());
            let canon = |g: &SimilarityGraph| -> Vec<(u32, u32, u64)> {
                let mut v: Vec<_> = g
                    .edges()
                    .iter()
                    .map(|e| (e.left, e.right, e.weight.to_bits()))
                    .collect();
                v.sort_unstable();
                v
            };
            prop_assert_eq!(
                canon(&dense),
                canon(&unbounded),
                "{}: k = ∞ reproduces the dense edge set",
                function.name()
            );
        }
    }

    /// Invariant 6: prune-aware scoring never changes a bit. Every
    /// measure with upper bounds (all 7 character measures, Word
    /// Mover's) builds the same top-k graph as the unpruned
    /// dense-then-prune flow, serially and with 4 workers; small `k`
    /// keeps the admission bound tight so pruning actually fires.
    #[test]
    fn prune_aware_topk_is_exact_for_bounded_scorers(
        left in arb_collection(6),
        right in arb_collection(6),
        k in 1usize..=2,
    ) {
        let mut functions: Vec<SimilarityFunction> = CharMeasure::all()
            .into_iter()
            .map(|m| SimilarityFunction::SchemaBasedSyntactic {
                attribute: "name".into(),
                measure: SchemaBasedMeasure::Char(m),
            })
            .collect();
        functions.push(SimilarityFunction::Semantic {
            model: EmbeddingModel::FastText,
            measure: SemanticMeasure::WordMovers,
            scope: SemanticScope::SchemaBased {
                attribute: "name".into(),
            },
        });
        for function in functions {
            let dense = build_graph_over(&left, &right, &function, &serial_cfg());
            let (streamed, stats) =
                build_graph_topk_stats(&left, &right, &function, k, &serial_cfg());
            assert_bit_identical(
                &dense.pruned_top_k(k),
                &streamed,
                &format!("{} pruned topk k={k}", function.name()),
            );
            let parallel =
                build_graph_topk_over(&left, &right, &function, k, &parallel_cfg(4, 2));
            assert_bit_identical(
                &streamed,
                &parallel,
                &format!("{} pruned topk 4 threads k={k}", function.name()),
            );
            // Accounting consistency: every emitted candidate was fully
            // scored, and pruned candidates were never emitted.
            prop_assert!(
                stats.offered_edges <= stats.scored_pairs,
                "{}: offered {} > scored {}",
                function.name(),
                stats.offered_edges,
                stats.scored_pairs
            );
            prop_assert!(stats.retained_edges <= stats.offered_edges);
        }
    }

    /// Invariant 7: the lane kernels never change a bit. For every
    /// bounded scorer family (all 7 character measures, Word Mover's,
    /// dense cosine), `build_graph_topk_mode` under `KernelMode::Lanes`
    /// equals `KernelMode::Scalar` bit for bit — across both candidate
    /// modes (enumeration and index-driven generation) and
    /// `threads ∈ {1, 4}`. Small `k` keeps the admission bound tight, so
    /// the stale-bound lane screens and buffered index flushes actually
    /// diverge from the scalar pruning *decisions* while the retained
    /// graphs must not.
    #[test]
    fn lane_kernels_match_scalar_kernels(
        left in arb_collection(6),
        right in arb_collection(6),
        k in 1usize..=2,
    ) {
        let mut functions: Vec<SimilarityFunction> = CharMeasure::all()
            .into_iter()
            .map(|m| SimilarityFunction::SchemaBasedSyntactic {
                attribute: "name".into(),
                measure: SchemaBasedMeasure::Char(m),
            })
            .collect();
        functions.push(SimilarityFunction::Semantic {
            model: EmbeddingModel::FastText,
            measure: SemanticMeasure::WordMovers,
            scope: SemanticScope::SchemaBased {
                attribute: "name".into(),
            },
        });
        functions.push(SimilarityFunction::Semantic {
            model: EmbeddingModel::FastText,
            measure: SemanticMeasure::Cosine,
            scope: SemanticScope::SchemaAgnostic,
        });
        // The token-vector cosine branch has its own lane path (the
        // weighted-postings dot accumulator in `VectorScorer`).
        functions.push(SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::CosineTfIdf,
        });
        functions.push(SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Char(2),
            measure: VectorMeasure::CosineTf,
        });
        let with_kernel = |base: &PipelineConfig, kernel: KernelMode| PipelineConfig {
            kernel_mode: kernel,
            ..base.clone()
        };
        for function in functions {
            for mode in [CandidateMode::Enumerated, CandidateMode::Indexed] {
                let (scalar, _) = build_graph_topk_mode(
                    &left,
                    &right,
                    &function,
                    k,
                    mode,
                    &with_kernel(&serial_cfg(), KernelMode::Scalar),
                );
                for threads in [1usize, 4] {
                    let (lanes, _) = build_graph_topk_mode(
                        &left,
                        &right,
                        &function,
                        k,
                        mode,
                        &with_kernel(&parallel_cfg(threads, 2), KernelMode::Lanes),
                    );
                    assert_bit_identical(
                        &scalar,
                        &lanes,
                        &format!(
                            "{} lanes≡scalar mode={mode:?} threads={threads} k={k}",
                            function.name()
                        ),
                    );
                }
            }
        }
    }

    /// Invariant 3: the prepared output's sorted view is exactly the
    /// graph's sorted edge view — no divergence from sorting at emit time.
    #[test]
    fn prepared_output_sorted_view_is_canonical(
        left in arb_collection(6),
        right in arb_collection(6),
        threads in 1usize..=4,
    ) {
        let function = SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure: VectorMeasure::Jaccard,
        };
        let built = build_prepared_over(&left, &right, &function, &parallel_cfg(threads, 2));
        let reference = built.graph.sorted_edges();
        prop_assert_eq!(built.sorted.len(), built.graph.n_edges());
        for (a, b) in built.sorted.all().iter().zip(reference.all()) {
            prop_assert_eq!((a.left, a.right), (b.left, b.right));
            prop_assert_eq!(a.weight.to_bits(), b.weight.to_bits());
        }
    }
}
