//! Property-based tests for **index-driven candidate generation**
//! (`CandidateMode::Indexed`) — the completeness-proving layer of the
//! sub-quadratic construction path.
//!
//! Invariants:
//! 1. **Completeness / bit-identity**: for every branch of the taxonomy —
//!    all 7 character measures over their length-bucket index, all 6
//!    n-gram vector measures over the prefix-filtered inverted index, the
//!    semantic cosine/Euclidean/Word-Mover's branches over their centroid
//!    balls, and the fallback branches without an index — the indexed
//!    build is **bit-identical** to the enumerated build, serially and
//!    with 4 workers, for every `k`. An index may only *skip* pairs whose
//!    exact upper bound falls strictly below the sink's admission bound,
//!    so no retained edge can ever be lost.
//! 2. **Counter consistency** (`TopKStats`): `generated_pairs ==
//!    pruned_pairs + scored_pairs` on both modes (every generated
//!    candidate is pruned or scored, never both, never dropped);
//!    `offered_edges <= scored_pairs`; indexed generation never exceeds
//!    enumerated generation.
//! 3. **Exact token enumeration**: on the positive-similarity token
//!    branches (`CosineTf`, `Jaccard`), every index-generated pair shares
//!    a term and therefore scores positive and is offered —
//!    `offered_edges == generated_pairs` on the indexed path.
//! 4. **Degenerate `k`**: `k = 0` generates nothing at all on the indexed
//!    path (the admission bound is `+∞` from the start); `k = ∞` never
//!    lets a generator skip (the bound stays `-∞`), reproducing the dense
//!    edge set.

use er_core::SimilarityGraph;
use er_datasets::{EntityCollection, EntityProfile};
use er_embed::{EmbeddingModel, SemanticMeasure};
use er_pipeline::{
    build_graph_over, build_graph_topk_mode, CandidateMode, PipelineConfig, SemanticScope,
    SimilarityFunction, TopKStats,
};
use er_textsim::{
    CharMeasure, GraphSimilarity, NGramScheme, SchemaBasedMeasure, TokenMeasure, VectorMeasure,
};
use proptest::prelude::*;

/// A vocabulary of short distinct tokens.
const VOCAB: [&str; 10] = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
];

/// Collections of 1..=max entities with a "name" attribute (always) and a
/// "desc" attribute (missing when its token list is empty).
fn arb_collection(max_entities: usize) -> impl Strategy<Value = EntityCollection> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0usize..VOCAB.len(), 0..4),
            proptest::collection::vec(0usize..VOCAB.len(), 0..3),
        ),
        1..=max_entities,
    )
    .prop_map(|entities| EntityCollection {
        profiles: entities
            .into_iter()
            .enumerate()
            .map(|(i, (name, desc))| {
                let text = |toks: Vec<usize>| -> String {
                    toks.into_iter()
                        .map(|t| VOCAB[t])
                        .collect::<Vec<_>>()
                        .join(" ")
                };
                let mut attrs = vec![("name".to_string(), text(name))];
                if !desc.is_empty() {
                    attrs.push(("desc".to_string(), text(desc)));
                }
                EntityProfile::new(i as u32, attrs)
            })
            .collect(),
        attribute_names: vec!["name".into(), "desc".into()],
    })
}

fn cfg_with(threads: usize) -> PipelineConfig {
    PipelineConfig {
        threads,
        chunk_rows: if threads == 1 { 0 } else { 2 },
        wmd_token_cap: 4,
        ..PipelineConfig::default()
    }
}

/// Exact comparison: edge sequence and weight bits.
fn assert_bit_identical(a: &SimilarityGraph, b: &SimilarityGraph, what: &str) {
    assert_eq!(a.n_left(), b.n_left(), "{what}: n_left");
    assert_eq!(a.n_right(), b.n_right(), "{what}: n_right");
    assert_eq!(a.n_edges(), b.n_edges(), "{what}: edge count");
    for (x, y) in a.edges().iter().zip(b.edges()) {
        assert_eq!((x.left, x.right), (y.left, y.right), "{what}: pair order");
        assert_eq!(
            x.weight.to_bits(),
            y.weight.to_bits(),
            "{what}: weight bits of ({}, {})",
            x.left,
            x.right
        );
    }
}

/// Invariant 2 asserts shared by every case.
fn assert_counters_consistent(stats: &TopKStats, what: &str) {
    assert_eq!(
        stats.generated_pairs,
        stats.pruned_pairs + stats.scored_pairs,
        "{what}: generated != pruned + scored"
    );
    assert!(
        stats.offered_edges <= stats.scored_pairs,
        "{what}: offered {} > scored {}",
        stats.offered_edges,
        stats.scored_pairs
    );
    assert!(
        stats.retained_edges <= stats.offered_edges,
        "{what}: retained {} > offered {}",
        stats.retained_edges,
        stats.offered_edges
    );
}

/// Run one function through both modes and check invariants 1 and 2.
fn check_function(
    left: &EntityCollection,
    right: &EntityCollection,
    function: &SimilarityFunction,
    k: usize,
    threads: usize,
) {
    let cfg = cfg_with(threads);
    let what = format!("{} k={k} threads={threads}", function.name());
    let (g_enum, s_enum) =
        build_graph_topk_mode(left, right, function, k, CandidateMode::Enumerated, &cfg);
    let (g_idx, s_idx) =
        build_graph_topk_mode(left, right, function, k, CandidateMode::Indexed, &cfg);
    assert_bit_identical(&g_enum, &g_idx, &what);
    assert_counters_consistent(&s_enum, &format!("{what} enumerated"));
    assert_counters_consistent(&s_idx, &format!("{what} indexed"));
    assert!(
        s_idx.generated_pairs <= s_enum.generated_pairs,
        "{what}: indexed generated {} > enumerated generated {}",
        s_idx.generated_pairs,
        s_enum.generated_pairs
    );
}

/// The taxonomy branches with a candidate index.
fn indexed_branches() -> Vec<SimilarityFunction> {
    let mut fns: Vec<SimilarityFunction> = CharMeasure::all()
        .into_iter()
        .map(|m| SimilarityFunction::SchemaBasedSyntactic {
            attribute: "name".into(),
            measure: SchemaBasedMeasure::Char(m),
        })
        .collect();
    fns.extend(VectorMeasure::all().into_iter().map(|measure| {
        SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Token(1),
            measure,
        }
    }));
    fns.push(SimilarityFunction::SchemaAgnosticVector {
        scheme: NGramScheme::Char(3),
        measure: VectorMeasure::CosineTfIdf,
    });
    fns.push(SimilarityFunction::Semantic {
        model: EmbeddingModel::FastText,
        measure: SemanticMeasure::Cosine,
        scope: SemanticScope::SchemaAgnostic,
    });
    fns.push(SimilarityFunction::Semantic {
        model: EmbeddingModel::FastText,
        measure: SemanticMeasure::Euclidean,
        scope: SemanticScope::SchemaAgnostic,
    });
    fns.push(SimilarityFunction::Semantic {
        model: EmbeddingModel::Albert,
        measure: SemanticMeasure::WordMovers,
        scope: SemanticScope::SchemaBased {
            attribute: "name".into(),
        },
    });
    fns
}

/// Branches without a candidate index: indexed mode must fall back to
/// enumeration and still be bit-identical with consistent counters.
fn fallback_branches() -> Vec<SimilarityFunction> {
    vec![
        SimilarityFunction::SchemaBasedSyntactic {
            attribute: "name".into(),
            measure: SchemaBasedMeasure::Token(TokenMeasure::Jaccard),
        },
        SimilarityFunction::SchemaAgnosticGraph {
            scheme: NGramScheme::Char(3),
            measure: GraphSimilarity::Value,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Invariants 1 and 2 over every character measure: the inverted
    /// length and counting filters never drop a retained pair, serially
    /// and with 4 workers.
    #[test]
    fn char_indexed_matches_enumerated(
        left in arb_collection(6),
        right in arb_collection(6),
        k in 1usize..=2,
    ) {
        for m in CharMeasure::all() {
            let function = SimilarityFunction::SchemaBasedSyntactic {
                attribute: "name".into(),
                measure: SchemaBasedMeasure::Char(m),
            };
            for threads in [1, 4] {
                check_function(&left, &right, &function, k, threads);
            }
        }
    }

    /// Invariants 1 and 2 over every n-gram vector measure: the
    /// prefix-filtered probe plans never stop early while an admissible
    /// candidate is still undiscovered.
    #[test]
    fn vector_indexed_matches_enumerated(
        left in arb_collection(6),
        right in arb_collection(6),
        k in 1usize..=2,
    ) {
        for measure in VectorMeasure::all() {
            let function = SimilarityFunction::SchemaAgnosticVector {
                scheme: NGramScheme::Token(1),
                measure,
            };
            for threads in [1, 4] {
                check_function(&left, &right, &function, k, threads);
            }
        }
        // One character-n-gram scheme too: denser postings, longer plans.
        let function = SimilarityFunction::SchemaAgnosticVector {
            scheme: NGramScheme::Char(3),
            measure: VectorMeasure::CosineTfIdf,
        };
        check_function(&left, &right, &function, k, 1);
    }

    /// Invariants 1 and 2 over the semantic branches: centroid-ball
    /// generation (raw vectors for Euclidean, unit-normalized copies for
    /// cosine, bag summaries for Word Mover's) never prunes a retained
    /// pair.
    #[test]
    fn semantic_indexed_matches_enumerated(
        left in arb_collection(5),
        right in arb_collection(5),
        k in 1usize..=2,
    ) {
        let functions = [
            SimilarityFunction::Semantic {
                model: EmbeddingModel::FastText,
                measure: SemanticMeasure::Cosine,
                scope: SemanticScope::SchemaAgnostic,
            },
            SimilarityFunction::Semantic {
                model: EmbeddingModel::FastText,
                measure: SemanticMeasure::Euclidean,
                scope: SemanticScope::SchemaAgnostic,
            },
            SimilarityFunction::Semantic {
                model: EmbeddingModel::Albert,
                measure: SemanticMeasure::WordMovers,
                scope: SemanticScope::SchemaBased { attribute: "name".into() },
            },
        ];
        for function in &functions {
            for threads in [1, 4] {
                check_function(&left, &right, function, k, threads);
            }
        }
    }

    /// Invariants 1 and 2 for branches without an index: the fallback is
    /// the scorer's own enumeration, bit-identical by construction but
    /// checked anyway (the counters must stay consistent through the
    /// default `score_row_indexed`).
    #[test]
    fn fallback_indexed_matches_enumerated(
        left in arb_collection(6),
        right in arb_collection(6),
        k in 1usize..=2,
    ) {
        for function in fallback_branches() {
            check_function(&left, &right, &function, k, 1);
        }
    }

    /// Invariant 3: on the positive-similarity token branches every
    /// generated candidate shares a term, scores positive, and is
    /// offered — indexed generation is *exact*, not just complete.
    #[test]
    fn token_indexed_generation_is_exact(
        left in arb_collection(6),
        right in arb_collection(6),
        k in 1usize..=3,
    ) {
        for measure in [VectorMeasure::CosineTf, VectorMeasure::Jaccard] {
            let function = SimilarityFunction::SchemaAgnosticVector {
                scheme: NGramScheme::Token(1),
                measure,
            };
            let (_, stats) = build_graph_topk_mode(
                &left,
                &right,
                &function,
                k,
                CandidateMode::Indexed,
                &cfg_with(1),
            );
            prop_assert_eq!(
                stats.offered_edges,
                stats.generated_pairs,
                "{}: every index-generated pair shares a term and is offered",
                function.name()
            );
        }
    }

    /// Invariant 4: `k = 0` generates nothing on the indexed path (the
    /// admission bound starts at `+∞`), and `k = ∞` reproduces the dense
    /// edge set (the bound never leaves `-∞`, so no generator ever
    /// skips).
    #[test]
    fn degenerate_k_bounds_generation(
        left in arb_collection(5),
        right in arb_collection(5),
    ) {
        for function in indexed_branches() {
            let cfg = cfg_with(1);
            let (g0, s0) = build_graph_topk_mode(
                &left, &right, &function, 0, CandidateMode::Indexed, &cfg,
            );
            prop_assert_eq!(g0.n_edges(), 0, "{}: k = 0 keeps nothing", function.name());
            prop_assert_eq!(
                s0.generated_pairs,
                0,
                "{}: k = 0 must not generate a single candidate",
                function.name()
            );

            let (g_inf, _) = build_graph_topk_mode(
                &left, &right, &function, usize::MAX, CandidateMode::Indexed, &cfg,
            );
            let dense = build_graph_over(&left, &right, &function, &cfg);
            let canon = |g: &SimilarityGraph| -> Vec<(u32, u32, u64)> {
                let mut v: Vec<_> = g
                    .edges()
                    .iter()
                    .map(|e| (e.left, e.right, e.weight.to_bits()))
                    .collect();
                v.sort_unstable();
                v
            };
            prop_assert_eq!(
                canon(&dense),
                canon(&g_inf),
                "{}: indexed k = ∞ reproduces the dense edge set",
                function.name()
            );
        }
    }
}
