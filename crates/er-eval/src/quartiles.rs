//! Quartile descriptive statistics (Table 8's threshold distributions).

use serde::{Deserialize, Serialize};

/// Five-number summary (plus mean/std convenience) of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quartiles {
    /// Minimum.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub q2: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Quartiles {
    /// Compute the summary with linear interpolation (type-7 quantiles,
    /// the R/NumPy default). Returns `None` for empty samples.
    pub fn of(values: &[f64]) -> Option<Quartiles> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Some(Quartiles {
            min: sorted[0],
            q1: quantile(&sorted, 0.25),
            q2: quantile(&sorted, 0.50),
            q3: quantile(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
        })
    }

    /// Interquartile range `Q3 − Q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Type-7 quantile of pre-sorted data.
fn quantile(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = p * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_quartiles() {
        let q = Quartiles::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(q.min, 1.0);
        assert_eq!(q.q1, 2.0);
        assert_eq!(q.q2, 3.0);
        assert_eq!(q.q3, 4.0);
        assert_eq!(q.max, 5.0);
        assert_eq!(q.iqr(), 2.0);
    }

    #[test]
    fn interpolated_quartiles() {
        let q = Quartiles::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((q.q1 - 1.75).abs() < 1e-12);
        assert!((q.q2 - 2.5).abs() < 1e-12);
        assert!((q.q3 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_and_degenerates() {
        let q = Quartiles::of(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(q.min, 1.0);
        assert_eq!(q.max, 5.0);
        assert_eq!(q.q2, 3.0);
        assert!(Quartiles::of(&[]).is_none());
        let single = Quartiles::of(&[2.5]).unwrap();
        assert_eq!(single.q1, 2.5);
        assert_eq!(single.q3, 2.5);
    }
}
