//! The threshold-sweep protocol (§5, Generation Process).
//!
//! Each algorithm runs once per threshold of the grid; "the largest
//! threshold that achieves the highest F-Measure is selected as the
//! optimal one". BMC is special-cased per §3: both basis collections are
//! evaluated and the better one retained.

use serde::{Deserialize, Serialize};

use er_core::{GroundTruth, ThresholdGrid};
use er_matchers::{AlgorithmConfig, AlgorithmKind, Basis, PreparedGraph};

use crate::metrics::{evaluate, PrecisionRecall};

/// The outcome of sweeping one algorithm over one similarity graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// The algorithm.
    pub algorithm: AlgorithmKind,
    /// The optimal threshold (largest achieving maximum F1).
    pub best_threshold: f64,
    /// Effectiveness at the optimal threshold.
    pub best: PrecisionRecall,
    /// For BMC: the basis that won (`None` for other algorithms).
    pub bmc_basis_right: Option<bool>,
}

/// Sweep one algorithm over the grid.
pub fn sweep_algorithm(
    kind: AlgorithmKind,
    config: &AlgorithmConfig,
    g: &PreparedGraph<'_>,
    gt: &GroundTruth,
    grid: &ThresholdGrid,
) -> SweepResult {
    if kind == AlgorithmKind::Bmc {
        // Evaluate both bases, retain the better (§3).
        let left = sweep_fixed(kind, &with_basis(config, Basis::Left), g, gt, grid);
        let right = sweep_fixed(kind, &with_basis(config, Basis::Right), g, gt, grid);
        let mut winner = if right.best.f1 > left.best.f1 {
            let mut r = right;
            r.bmc_basis_right = Some(true);
            r
        } else {
            let mut l = left;
            l.bmc_basis_right = Some(false);
            l
        };
        winner.algorithm = AlgorithmKind::Bmc;
        winner
    } else {
        sweep_fixed(kind, config, g, gt, grid)
    }
}

fn with_basis(config: &AlgorithmConfig, basis: Basis) -> AlgorithmConfig {
    AlgorithmConfig {
        bmc_basis: basis,
        ..*config
    }
}

fn sweep_fixed(
    kind: AlgorithmKind,
    config: &AlgorithmConfig,
    g: &PreparedGraph<'_>,
    gt: &GroundTruth,
    grid: &ThresholdGrid,
) -> SweepResult {
    let matcher = config.build(kind);
    let mut best_threshold = 0.0;
    let mut best = PrecisionRecall::zero(gt.len());
    let mut have_any = false;
    for t in grid.values() {
        let m = matcher.run(g, t);
        let e = evaluate(&m, gt);
        // ">=" keeps the *largest* optimal threshold, as the grid ascends.
        if !have_any || e.f1 >= best.f1 {
            best = e;
            best_threshold = t;
            have_any = true;
        }
    }
    SweepResult {
        algorithm: kind,
        best_threshold,
        best,
        bmc_basis_right: None,
    }
}

/// Sweep all eight algorithms over one graph.
pub fn sweep_all(
    config: &AlgorithmConfig,
    g: &PreparedGraph<'_>,
    gt: &GroundTruth,
    grid: &ThresholdGrid,
) -> Vec<SweepResult> {
    AlgorithmKind::ALL
        .into_iter()
        .map(|k| sweep_algorithm(k, config, g, gt, grid))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::GraphBuilder;

    /// A graph where a high threshold isolates the true matches: matches
    /// weigh 0.9/0.8, a false edge weighs 0.5.
    fn graph_and_truth() -> (er_core::SimilarityGraph, GroundTruth) {
        let mut b = GraphBuilder::new(3, 3);
        b.add_edge(0, 0, 0.9).unwrap();
        b.add_edge(1, 1, 0.8).unwrap();
        b.add_edge(2, 1, 0.5).unwrap();
        b.add_edge(2, 2, 0.4).unwrap();
        (b.build(), GroundTruth::new(vec![(0, 0), (1, 1)]))
    }

    #[test]
    fn picks_largest_optimal_threshold() {
        let (g, gt) = graph_and_truth();
        let pg = PreparedGraph::new(&g);
        let grid = ThresholdGrid::paper();
        let r = sweep_algorithm(
            AlgorithmKind::Umc,
            &AlgorithmConfig::default(),
            &pg,
            &gt,
            &grid,
        );
        // UMC achieves P=R=1 for any t in [0.5, 0.75] (edges >t keeps 0.9
        // and 0.8, drops 0.5 when t >= 0.5): largest optimum is 0.75.
        assert_eq!(r.best.f1, 1.0);
        assert!(
            (r.best_threshold - 0.75).abs() < 1e-9,
            "got {}",
            r.best_threshold
        );
    }

    #[test]
    fn bmc_retains_better_basis() {
        // Right basis wins: with left basis node 2 (left) steals node 1's
        // match at low thresholds... construct an asymmetric case.
        let mut b = GraphBuilder::new(2, 1);
        b.add_edge(0, 0, 0.9).unwrap();
        b.add_edge(1, 0, 0.8).unwrap();
        let g = b.build();
        let gt = GroundTruth::new(vec![(0, 0)]);
        let pg = PreparedGraph::new(&g);
        let grid = ThresholdGrid::paper();
        let r = sweep_algorithm(
            AlgorithmKind::Bmc,
            &AlgorithmConfig::default(),
            &pg,
            &gt,
            &grid,
        );
        assert_eq!(r.algorithm, AlgorithmKind::Bmc);
        assert!(r.bmc_basis_right.is_some());
        assert_eq!(r.best.f1, 1.0);
    }

    #[test]
    fn sweep_all_covers_eight() {
        let (g, gt) = graph_and_truth();
        let pg = PreparedGraph::new(&g);
        let grid = ThresholdGrid::new(0.2, 1.0, 0.2);
        let rs = sweep_all(&AlgorithmConfig::default(), &pg, &gt, &grid);
        assert_eq!(rs.len(), 8);
        for r in &rs {
            assert!((0.0..=1.0).contains(&r.best.f1));
            assert!(r.best_threshold > 0.0);
        }
        // On this easy graph the top algorithms reach F1 = 1.
        let umc = rs
            .iter()
            .find(|r| r.algorithm == AlgorithmKind::Umc)
            .unwrap();
        assert_eq!(umc.best.f1, 1.0);
    }
}
