//! The threshold-sweep protocol (§5, Generation Process).
//!
//! Each algorithm runs once per threshold of the grid; "the largest
//! threshold that achieves the highest F-Measure is selected as the
//! optimal one". BMC is special-cased per §3: both basis collections are
//! evaluated and the better one retained.
//!
//! The default execution path is the [`SweepEngine`], which makes the
//! `(algorithm × threshold)` grid **incremental and parallel**:
//!
//! * each `(algorithm, basis)` unit walks the grid in *descending*
//!   threshold order through an [`er_matchers::ThresholdSweeper`], so
//!   "edges above t" is a prefix slice of the prepared graph's sorted edge
//!   view and greedy matchers resume the previous grid point's state
//!   instead of restarting;
//! * the units fan out over crossbeam scoped worker threads (the same
//!   worker-pool pattern as `er-pipeline`'s corpus runner).
//!
//! The engine is **result-equivalent** to the naive per-threshold re-run
//! ([`sweep_naive`]) — the property tests in `tests/proptests.rs` enforce
//! equality of best threshold, precision/recall/F1, and per-threshold
//! matchings for all eight algorithms.

use crossbeam::thread;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use er_core::{GroundTruth, ThresholdGrid};
use er_matchers::{AlgorithmConfig, AlgorithmKind, Basis, PreparedGraph};

use crate::metrics::{evaluate, PrecisionRecall};

/// The outcome of sweeping one algorithm over one similarity graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// The algorithm.
    pub algorithm: AlgorithmKind,
    /// The optimal threshold (largest achieving maximum F1).
    pub best_threshold: f64,
    /// Effectiveness at the optimal threshold.
    pub best: PrecisionRecall,
    /// For BMC: the basis that won (`None` for other algorithms).
    pub bmc_basis_right: Option<bool>,
}

/// Incremental, parallel executor for the `(algorithm × threshold)` grid.
#[derive(Debug, Clone, Copy)]
pub struct SweepEngine {
    config: AlgorithmConfig,
    threads: usize,
}

impl SweepEngine {
    /// An engine with as many workers as the host exposes.
    pub fn new(config: AlgorithmConfig) -> Self {
        SweepEngine {
            config,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Cap the worker count (1 = fully serial; useful for tests and for
    /// callers that already parallelize across graphs).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sweep all eight algorithms over one graph (paper row order).
    pub fn sweep_all(
        &self,
        g: &PreparedGraph<'_>,
        gt: &GroundTruth,
        grid: &ThresholdGrid,
    ) -> Vec<SweepResult> {
        let units: Vec<Unit> = AlgorithmKind::ALL.into_iter().flat_map(units_of).collect();
        let outcomes = self.run_units(&units, g, gt, grid);
        AlgorithmKind::ALL
            .into_iter()
            .map(|kind| combine(kind, &units, &outcomes))
            .collect()
    }

    /// Sweep a single algorithm (both bases for BMC).
    pub fn sweep_algorithm(
        &self,
        kind: AlgorithmKind,
        g: &PreparedGraph<'_>,
        gt: &GroundTruth,
        grid: &ThresholdGrid,
    ) -> SweepResult {
        let units = units_of(kind);
        let outcomes = self.run_units(&units, g, gt, grid);
        combine(kind, &units, &outcomes)
    }

    /// Fan the units out over scoped worker threads; results keep unit
    /// order regardless of completion order.
    fn run_units(
        &self,
        units: &[Unit],
        g: &PreparedGraph<'_>,
        gt: &GroundTruth,
        grid: &ThresholdGrid,
    ) -> Vec<SweepResult> {
        let n = units.len();
        if n == 0 {
            return Vec::new();
        }
        let config = self.config;
        if self.threads == 1 || n == 1 {
            return units
                .iter()
                .map(|u| sweep_unit(u, &config, g, gt, grid))
                .collect();
        }
        let workers = self.threads.min(n);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<SweepResult>>> = Mutex::new((0..n).map(|_| None).collect());
        thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|_| loop {
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let result = sweep_unit(&units[idx], &config, g, gt, grid);
                    slots.lock()[idx] = Some(result);
                });
            }
        })
        .expect("sweep worker panicked");
        slots
            .into_inner()
            .into_iter()
            .map(|slot| slot.expect("every unit swept"))
            .collect()
    }
}

/// One schedulable piece of grid work: an algorithm under a fixed basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Unit {
    kind: AlgorithmKind,
    basis: Option<Basis>,
}

/// BMC contributes two units (one per basis); everything else one.
fn units_of(kind: AlgorithmKind) -> Vec<Unit> {
    if kind == AlgorithmKind::Bmc {
        Basis::both()
            .into_iter()
            .map(|b| Unit {
                kind,
                basis: Some(b),
            })
            .collect()
    } else {
        vec![Unit { kind, basis: None }]
    }
}

/// Collapse a kind's unit outcomes into its final [`SweepResult`] (the BMC
/// dual-basis selection of §3 for BMC, identity otherwise).
fn combine(kind: AlgorithmKind, units: &[Unit], outcomes: &[SweepResult]) -> SweepResult {
    let mut picked: Option<(Basis, SweepResult)> = None;
    for (u, r) in units.iter().zip(outcomes) {
        if u.kind != kind {
            continue;
        }
        let Some(basis) = u.basis else {
            return r.clone();
        };
        picked = Some(match picked {
            None => (basis, r.clone()),
            Some((cur_basis, cur)) => {
                if basis_beats(r, &cur) {
                    (basis, r.clone())
                } else {
                    (cur_basis, cur)
                }
            }
        });
    }
    let (basis, mut winner) = picked.expect("kind has at least one unit");
    winner.bmc_basis_right = Some(basis == Basis::Right);
    winner.algorithm = kind;
    winner
}

/// The documented BMC basis selection rule (§3 evaluates both bases and
/// retains the better): **higher best-F1 wins; on an F1 tie the basis with
/// the larger optimal threshold wins** (mirroring the protocol's "largest
/// threshold achieving the highest F-Measure"); a full tie keeps the left
/// basis. Deterministic by construction.
fn basis_beats(challenger: &SweepResult, incumbent: &SweepResult) -> bool {
    challenger.best.f1 > incumbent.best.f1
        || (challenger.best.f1 == incumbent.best.f1
            && challenger.best_threshold > incumbent.best_threshold)
}

/// Sweep one unit down the grid through its incremental sweeper, keeping
/// the largest threshold that achieves the maximum F1.
fn sweep_unit(
    unit: &Unit,
    config: &AlgorithmConfig,
    g: &PreparedGraph<'_>,
    gt: &GroundTruth,
    grid: &ThresholdGrid,
) -> SweepResult {
    let config = match unit.basis {
        Some(basis) => AlgorithmConfig {
            bmc_basis: basis,
            ..*config
        },
        None => *config,
    };
    let mut sweeper = config.sweeper(unit.kind);
    let mut best_threshold = 0.0;
    let mut best = PrecisionRecall::zero(gt.len());
    let mut have_any = false;
    for t in grid.values_desc() {
        let m = sweeper.step(g, t);
        let e = evaluate(&m, gt);
        // Strict ">" keeps the *largest* optimal threshold, as the grid
        // descends — the mirror of the naive ascending ">=" rule.
        if !have_any || e.f1 > best.f1 {
            best = e;
            best_threshold = t;
            have_any = true;
        }
    }
    SweepResult {
        algorithm: unit.kind,
        best_threshold,
        best,
        bmc_basis_right: None,
    }
}

/// Sweep one algorithm over the grid (BMC: both bases, better retained).
///
/// Runs on the [`SweepEngine`]; `config.bmc_basis` is ignored for BMC
/// because both bases are always evaluated per §3.
pub fn sweep_algorithm(
    kind: AlgorithmKind,
    config: &AlgorithmConfig,
    g: &PreparedGraph<'_>,
    gt: &GroundTruth,
    grid: &ThresholdGrid,
) -> SweepResult {
    SweepEngine::new(*config).sweep_algorithm(kind, g, gt, grid)
}

/// Sweep all eight algorithms over one graph.
pub fn sweep_all(
    config: &AlgorithmConfig,
    g: &PreparedGraph<'_>,
    gt: &GroundTruth,
    grid: &ThresholdGrid,
) -> Vec<SweepResult> {
    SweepEngine::new(*config).sweep_all(g, gt, grid)
}

/// The naive reference implementation: re-run the matcher from scratch at
/// every ascending grid point (the pre-engine behavior). Kept as the
/// equivalence baseline for the property tests and the `sweep` benchmark.
pub fn sweep_naive(
    kind: AlgorithmKind,
    config: &AlgorithmConfig,
    g: &PreparedGraph<'_>,
    gt: &GroundTruth,
    grid: &ThresholdGrid,
) -> SweepResult {
    if kind == AlgorithmKind::Bmc {
        // Evaluate both bases, retain the better (§3), under the same
        // explicit tie-break rule as the engine.
        let run = |basis| {
            sweep_naive_fixed(
                kind,
                &AlgorithmConfig {
                    bmc_basis: basis,
                    ..*config
                },
                g,
                gt,
                grid,
            )
        };
        let left = run(Basis::Left);
        let right = run(Basis::Right);
        let mut winner = if basis_beats(&right, &left) {
            let mut r = right;
            r.bmc_basis_right = Some(true);
            r
        } else {
            let mut l = left;
            l.bmc_basis_right = Some(false);
            l
        };
        winner.algorithm = AlgorithmKind::Bmc;
        winner
    } else {
        sweep_naive_fixed(kind, config, g, gt, grid)
    }
}

fn sweep_naive_fixed(
    kind: AlgorithmKind,
    config: &AlgorithmConfig,
    g: &PreparedGraph<'_>,
    gt: &GroundTruth,
    grid: &ThresholdGrid,
) -> SweepResult {
    let matcher = config.build(kind);
    let mut best_threshold = 0.0;
    let mut best = PrecisionRecall::zero(gt.len());
    let mut have_any = false;
    for t in grid.values() {
        let m = matcher.run(g, t);
        let e = evaluate(&m, gt);
        // ">=" keeps the *largest* optimal threshold, as the grid ascends.
        if !have_any || e.f1 >= best.f1 {
            best = e;
            best_threshold = t;
            have_any = true;
        }
    }
    SweepResult {
        algorithm: kind,
        best_threshold,
        best,
        bmc_basis_right: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::GraphBuilder;

    /// A graph where a high threshold isolates the true matches: matches
    /// weigh 0.9/0.8, a false edge weighs 0.5.
    fn graph_and_truth() -> (er_core::SimilarityGraph, GroundTruth) {
        let mut b = GraphBuilder::new(3, 3);
        b.add_edge(0, 0, 0.9).unwrap();
        b.add_edge(1, 1, 0.8).unwrap();
        b.add_edge(2, 1, 0.5).unwrap();
        b.add_edge(2, 2, 0.4).unwrap();
        (b.build(), GroundTruth::new(vec![(0, 0), (1, 1)]))
    }

    #[test]
    fn picks_largest_optimal_threshold() {
        let (g, gt) = graph_and_truth();
        let pg = PreparedGraph::new(&g);
        let grid = ThresholdGrid::paper();
        let r = sweep_algorithm(
            AlgorithmKind::Umc,
            &AlgorithmConfig::default(),
            &pg,
            &gt,
            &grid,
        );
        // UMC achieves P=R=1 for any t in [0.5, 0.75] (edges >t keeps 0.9
        // and 0.8, drops 0.5 when t >= 0.5): largest optimum is 0.75.
        assert_eq!(r.best.f1, 1.0);
        assert!(
            (r.best_threshold - 0.75).abs() < 1e-9,
            "got {}",
            r.best_threshold
        );
    }

    #[test]
    fn bmc_retains_better_basis() {
        // Right basis wins: with left basis node 2 (left) steals node 1's
        // match at low thresholds... construct an asymmetric case.
        let mut b = GraphBuilder::new(2, 1);
        b.add_edge(0, 0, 0.9).unwrap();
        b.add_edge(1, 0, 0.8).unwrap();
        let g = b.build();
        let gt = GroundTruth::new(vec![(0, 0)]);
        let pg = PreparedGraph::new(&g);
        let grid = ThresholdGrid::paper();
        let r = sweep_algorithm(
            AlgorithmKind::Bmc,
            &AlgorithmConfig::default(),
            &pg,
            &gt,
            &grid,
        );
        assert_eq!(r.algorithm, AlgorithmKind::Bmc);
        assert!(r.bmc_basis_right.is_some());
        assert_eq!(r.best.f1, 1.0);
    }

    #[test]
    fn bmc_f1_tie_prefers_larger_threshold_then_left() {
        // Full tie: both bases find the single pair (0,0) with F1 = 1 and
        // the same largest optimal threshold → the rule keeps Left.
        let mut b = GraphBuilder::new(1, 1);
        b.add_edge(0, 0, 0.9).unwrap();
        let g = b.build();
        let gt = GroundTruth::new(vec![(0, 0)]);
        let pg = PreparedGraph::new(&g);
        let grid = ThresholdGrid::paper();
        let r = sweep_algorithm(
            AlgorithmKind::Bmc,
            &AlgorithmConfig::default(),
            &pg,
            &gt,
            &grid,
        );
        assert_eq!(r.best.f1, 1.0);
        assert_eq!(
            r.bmc_basis_right,
            Some(false),
            "full tie must deterministically keep the left basis"
        );

        // F1 ties with *differing* best thresholds, exercised through the
        // real selection path (`combine` over per-basis unit outcomes, the
        // exact code the engine runs after its parallel fan-in). Both bases
        // can't produce such a tie organically on a BMC graph — whichever
        // edge blocks the true pair at a high threshold still blocks it at
        // every lower one — so the unit outcomes are constructed directly.
        let units = units_of(AlgorithmKind::Bmc);
        let outcome = |t: f64| SweepResult {
            algorithm: AlgorithmKind::Bmc,
            best_threshold: t,
            best: PrecisionRecall {
                precision: 1.0,
                recall: 1.0,
                f1: 1.0,
                true_positives: 1,
                output_pairs: 1,
                ground_truth_pairs: 1,
            },
            bmc_basis_right: None,
        };
        // units_of lists Left before Right.
        let pick = |left_t: f64, right_t: f64| {
            combine(
                AlgorithmKind::Bmc,
                &units,
                &[outcome(left_t), outcome(right_t)],
            )
        };
        let r = pick(0.5, 0.75);
        assert_eq!(
            (r.bmc_basis_right, r.best_threshold),
            (Some(true), 0.75),
            "larger threshold wins the F1 tie"
        );
        let r = pick(0.75, 0.5);
        assert_eq!(
            (r.bmc_basis_right, r.best_threshold),
            (Some(false), 0.75),
            "smaller threshold loses the F1 tie"
        );
        let r = pick(0.75, 0.75);
        assert_eq!(
            r.bmc_basis_right,
            Some(false),
            "full tie keeps the left basis"
        );
    }

    #[test]
    fn sweep_all_covers_eight() {
        let (g, gt) = graph_and_truth();
        let pg = PreparedGraph::new(&g);
        let grid = ThresholdGrid::new(0.2, 1.0, 0.2);
        let rs = sweep_all(&AlgorithmConfig::default(), &pg, &gt, &grid);
        assert_eq!(rs.len(), 8);
        for r in &rs {
            assert!((0.0..=1.0).contains(&r.best.f1));
            assert!(r.best_threshold > 0.0);
        }
        // On this easy graph the top algorithms reach F1 = 1.
        let umc = rs
            .iter()
            .find(|r| r.algorithm == AlgorithmKind::Umc)
            .unwrap();
        assert_eq!(umc.best.f1, 1.0);
    }

    #[test]
    fn engine_thread_counts_agree() {
        let (g, gt) = graph_and_truth();
        let pg = PreparedGraph::new(&g);
        let grid = ThresholdGrid::paper();
        let config = AlgorithmConfig::default();
        let serial = SweepEngine::new(config)
            .with_threads(1)
            .sweep_all(&pg, &gt, &grid);
        let parallel = SweepEngine::new(config)
            .with_threads(4)
            .sweep_all(&pg, &gt, &grid);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.algorithm, b.algorithm);
            assert_eq!(a.best_threshold, b.best_threshold);
            assert_eq!(a.best, b.best);
            assert_eq!(a.bmc_basis_right, b.bmc_basis_right);
        }
    }

    #[test]
    fn engine_matches_naive_on_fixture() {
        let (g, gt) = graph_and_truth();
        let pg = PreparedGraph::new(&g);
        let grid = ThresholdGrid::paper();
        let config = AlgorithmConfig::default();
        let engine = SweepEngine::new(config);
        for kind in AlgorithmKind::ALL {
            let fast = engine.sweep_algorithm(kind, &pg, &gt, &grid);
            let slow = sweep_naive(kind, &config, &pg, &gt, &grid);
            assert_eq!(fast.best_threshold, slow.best_threshold, "{kind}");
            assert_eq!(fast.best, slow.best, "{kind}");
            assert_eq!(fast.bmc_basis_right, slow.bmc_basis_right, "{kind}");
        }
    }
}
