//! Effectiveness measures (§5, Evaluation Measures).

use serde::{Deserialize, Serialize};

use er_core::{GroundTruth, Matching};

/// Pair-level effectiveness of one matching.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionRecall {
    /// Portion of output partitions that involve two matching entities.
    pub precision: f64,
    /// Portion of matching partitions that are included in the output.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Correctly matched pairs.
    pub true_positives: usize,
    /// Output pairs.
    pub output_pairs: usize,
    /// Ground-truth pairs.
    pub ground_truth_pairs: usize,
}

impl PrecisionRecall {
    /// All-zero metrics (the convention for empty outputs).
    pub fn zero(ground_truth_pairs: usize) -> Self {
        PrecisionRecall {
            precision: 0.0,
            recall: 0.0,
            f1: 0.0,
            true_positives: 0,
            output_pairs: 0,
            ground_truth_pairs,
        }
    }
}

/// Evaluate a matching against the ground truth.
///
/// Conventions: an empty output has precision 0 (nothing correct was
/// emitted); an empty ground truth yields recall 0. F1 is 0 whenever either
/// constituent is 0.
pub fn evaluate(m: &Matching, gt: &GroundTruth) -> PrecisionRecall {
    let tp = gt.true_positives(m);
    let precision = if m.is_empty() {
        0.0
    } else {
        tp as f64 / m.len() as f64
    };
    let recall = if gt.is_empty() {
        0.0
    } else {
        tp as f64 / gt.len() as f64
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    PrecisionRecall {
        precision,
        recall,
        f1,
        true_positives: tp,
        output_pairs: m.len(),
        ground_truth_pairs: gt.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching() {
        let gt = GroundTruth::new(vec![(0, 0), (1, 1)]);
        let m = Matching::new(vec![(0, 0), (1, 1)]);
        let e = evaluate(&m, &gt);
        assert_eq!(e.precision, 1.0);
        assert_eq!(e.recall, 1.0);
        assert_eq!(e.f1, 1.0);
        assert_eq!(e.true_positives, 2);
    }

    #[test]
    fn partial_matching() {
        let gt = GroundTruth::new(vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
        let m = Matching::new(vec![(0, 0), (1, 2)]); // 1 of 2 correct
        let e = evaluate(&m, &gt);
        assert_eq!(e.precision, 0.5);
        assert_eq!(e.recall, 0.25);
        let f1 = 2.0 * 0.5 * 0.25 / 0.75;
        assert!((e.f1 - f1).abs() < 1e-12);
    }

    #[test]
    fn empty_output_conventions() {
        let gt = GroundTruth::new(vec![(0, 0)]);
        let e = evaluate(&Matching::empty(), &gt);
        assert_eq!(e.precision, 0.0);
        assert_eq!(e.recall, 0.0);
        assert_eq!(e.f1, 0.0);
        assert_eq!(e, PrecisionRecall::zero(1));
    }

    #[test]
    fn empty_ground_truth() {
        let gt = GroundTruth::new(vec![]);
        let m = Matching::new(vec![(0, 0)]);
        let e = evaluate(&m, &gt);
        assert_eq!(e.precision, 0.0);
        assert_eq!(e.recall, 0.0);
        assert_eq!(e.f1, 0.0);
    }
}
