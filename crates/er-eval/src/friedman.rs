//! The Friedman test over paired samples (§6, statistical significance).
//!
//! The paper ranks the eight algorithms on each of the 739 similarity
//! graphs, then tests the null hypothesis that all algorithms perform
//! equally (α = 0.05) before running the post-hoc Nemenyi analysis.

use serde::{Deserialize, Serialize};

/// Result of a Friedman test over `n` blocks (graphs) × `k` treatments
/// (algorithms).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FriedmanResult {
    /// Mean rank per treatment (1 = best), in input order.
    pub mean_ranks: Vec<f64>,
    /// The Friedman chi-square statistic.
    pub chi_square: f64,
    /// Degrees of freedom (`k − 1`).
    pub df: usize,
    /// Approximate p-value from the chi-square distribution.
    pub p_value: f64,
    /// Number of blocks.
    pub n_blocks: usize,
}

impl FriedmanResult {
    /// Whether the null hypothesis is rejected at significance `alpha`.
    pub fn rejects_null(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Run the Friedman test.
///
/// `scores[b][t]` is the score of treatment `t` on block `b`; **higher is
/// better** (ranks are assigned descending, with average ranks on ties).
pub fn friedman_test(scores: &[Vec<f64>]) -> FriedmanResult {
    let n = scores.len();
    assert!(n > 0, "need at least one block");
    let k = scores[0].len();
    assert!(k >= 2, "need at least two treatments");

    let mut rank_sums = vec![0.0f64; k];
    for row in scores {
        assert_eq!(row.len(), k, "ragged score matrix");
        for (t, r) in ranks_desc(row).into_iter().enumerate() {
            rank_sums[t] += r;
        }
    }
    let mean_ranks: Vec<f64> = rank_sums.iter().map(|s| s / n as f64).collect();

    // χ²_F = 12n/(k(k+1)) · [Σ R̄_j² − k(k+1)²/4]
    let nf = n as f64;
    let kf = k as f64;
    let sum_sq: f64 = mean_ranks.iter().map(|r| r * r).sum();
    let chi_square =
        (12.0 * nf / (kf * (kf + 1.0))) * (sum_sq - kf * (kf + 1.0) * (kf + 1.0) / 4.0);
    let chi_square = chi_square.max(0.0);
    let df = k - 1;
    let p_value = chi_square_sf(chi_square, df as f64);

    FriedmanResult {
        mean_ranks,
        chi_square,
        df,
        p_value,
        n_blocks: n,
    }
}

/// Descending ranks with average ranks for ties (rank 1 = highest score).
pub fn ranks_desc(row: &[f64]) -> Vec<f64> {
    let k = row.len();
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| row[b].total_cmp(&row[a]));
    let mut ranks = vec![0.0; k];
    let mut i = 0;
    while i < k {
        let mut j = i;
        while j + 1 < k && row[order[j + 1]] == row[order[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the average of ranks i+1..=j+1.
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Chi-square survival function `P(X ≥ x)` via the regularized upper
/// incomplete gamma function `Q(df/2, x/2)`.
pub fn chi_square_sf(x: f64, df: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    upper_regularized_gamma(df / 2.0, x / 2.0)
}

/// Regularized upper incomplete gamma `Q(a, x)` (series for `x < a+1`,
/// continued fraction otherwise; Numerical-Recipes style).
fn upper_regularized_gamma(a: f64, x: f64) -> f64 {
    if x < a + 1.0 {
        1.0 - lower_gamma_series(a, x)
    } else {
        upper_gamma_cf(a, x)
    }
}

fn lower_gamma_series(a: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    let ln_gamma_a = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma_a).exp()
}

fn upper_gamma_cf(a: f64, x: f64) -> f64 {
    let ln_gamma_a = ln_gamma(a);
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma_a).exp() * h
}

/// Lanczos log-gamma.
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for g in G {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_handle_ties() {
        assert_eq!(ranks_desc(&[0.9, 0.5, 0.7]), vec![1.0, 3.0, 2.0]);
        // Tie for first: ranks (1+2)/2.
        assert_eq!(ranks_desc(&[0.9, 0.9, 0.1]), vec![1.5, 1.5, 3.0]);
        // All tied.
        assert_eq!(ranks_desc(&[0.4, 0.4, 0.4]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn chi_square_sf_known_values() {
        // Textbook: P(X ≥ 3.84 | df=1) ≈ 0.05; P(X ≥ 14.07 | df=7) ≈ 0.05.
        assert!((chi_square_sf(3.841, 1.0) - 0.05).abs() < 1e-3);
        assert!((chi_square_sf(14.067, 7.0) - 0.05).abs() < 1e-3);
        assert!((chi_square_sf(0.0, 5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clear_differences_reject_null() {
        // Treatment 0 always wins, 2 always loses.
        let scores: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![0.9 + (i % 3) as f64 * 0.01, 0.5, 0.1])
            .collect();
        let r = friedman_test(&scores);
        assert!(r.rejects_null(0.05), "p = {}", r.p_value);
        assert!(r.mean_ranks[0] < r.mean_ranks[1]);
        assert!(r.mean_ranks[1] < r.mean_ranks[2]);
        assert!((r.mean_ranks[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_treatments_accept_null() {
        let scores: Vec<Vec<f64>> = (0..20).map(|_| vec![0.5, 0.5, 0.5, 0.5]).collect();
        let r = friedman_test(&scores);
        assert!(!r.rejects_null(0.05));
        for mr in &r.mean_ranks {
            assert!((mr - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_ranks_sum_is_invariant() {
        // Σ mean ranks = k(k+1)/2 regardless of data.
        let scores = vec![
            vec![0.3, 0.9, 0.1, 0.5],
            vec![0.2, 0.2, 0.8, 0.4],
            vec![0.6, 0.6, 0.6, 0.6],
        ];
        let r = friedman_test(&scores);
        let sum: f64 = r.mean_ranks.iter().sum();
        assert!((sum - 10.0).abs() < 1e-9);
    }
}
