//! Threshold transfer across algorithms.
//!
//! The paper's threshold analysis (Appendix 3.2) finds that "the optimal
//! threshold for a particular similarity graph is relatively stable across
//! different algorithms … it depends more on the characteristics of the
//! input, than the functionality of the graph matching algorithm", with
//! pairwise Pearson correlations "well above 0.8" (Figure 9). That makes
//! threshold *transfer* practical: tune one cheap algorithm (say CNC) on a
//! dataset, then predict the optimal threshold of an expensive one via a
//! simple linear fit.
//!
//! [`ThresholdTransfer`] implements that predictor: ordinary least squares
//! on paired `(source, target)` optimal thresholds, with predictions
//! clamped to the threshold grid's domain.

use serde::{Deserialize, Serialize};

use crate::pearson::pearson;

/// A fitted linear threshold predictor `target ≈ intercept + slope·source`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdTransfer {
    /// Regression intercept.
    pub intercept: f64,
    /// Regression slope.
    pub slope: f64,
    /// Pearson correlation of the training pairs (transfer quality).
    pub correlation: f64,
    /// Number of training pairs.
    pub n: usize,
}

impl ThresholdTransfer {
    /// Fit on paired optimal thresholds; `None` with fewer than two pairs
    /// or a degenerate (constant) source.
    pub fn fit(pairs: &[(f64, f64)]) -> Option<ThresholdTransfer> {
        let n = pairs.len();
        if n < 2 {
            return None;
        }
        let nf = n as f64;
        let mx = pairs.iter().map(|p| p.0).sum::<f64>() / nf;
        let my = pairs.iter().map(|p| p.1).sum::<f64>() / nf;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for &(x, y) in pairs {
            sxx += (x - mx) * (x - mx);
            sxy += (x - mx) * (y - my);
        }
        if sxx <= 1e-12 {
            return None;
        }
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        Some(ThresholdTransfer {
            intercept,
            slope,
            correlation: pearson(&xs, &ys),
            n,
        })
    }

    /// Predict the target algorithm's optimal threshold from the source's,
    /// clamped to `[0, 1]`.
    pub fn predict(&self, source_threshold: f64) -> f64 {
        (self.intercept + self.slope * source_threshold).clamp(0.0, 1.0)
    }

    /// Whether the fit is reliable by the paper's standard (the Figure 9
    /// correlations are "well above 0.8 in the vast majority of cases").
    pub fn is_reliable(&self) -> bool {
        self.correlation >= 0.8 && self.n >= 10
    }

    /// Mean absolute prediction error on a held-out set of pairs.
    pub fn mae(&self, pairs: &[(f64, f64)]) -> f64 {
        if pairs.is_empty() {
            return 0.0;
        }
        pairs
            .iter()
            .map(|&(x, y)| (self.predict(x) - y).abs())
            .sum::<f64>()
            / pairs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_relation() {
        let pairs: Vec<(f64, f64)> = (1..=10)
            .map(|i| {
                let x = i as f64 * 0.05;
                (x, 0.9 * x + 0.02)
            })
            .collect();
        let t = ThresholdTransfer::fit(&pairs).unwrap();
        assert!((t.slope - 0.9).abs() < 1e-9);
        assert!((t.intercept - 0.02).abs() < 1e-9);
        assert!((t.correlation - 1.0).abs() < 1e-9);
        assert!(t.is_reliable());
        assert!((t.predict(0.5) - 0.47).abs() < 1e-9);
        assert!(t.mae(&pairs) < 1e-9);
    }

    #[test]
    fn identity_transfer_from_equal_thresholds() {
        let pairs = vec![(0.2, 0.2), (0.4, 0.4), (0.6, 0.6), (0.9, 0.9)];
        let t = ThresholdTransfer::fit(&pairs).unwrap();
        assert!((t.predict(0.5) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn predictions_are_clamped() {
        let pairs = vec![(0.1, 0.9), (0.9, 1.0), (0.5, 0.99)];
        let t = ThresholdTransfer::fit(&pairs).unwrap();
        assert!(t.predict(5.0) <= 1.0);
        assert!(t.predict(-5.0) >= 0.0);
    }

    #[test]
    fn degenerate_fits_rejected() {
        assert!(ThresholdTransfer::fit(&[]).is_none());
        assert!(ThresholdTransfer::fit(&[(0.5, 0.4)]).is_none());
        // Constant source has no slope.
        assert!(ThresholdTransfer::fit(&[(0.5, 0.3), (0.5, 0.6)]).is_none());
    }

    #[test]
    fn noisy_fit_reports_low_reliability() {
        let pairs = vec![
            (0.1, 0.9),
            (0.2, 0.1),
            (0.3, 0.8),
            (0.4, 0.2),
            (0.5, 0.7),
            (0.6, 0.3),
            (0.7, 0.6),
            (0.8, 0.4),
            (0.9, 0.5),
            (0.95, 0.45),
        ];
        let t = ThresholdTransfer::fit(&pairs).unwrap();
        assert!(!t.is_reliable(), "correlation {} too high", t.correlation);
    }
}
