//! F1-dependent corpus cleaning (paper §5, rules 2 and 3).
//!
//! Rule 2: "we removed all noisy graphs, where all algorithms achieve an
//! F-Measure lower than 0.25".
//!
//! Rule 3: "we cleaned our data from duplicate inputs, i.e., similarity
//! graphs that emanate from the same dataset but different similarity
//! functions and have the same number of edges, while at least two
//! different algorithms achieve their best performance with the same
//! similarity threshold, exhibiting almost identical effectiveness (the
//! difference in F-Measure and precision or recall is less than 0.2%)".

use serde::{Deserialize, Serialize};

use crate::sweep::SweepResult;

/// Rule 2: is a graph noisy (every algorithm's best F1 below 0.25)?
pub fn is_noisy_graph(results: &[SweepResult]) -> bool {
    !results.is_empty() && results.iter().all(|r| r.best.f1 < 0.25)
}

/// A summarised graph identity used by rule 3 duplicate detection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphFingerprint {
    /// Identifier of the source dataset.
    pub dataset: String,
    /// Number of edges of the graph.
    pub n_edges: usize,
    /// Per-algorithm `(best threshold, f1, precision, recall)`.
    pub per_algorithm: Vec<(f64, f64, f64, f64)>,
}

impl GraphFingerprint {
    /// Build from sweep results.
    pub fn new(dataset: &str, n_edges: usize, results: &[SweepResult]) -> Self {
        GraphFingerprint {
            dataset: dataset.to_string(),
            n_edges,
            per_algorithm: results
                .iter()
                .map(|r| (r.best_threshold, r.best.f1, r.best.precision, r.best.recall))
                .collect(),
        }
    }

    /// Rule 3's pairwise duplicate criterion.
    fn duplicates(&self, other: &GraphFingerprint) -> bool {
        if self.dataset != other.dataset
            || self.n_edges != other.n_edges
            || self.per_algorithm.len() != other.per_algorithm.len()
        {
            return false;
        }
        const EPS: f64 = 0.002; // "less than 0.2%"
        let near_identical = self
            .per_algorithm
            .iter()
            .zip(&other.per_algorithm)
            .filter(|((t1, f1, p1, r1), (t2, f2, p2, r2))| {
                t1 == t2
                    && (f1 - f2).abs() < EPS
                    && ((p1 - p2).abs() < EPS || (r1 - r2).abs() < EPS)
            })
            .count();
        near_identical >= 2
    }
}

/// Rule 3: return the indices of fingerprints to **drop** (later duplicates
/// of an earlier graph are removed; the first occurrence stays).
pub fn dedup_duplicate_inputs(fingerprints: &[GraphFingerprint]) -> Vec<usize> {
    let mut dropped = Vec::new();
    let mut kept: Vec<usize> = Vec::new();
    for i in 0..fingerprints.len() {
        let dup = kept
            .iter()
            .any(|&j| fingerprints[j].duplicates(&fingerprints[i]));
        if dup {
            dropped.push(i);
        } else {
            kept.push(i);
        }
    }
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PrecisionRecall;
    use er_matchers::AlgorithmKind;

    fn result(kind: AlgorithmKind, t: f64, f1: f64, p: f64, r: f64) -> SweepResult {
        SweepResult {
            algorithm: kind,
            best_threshold: t,
            best: PrecisionRecall {
                precision: p,
                recall: r,
                f1,
                true_positives: 0,
                output_pairs: 0,
                ground_truth_pairs: 0,
            },
            bmc_basis_right: None,
        }
    }

    #[test]
    fn rule2_flags_noisy_graphs() {
        let noisy = vec![
            result(AlgorithmKind::Umc, 0.5, 0.20, 0.2, 0.2),
            result(AlgorithmKind::Krc, 0.5, 0.10, 0.1, 0.1),
        ];
        assert!(is_noisy_graph(&noisy));
        let ok = vec![
            result(AlgorithmKind::Umc, 0.5, 0.30, 0.3, 0.3),
            result(AlgorithmKind::Krc, 0.5, 0.10, 0.1, 0.1),
        ];
        assert!(!is_noisy_graph(&ok));
        assert!(!is_noisy_graph(&[]));
    }

    #[test]
    fn rule3_detects_duplicates() {
        let rs1 = vec![
            result(AlgorithmKind::Umc, 0.5, 0.80, 0.8, 0.8),
            result(AlgorithmKind::Krc, 0.4, 0.70, 0.7, 0.7),
        ];
        let rs2 = vec![
            result(AlgorithmKind::Umc, 0.5, 0.8001, 0.8, 0.8),
            result(AlgorithmKind::Krc, 0.4, 0.7001, 0.7, 0.7),
        ];
        let f1 = GraphFingerprint::new("D1", 100, &rs1);
        let f2 = GraphFingerprint::new("D1", 100, &rs2);
        assert!(f1.duplicates(&f2));
        let dropped = dedup_duplicate_inputs(&[f1.clone(), f2]);
        assert_eq!(dropped, vec![1]);

        // Different edge count → not duplicates.
        let f3 = GraphFingerprint::new("D1", 101, &rs1);
        assert!(!f1.duplicates(&f3));
        // Different dataset → not duplicates.
        let f4 = GraphFingerprint::new("D2", 100, &rs1);
        assert!(!f1.duplicates(&f4));
    }

    #[test]
    fn rule3_requires_two_agreeing_algorithms() {
        let rs1 = vec![
            result(AlgorithmKind::Umc, 0.5, 0.80, 0.8, 0.8),
            result(AlgorithmKind::Krc, 0.4, 0.70, 0.7, 0.7),
        ];
        // Only UMC matches; KRC differs in threshold.
        let rs2 = vec![
            result(AlgorithmKind::Umc, 0.5, 0.80, 0.8, 0.8),
            result(AlgorithmKind::Krc, 0.6, 0.70, 0.7, 0.7),
        ];
        let f1 = GraphFingerprint::new("D1", 100, &rs1);
        let f2 = GraphFingerprint::new("D1", 100, &rs2);
        assert!(!f1.duplicates(&f2));
    }
}
