//! Post-hoc Nemenyi analysis and critical-distance diagrams (Figures 2,
//! 7, 8 of the paper).
//!
//! Two treatments differ significantly when their mean ranks differ by at
//! least the critical distance `CD = q_α · sqrt(k(k+1) / 6N)`, with `q_α`
//! the Studentized-range-based constant. With k = 8 and N = 739 the paper
//! obtains CD = 0.37.

use serde::{Deserialize, Serialize};

/// `q_0.05` constants for the Nemenyi test, `k = 2..=10` (Demšar 2006,
/// Table 5a: Studentized range values divided by √2).
const Q_ALPHA_05: [f64; 9] = [
    1.960, 2.343, 2.569, 2.728, 2.850, 2.949, 3.031, 3.102, 3.164,
];

/// The critical distance at α = 0.05 for `k` treatments over `n` blocks.
///
/// Panics unless `2 <= k <= 10` (the tabulated range).
pub fn nemenyi_critical_distance(k: usize, n: usize) -> f64 {
    assert!((2..=10).contains(&k), "q_alpha tabulated for k in 2..=10");
    assert!(n > 0, "need at least one block");
    let q = Q_ALPHA_05[k - 2];
    q * ((k * (k + 1)) as f64 / (6.0 * n as f64)).sqrt()
}

/// A complete Nemenyi analysis over named treatments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NemenyiAnalysis {
    /// Treatment names, sorted by mean rank ascending (best first).
    pub names: Vec<String>,
    /// Mean ranks aligned with `names`.
    pub mean_ranks: Vec<f64>,
    /// The critical distance.
    pub critical_distance: f64,
    /// Maximal groups of mutually-insignificant treatments, as index
    /// ranges into `names` (`start..=end`).
    pub cliques: Vec<(usize, usize)>,
}

impl NemenyiAnalysis {
    /// Build the analysis from unsorted `(name, mean rank)` pairs.
    pub fn new(pairs: Vec<(String, f64)>, n_blocks: usize) -> NemenyiAnalysis {
        let k = pairs.len();
        let cd = nemenyi_critical_distance(k, n_blocks);
        let mut sorted = pairs;
        sorted.sort_by(|a, b| a.1.total_cmp(&b.1));
        let names: Vec<String> = sorted.iter().map(|(n, _)| n.clone()).collect();
        let mean_ranks: Vec<f64> = sorted.iter().map(|(_, r)| *r).collect();

        // Maximal cliques: for each start, extend while within CD; keep
        // only ranges not contained in a previous one.
        let mut cliques: Vec<(usize, usize)> = Vec::new();
        for i in 0..k {
            let mut j = i;
            while j + 1 < k && mean_ranks[j + 1] - mean_ranks[i] <= cd {
                j += 1;
            }
            if j > i {
                if let Some(&(_, last_end)) = cliques.last() {
                    if j <= last_end {
                        continue; // contained in the previous clique
                    }
                }
                cliques.push((i, j));
            }
        }
        NemenyiAnalysis {
            names,
            mean_ranks,
            critical_distance: cd,
            cliques,
        }
    }

    /// Whether treatments `a` and `b` (indices into `names`) differ
    /// significantly.
    pub fn significantly_different(&self, a: usize, b: usize) -> bool {
        (self.mean_ranks[a] - self.mean_ranks[b]).abs() > self.critical_distance
    }
}

/// Render an ASCII critical-difference diagram:
///
/// ```text
/// CD = 0.37 (k=8, N=739)
/// rank 1.0        8.0
///  2.46 KRC  ──┐
///  2.90 UMC  ──┤
///  ...
/// groups: [KRC UMC] [EXC BMC] ...
/// ```
pub fn render_cd_diagram(analysis: &NemenyiAnalysis, n_blocks: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "CD = {:.3} (k={}, N={})\n",
        analysis.critical_distance,
        analysis.names.len(),
        n_blocks
    ));
    let width = 40usize;
    let k = analysis.names.len() as f64;
    for (name, rank) in analysis.names.iter().zip(&analysis.mean_ranks) {
        let pos = (((rank - 1.0) / (k - 1.0)) * (width as f64 - 1.0)).round() as usize;
        let mut bar: Vec<char> = vec!['-'; width];
        bar[pos.min(width - 1)] = '*';
        out.push_str(&format!(
            "  {rank:5.2}  {name:<4} |{}|\n",
            bar.iter().collect::<String>()
        ));
    }
    if analysis.cliques.is_empty() {
        out.push_str("groups: all pairwise differences significant\n");
    } else {
        out.push_str("groups (no significant difference): ");
        for &(s, e) in &analysis.cliques {
            out.push('[');
            out.push_str(&analysis.names[s..=e].join(" "));
            out.push_str("] ");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_critical_distance() {
        // §6: "a post-hoc Nemenyi test to identify the critical distance
        // (CD = 0.37)" for k = 8, N = 739.
        let cd = nemenyi_critical_distance(8, 739);
        assert!((cd - 0.37).abs() < 0.02, "CD = {cd}");
    }

    #[test]
    fn cd_shrinks_with_more_blocks() {
        assert!(nemenyi_critical_distance(8, 1000) < nemenyi_critical_distance(8, 100));
    }

    fn sample() -> NemenyiAnalysis {
        NemenyiAnalysis::new(
            vec![
                ("UMC".into(), 2.9),
                ("KRC".into(), 2.5),
                ("EXC".into(), 3.4),
                ("CNC".into(), 6.5),
            ],
            739,
        )
    }

    #[test]
    fn analysis_sorts_by_rank() {
        let a = sample();
        assert_eq!(a.names, vec!["KRC", "UMC", "EXC", "CNC"]);
        assert!(a.mean_ranks.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn significance_respects_cd() {
        let a = sample();
        // CD for k=4, N=739 ≈ 2.569*sqrt(20/(6*739)) ≈ 0.17.
        assert!(a.significantly_different(0, 3), "KRC vs CNC");
        assert!(
            a.significantly_different(0, 1),
            "KRC vs UMC differ by 0.4 > 0.17"
        );
    }

    #[test]
    fn cliques_group_close_ranks() {
        let a = NemenyiAnalysis::new(
            vec![
                ("A".into(), 1.0),
                ("B".into(), 1.05),
                ("C".into(), 1.10),
                ("D".into(), 5.0),
            ],
            100,
        );
        // A, B, C are mutually within CD; D is alone.
        assert_eq!(a.cliques, vec![(0, 2)]);
        assert!(!a.significantly_different(0, 2));
        assert!(a.significantly_different(2, 3));
    }

    #[test]
    fn diagram_renders_all_names() {
        let a = sample();
        let d = render_cd_diagram(&a, 739);
        for n in ["KRC", "UMC", "EXC", "CNC", "CD ="] {
            assert!(d.contains(n), "missing {n} in diagram:\n{d}");
        }
    }

    #[test]
    #[should_panic(expected = "tabulated")]
    fn cd_out_of_range_panics() {
        nemenyi_critical_distance(11, 10);
    }
}
