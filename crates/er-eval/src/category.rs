//! #Top1 / Δ% / #Top2 accounting with tie handling (Table 5 of the paper).
//!
//! For each similarity graph: every algorithm achieving the maximum F1
//! increments its `#Top1`; the winners' Δ is the gap to the second-highest
//! *distinct* F1; every algorithm achieving that second value increments
//! its `#Top2`. "In case of ties, we increment #Top1 and #Top2 for all
//! involved algorithms."

use er_core::FxHashMap;
use er_matchers::AlgorithmKind;
use serde::{Deserialize, Serialize};

/// Accumulated Top-1/Top-2 statistics for one algorithm.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TopCounts {
    /// Times this algorithm achieved the maximum F1.
    pub top1: usize,
    /// Times it achieved the second-highest F1.
    pub top2: usize,
    /// Sum of (max − second-max) gaps over its wins.
    pub delta_sum: f64,
    /// Number of wins contributing to `delta_sum`.
    pub delta_count: usize,
}

impl TopCounts {
    /// Average Δ over wins, as a percentage (the paper's Δ (%)).
    pub fn delta_pct(&self) -> f64 {
        if self.delta_count == 0 {
            0.0
        } else {
            100.0 * self.delta_sum / self.delta_count as f64
        }
    }
}

/// Accumulate counts over many graphs. `per_graph[g]` holds each
/// algorithm's best F1 on graph `g`.
pub fn top_counts(per_graph: &[Vec<(AlgorithmKind, f64)>]) -> FxHashMap<AlgorithmKind, TopCounts> {
    let mut out: FxHashMap<AlgorithmKind, TopCounts> = FxHashMap::default();
    for scores in per_graph {
        if scores.is_empty() {
            continue;
        }
        let max = scores
            .iter()
            .map(|&(_, f)| f)
            .fold(f64::NEG_INFINITY, f64::max);
        // Second-highest *distinct* value (equal to max when all tie).
        let second = scores
            .iter()
            .map(|&(_, f)| f)
            .filter(|&f| f < max)
            .fold(f64::NEG_INFINITY, f64::max);
        let (second, delta) = if second.is_finite() {
            (second, max - second)
        } else {
            (max, 0.0)
        };
        for &(k, f) in scores {
            let e = out.entry(k).or_default();
            if f == max {
                e.top1 += 1;
                e.delta_sum += delta;
                e.delta_count += 1;
            } else if f == second {
                e.top2 += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use AlgorithmKind::*;

    #[test]
    fn simple_winner_and_runner_up() {
        let per_graph = vec![
            vec![(Umc, 0.9), (Krc, 0.8), (Cnc, 0.5)],
            vec![(Umc, 0.7), (Krc, 0.75), (Cnc, 0.2)],
        ];
        let c = top_counts(&per_graph);
        assert_eq!(c[&Umc].top1, 1);
        assert_eq!(c[&Umc].top2, 1);
        assert_eq!(c[&Krc].top1, 1);
        assert_eq!(c[&Krc].top2, 1);
        assert_eq!(c[&Cnc].top1, 0);
        // UMC's win gap: 0.9 − 0.8 = 0.1 → Δ% = 10.
        assert!((c[&Umc].delta_pct() - 10.0).abs() < 1e-9);
        assert!((c[&Krc].delta_pct() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ties_increment_all_involved() {
        let per_graph = vec![vec![(Umc, 0.9), (Krc, 0.9), (Exc, 0.8), (Bmc, 0.8)]];
        let c = top_counts(&per_graph);
        assert_eq!(c[&Umc].top1, 1);
        assert_eq!(c[&Krc].top1, 1);
        assert_eq!(c[&Exc].top2, 1);
        assert_eq!(c[&Bmc].top2, 1);
        // Δ is max − second distinct = 0.1 for both winners.
        assert!((c[&Umc].delta_sum - 0.1).abs() < 1e-12);
    }

    #[test]
    fn all_tied_gives_zero_delta() {
        let per_graph = vec![vec![(Umc, 0.5), (Krc, 0.5)]];
        let c = top_counts(&per_graph);
        assert_eq!(c[&Umc].top1, 1);
        assert_eq!(c[&Krc].top1, 1);
        assert_eq!(c[&Umc].delta_pct(), 0.0);
        // Nobody is second when everyone is first.
        assert_eq!(c[&Umc].top2, 0);
    }

    #[test]
    fn empty_input() {
        let c = top_counts(&[]);
        assert!(c.is_empty());
        let c = top_counts(&[vec![]]);
        assert!(c.is_empty());
    }
}
