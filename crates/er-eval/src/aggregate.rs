//! Macro-average aggregation (Table 4 and Figure 3 of the paper).

use serde::{Deserialize, Serialize};

/// Mean and (population) standard deviation of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanStd {
    /// Arithmetic mean (`μ`).
    pub mean: f64,
    /// Population standard deviation (`σ`).
    pub std: f64,
}

impl MeanStd {
    /// The zero statistic (empty samples).
    pub fn zero() -> Self {
        MeanStd {
            mean: 0.0,
            std: 0.0,
        }
    }
}

/// Compute mean and population standard deviation.
pub fn mean_std(values: &[f64]) -> MeanStd {
    if values.is_empty() {
        return MeanStd::zero();
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    MeanStd {
        mean,
        std: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let s = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(mean_std(&[]), MeanStd::zero());
        let one = mean_std(&[3.5]);
        assert_eq!(one.mean, 3.5);
        assert_eq!(one.std, 0.0);
        let constant = mean_std(&[0.7, 0.7, 0.7]);
        assert!((constant.mean - 0.7).abs() < 1e-12);
        assert!(constant.std < 1e-12);
    }
}
