#![warn(missing_docs)]

//! # er-eval — evaluation framework
//!
//! Implements the paper's full evaluation protocol (§5–§6):
//!
//! * pair-level **precision / recall / F-Measure** against the ground truth
//!   ([`metrics`]);
//! * the **threshold sweep**: every algorithm × every threshold in
//!   0.05..=1.0 step 0.05, selecting the *largest* threshold that achieves
//!   the highest F1 ([`sweep`]), with BMC evaluated under both bases —
//!   executed by the incremental, parallel [`SweepEngine`] (sorted-prefix
//!   edge views, descending-threshold state reuse, scoped worker threads);
//! * run-time measurement at the optimal threshold over repeated
//!   executions ([`timing`]);
//! * macro-averages with standard deviations ([`aggregate`]);
//! * the BLC/OSD/SCR **category analysis** with #Top1 / Δ% / #Top2 and tie
//!   handling ([`category`]);
//! * the **Friedman test** and post-hoc **Nemenyi** critical-distance
//!   analysis with ASCII CD diagrams ([`friedman`], [`nemenyi`]);
//! * **Pearson correlations** and **quartile** descriptive statistics for
//!   the threshold analysis ([`mod@pearson`], [`quartiles`]);
//! * the F1-dependent corpus **cleaning rules** 2–3 ([`cleaning`]);
//! * plain-text table rendering shared by the harness ([`report`]).

pub mod aggregate;
pub mod category;
pub mod cleaning;
pub mod friedman;
pub mod metrics;
pub mod nemenyi;
pub mod pearson;
pub mod quartiles;
pub mod report;
pub mod sweep;
pub mod timing;
pub mod transfer;

pub use aggregate::{mean_std, MeanStd};
pub use category::{top_counts, TopCounts};
pub use cleaning::{dedup_duplicate_inputs, is_noisy_graph, GraphFingerprint};
pub use friedman::{friedman_test, FriedmanResult};
pub use metrics::{evaluate, PrecisionRecall};
pub use nemenyi::{nemenyi_critical_distance, render_cd_diagram, NemenyiAnalysis};
pub use pearson::{pearson, pearson_matrix};
pub use quartiles::Quartiles;
pub use report::Table;
pub use sweep::{sweep_algorithm, sweep_all, sweep_naive, SweepEngine, SweepResult};
pub use timing::{time_algorithm, TimingStats};
pub use transfer::ThresholdTransfer;
