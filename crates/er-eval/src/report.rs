//! Plain-text table rendering shared by the reproduction harness.

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Create a table with column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Set a caption printed above the table.
    pub fn with_title<S: Into<String>>(mut self, title: S) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Append a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as `0.123`.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format `mean±std` with 3 decimals.
pub fn pm(mean: f64, std: f64) -> String {
    format!("{mean:.3}±{std:.3}")
}

/// Format seconds adaptively: `870µs`, `12.0ms`, `1.23s`, `2.1min`.
pub fn duration(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.0}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.1}ms", secs * 1e3)
    } else if secs < 120.0 {
        format!("{secs:.2}s")
    } else {
        format!("{:.1}min", secs / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["Algo", "F1"]).with_title("Table X");
        t.row(vec!["UMC", "0.618"]);
        t.row(vec!["K", "0.619"]);
        let s = t.render();
        assert!(s.starts_with("Table X\n"));
        assert!(s.contains("Algo  F1"));
        assert!(s.contains("UMC   0.618"));
        assert!(s.contains("K     0.619"));
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        let s = t.render();
        assert!(s.lines().count() >= 3);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.61834), "0.618");
        assert_eq!(pm(0.5, 0.1), "0.500±0.100");
        assert_eq!(duration(0.012), "12.0ms");
        assert_eq!(duration(0.00087), "870µs");
        assert_eq!(duration(1.5), "1.50s");
        assert_eq!(duration(150.0), "2.5min");
    }
}
