//! Pearson correlation (Table 8's `ρ(t, |E|/||V1×V2||)` and Figure 9's
//! between-algorithm threshold correlations).

/// Pearson correlation coefficient of two paired samples.
///
/// Returns 0 when either sample has zero variance or fewer than two
/// points (no linear relationship is measurable).
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "paired samples must have equal length");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    (cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0)
}

/// Pairwise correlation matrix of several aligned series (Figure 9).
pub fn pearson_matrix(series: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let k = series.len();
    let mut m = vec![vec![0.0; k]; k];
    for i in 0..k {
        for j in 0..k {
            m[i][j] = if i == j {
                1.0
            } else {
                pearson(&series[i], &series[j])
            };
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlations() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_correlation_for_constants() {
        let x = [1.0, 2.0, 3.0];
        let c = [5.0, 5.0, 5.0];
        assert_eq!(pearson(&x, &c), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn known_partial_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        let r = pearson(&x, &y);
        assert!((r - 0.8).abs() < 1e-12, "r = {r}");
    }

    #[test]
    fn matrix_diagonal_is_one() {
        let s = vec![
            vec![1.0, 2.0, 3.0],
            vec![3.0, 2.0, 1.0],
            vec![1.0, 3.0, 2.0],
        ];
        let m = pearson_matrix(&s);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
        }
        assert!((m[0][1] + 1.0).abs() < 1e-12);
        assert!((m[0][1] - m[1][0]).abs() < 1e-12, "symmetric");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        pearson(&[1.0], &[1.0, 2.0]);
    }
}
