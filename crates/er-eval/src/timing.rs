//! Run-time measurement (§5: "the average run-time of an algorithm for
//! each setting … over 10 repeated executions").

use std::time::Instant;

use serde::{Deserialize, Serialize};

use er_matchers::{AlgorithmConfig, AlgorithmKind, PreparedGraph};

use crate::aggregate::mean_std;

/// Mean and standard deviation of repeated run-times, in seconds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimingStats {
    /// Mean wall-clock seconds.
    pub mean_s: f64,
    /// Standard deviation in seconds.
    pub std_s: f64,
    /// Number of repetitions measured.
    pub reps: usize,
}

/// Measure `kind` at threshold `t` over `reps` repeated executions.
///
/// Timing covers what the paper times: "the time that intervenes between
/// receiving the weighted similarity graph as input and returning the
/// partitions as output". Algorithms that consume the sorted adjacency
/// (RSR, RCA, BMC, EXC, KRC) therefore pay for its construction inside the
/// timed region — the paper's Java implementations build their own sorted
/// candidate queues per run. CNC, UMC and BAH operate on the raw edge list
/// and are timed on their run alone.
pub fn time_algorithm(
    kind: AlgorithmKind,
    config: &AlgorithmConfig,
    g: &PreparedGraph<'_>,
    t: f64,
    reps: usize,
) -> TimingStats {
    let matcher = config.build(kind);
    // One warm-up run (allocator, caches).
    let _ = matcher.run(g, t);
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let elapsed = if kind.uses_adjacency() {
            let start = Instant::now();
            let prepared = g.reprepare();
            let m = matcher.run(&prepared, t);
            let elapsed = start.elapsed().as_secs_f64();
            std::hint::black_box(m);
            elapsed
        } else {
            let start = Instant::now();
            let m = matcher.run(g, t);
            let elapsed = start.elapsed().as_secs_f64();
            std::hint::black_box(m);
            elapsed
        };
        samples.push(elapsed);
    }
    let ms = mean_std(&samples);
    TimingStats {
        mean_s: ms.mean,
        std_s: ms.std,
        reps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::GraphBuilder;

    #[test]
    fn timing_returns_positive_mean() {
        let mut b = GraphBuilder::new(50, 50);
        for i in 0..50 {
            b.add_edge(i, i, 0.9).unwrap();
            b.add_edge(i, (i + 1) % 50, 0.3).unwrap();
        }
        let g = b.build();
        let pg = PreparedGraph::new(&g);
        let s = time_algorithm(AlgorithmKind::Umc, &AlgorithmConfig::default(), &pg, 0.5, 5);
        assert!(s.mean_s > 0.0);
        assert!(s.std_s >= 0.0);
        assert_eq!(s.reps, 5);
    }
}
