//! Property tests for the evaluation layer.

use er_core::{CsrGraph, GraphBuilder, GroundTruth, Matching, SimilarityGraph, ThresholdGrid};
use er_eval::aggregate::mean_std;
use er_eval::friedman::{friedman_test, ranks_desc};
use er_eval::metrics::evaluate;
use er_eval::pearson::pearson;
use er_eval::quartiles::Quartiles;
use er_eval::sweep::{sweep_naive, SweepEngine};
use er_matchers::{AlgorithmConfig, AlgorithmKind, BahConfig, PreparedGraph};
use proptest::prelude::*;

/// Strategy: a random bipartite graph with up to 10x10 nodes and weights on
/// the 0.025 half-grid, so roughly half the weights fall *exactly on* paper
/// grid points (stressing the strict/inclusive boundary semantics) and half
/// between them (stressing the unchanged-prefix memo of the sweepers).
fn arb_graph() -> impl Strategy<Value = SimilarityGraph> {
    (1u32..10, 1u32..10).prop_flat_map(|(nl, nr)| {
        let max_edges = (nl * nr) as usize;
        proptest::collection::btree_map((0..nl, 0..nr), 1u32..=40, 0..=max_edges.min(30)).prop_map(
            move |edges| {
                let mut b = GraphBuilder::new(nl, nr);
                for ((l, r), w) in edges {
                    b.add_edge(l, r, w as f64 * 0.025).unwrap();
                }
                b.build()
            },
        )
    })
}

/// Strategy: a one-to-one ground truth over the collections' id space.
fn arb_ground_truth() -> impl Strategy<Value = GroundTruth> {
    proptest::collection::btree_set((0u32..10, 0u32..10), 0..8).prop_map(|pairs| {
        let mut ls = std::collections::HashSet::new();
        let mut rs = std::collections::HashSet::new();
        GroundTruth::new(
            pairs
                .iter()
                .filter(|(l, r)| ls.insert(*l) && rs.insert(*r))
                .copied()
                .collect::<Vec<_>>(),
        )
    })
}

/// The sweep configuration for equivalence testing: paper defaults except a
/// trimmed BAH move budget (the search is equivalence-tested all the same,
/// just faster).
fn sweep_config() -> AlgorithmConfig {
    AlgorithmConfig {
        bah: BahConfig {
            max_moves: 300,
            ..BahConfig::default()
        },
        ..AlgorithmConfig::default()
    }
}

proptest! {
    #[test]
    fn metrics_are_bounded_and_consistent(
        gt_pairs in proptest::collection::btree_set((0u32..30, 0u32..30), 0..15),
        out_pairs in proptest::collection::btree_set((0u32..30, 0u32..30), 0..15),
    ) {
        // Make both sides one-to-one by keeping first occurrence per id.
        let one_to_one = |pairs: &std::collections::BTreeSet<(u32, u32)>| {
            let mut ls = std::collections::HashSet::new();
            let mut rs = std::collections::HashSet::new();
            pairs
                .iter()
                .filter(|(l, r)| ls.insert(*l) && rs.insert(*r))
                .copied()
                .collect::<Vec<_>>()
        };
        let gt = GroundTruth::new(one_to_one(&gt_pairs));
        let m = Matching::new(one_to_one(&out_pairs));
        let e = evaluate(&m, &gt);
        prop_assert!((0.0..=1.0).contains(&e.precision));
        prop_assert!((0.0..=1.0).contains(&e.recall));
        prop_assert!((0.0..=1.0).contains(&e.f1));
        prop_assert!(e.true_positives <= e.output_pairs);
        prop_assert!(e.true_positives <= e.ground_truth_pairs);
        // F1 is between min and max of precision/recall.
        let lo = e.precision.min(e.recall);
        let hi = e.precision.max(e.recall);
        prop_assert!(e.f1 >= lo - 1e-12 || e.f1 == 0.0);
        prop_assert!(e.f1 <= hi + 1e-12);
    }

    #[test]
    fn ranks_are_a_permutation_mean(row in proptest::collection::vec(0.0f64..1.0, 2..10)) {
        let ranks = ranks_desc(&row);
        let k = row.len() as f64;
        let sum: f64 = ranks.iter().sum();
        // Σ ranks = k(k+1)/2 regardless of ties.
        prop_assert!((sum - k * (k + 1.0) / 2.0).abs() < 1e-9);
        // Better score never gets a worse (higher) rank.
        for i in 0..row.len() {
            for j in 0..row.len() {
                if row[i] > row[j] {
                    prop_assert!(ranks[i] < ranks[j]);
                }
            }
        }
    }

    #[test]
    fn friedman_mean_ranks_bounded(
        scores in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 4),
            2..30,
        )
    ) {
        let r = friedman_test(&scores);
        for mr in &r.mean_ranks {
            prop_assert!((1.0..=4.0).contains(mr));
        }
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        prop_assert!(r.chi_square >= 0.0);
    }

    #[test]
    fn quartiles_are_ordered(values in proptest::collection::vec(-10.0f64..10.0, 1..50)) {
        let q = Quartiles::of(&values).unwrap();
        prop_assert!(q.min <= q.q1 + 1e-12);
        prop_assert!(q.q1 <= q.q2 + 1e-12);
        prop_assert!(q.q2 <= q.q3 + 1e-12);
        prop_assert!(q.q3 <= q.max + 1e-12);
        prop_assert!(q.iqr() >= -1e-12);
    }

    #[test]
    fn pearson_is_bounded_and_scale_invariant(
        pairs in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 3..40),
        a in 0.1f64..5.0,
        b in -3.0f64..3.0,
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r = pearson(&xs, &ys);
        prop_assert!((-1.0..=1.0).contains(&r));
        // Positive affine transforms preserve correlation.
        let ys2: Vec<f64> = ys.iter().map(|y| a * y + b).collect();
        let r2 = pearson(&xs, &ys2);
        prop_assert!((r - r2).abs() < 1e-6, "{r} vs {r2}");
    }

    /// The tentpole guarantee: the incremental parallel [`SweepEngine`] can
    /// never drift from the protocol. For every algorithm, the engine's
    /// sweep result (best threshold, precision, recall, F1, pair counts,
    /// BMC basis) equals a naive per-threshold from-scratch re-run.
    #[test]
    fn sweep_engine_is_equivalent_to_naive_rerun(
        g in arb_graph(),
        gt in arb_ground_truth(),
    ) {
        let pg = PreparedGraph::new(&g);
        let grid = ThresholdGrid::paper();
        let config = sweep_config();
        let engine = SweepEngine::new(config).with_threads(4);
        let all = engine.sweep_all(&pg, &gt, &grid);
        prop_assert_eq!(all.len(), 8);
        for (kind, fast) in AlgorithmKind::ALL.into_iter().zip(&all) {
            prop_assert_eq!(fast.algorithm, kind);
            let slow = sweep_naive(kind, &config, &pg, &gt, &grid);
            prop_assert_eq!(
                fast.best_threshold, slow.best_threshold,
                "{} best threshold drifted", kind
            );
            prop_assert_eq!(fast.best, slow.best, "{} P/R/F1 drifted", kind);
            prop_assert_eq!(
                fast.bmc_basis_right, slow.bmc_basis_right,
                "{} basis selection drifted", kind
            );
        }
    }

    /// Stronger than result equivalence: at *every* grid point, each
    /// algorithm's incremental sweeper emits the exact same matching pairs
    /// as a fresh run at that threshold.
    #[test]
    fn incremental_sweepers_emit_identical_matchings(
        g in arb_graph(),
    ) {
        let pg = PreparedGraph::new(&g);
        let grid = ThresholdGrid::paper();
        let config = sweep_config();
        for kind in AlgorithmKind::ALL {
            let matcher = config.build(kind);
            let mut sweeper = config.sweeper(kind);
            for t in grid.values_desc() {
                let incremental = sweeper.step(&pg, t);
                let fresh = matcher.run(&pg, t);
                prop_assert_eq!(
                    incremental, fresh,
                    "{} matching drifted at t={}", kind, t
                );
            }
        }
    }

    /// The CSR store is lossless: a round trip through [`CsrGraph`]
    /// preserves the collections and the exact edge set (weight bits
    /// included) — only the listing order changes, to canonical
    /// `(left asc, right asc)`.
    #[test]
    fn csr_round_trip_is_identity(g in arb_graph()) {
        let back = CsrGraph::from_graph(&g).to_graph();
        prop_assert_eq!(back.n_left(), g.n_left());
        prop_assert_eq!(back.n_right(), g.n_right());
        let canon = |g: &SimilarityGraph| -> Vec<(u32, u32, u64)> {
            let mut v: Vec<_> = g
                .edges()
                .iter()
                .map(|e| (e.left, e.right, e.weight.to_bits()))
                .collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(canon(&back), canon(&g));
    }

    /// Pruning at `k = ∞` changes nothing but the storage path: sweeping
    /// the CSR-routed pruned graph gives the *same* result as sweeping
    /// the dense graph, for all eight algorithms — best threshold,
    /// precision/recall/F1, and BMC basis alike. This is the contract
    /// that lets production pipelines hand pruned CSR stores to the
    /// unchanged sweep engine.
    #[test]
    fn sweep_on_csr_pruned_graph_matches_dense(
        g in arb_graph(),
        gt in arb_ground_truth(),
    ) {
        let grid = ThresholdGrid::paper();
        let config = sweep_config();
        let engine = SweepEngine::new(config).with_threads(2);

        let dense = PreparedGraph::new(&g);
        let dense_results = engine.sweep_all(&dense, &gt, &grid);

        let csr = CsrGraph::from_graph(&g.pruned_top_k(usize::MAX));
        let pruned = PreparedGraph::from_csr(&csr);
        let pruned_results = engine.sweep_all(&pruned, &gt, &grid);

        prop_assert_eq!(dense_results.len(), pruned_results.len());
        for (d, p) in dense_results.iter().zip(&pruned_results) {
            prop_assert_eq!(d.algorithm, p.algorithm);
            prop_assert_eq!(
                d.best_threshold, p.best_threshold,
                "{} best threshold drifted on the CSR path", d.algorithm
            );
            prop_assert_eq!(d.best, p.best, "{} P/R/F1 drifted", d.algorithm);
            prop_assert_eq!(
                d.bmc_basis_right, p.bmc_basis_right,
                "{} basis selection drifted", d.algorithm
            );
        }
    }

    #[test]
    fn mean_std_shift_invariance(
        values in proptest::collection::vec(-100.0f64..100.0, 1..60),
        shift in -50.0f64..50.0,
    ) {
        let base = mean_std(&values);
        let shifted: Vec<f64> = values.iter().map(|v| v + shift).collect();
        let s = mean_std(&shifted);
        prop_assert!((s.mean - (base.mean + shift)).abs() < 1e-6);
        prop_assert!((s.std - base.std).abs() < 1e-6);
    }
}
