//! Property tests for the evaluation layer.

use er_core::{GroundTruth, Matching};
use er_eval::aggregate::mean_std;
use er_eval::friedman::{friedman_test, ranks_desc};
use er_eval::metrics::evaluate;
use er_eval::pearson::pearson;
use er_eval::quartiles::Quartiles;
use proptest::prelude::*;

proptest! {
    #[test]
    fn metrics_are_bounded_and_consistent(
        gt_pairs in proptest::collection::btree_set((0u32..30, 0u32..30), 0..15),
        out_pairs in proptest::collection::btree_set((0u32..30, 0u32..30), 0..15),
    ) {
        // Make both sides one-to-one by keeping first occurrence per id.
        let one_to_one = |pairs: &std::collections::BTreeSet<(u32, u32)>| {
            let mut ls = std::collections::HashSet::new();
            let mut rs = std::collections::HashSet::new();
            pairs
                .iter()
                .filter(|(l, r)| ls.insert(*l) && rs.insert(*r))
                .copied()
                .collect::<Vec<_>>()
        };
        let gt = GroundTruth::new(one_to_one(&gt_pairs));
        let m = Matching::new(one_to_one(&out_pairs));
        let e = evaluate(&m, &gt);
        prop_assert!((0.0..=1.0).contains(&e.precision));
        prop_assert!((0.0..=1.0).contains(&e.recall));
        prop_assert!((0.0..=1.0).contains(&e.f1));
        prop_assert!(e.true_positives <= e.output_pairs);
        prop_assert!(e.true_positives <= e.ground_truth_pairs);
        // F1 is between min and max of precision/recall.
        let lo = e.precision.min(e.recall);
        let hi = e.precision.max(e.recall);
        prop_assert!(e.f1 >= lo - 1e-12 || e.f1 == 0.0);
        prop_assert!(e.f1 <= hi + 1e-12);
    }

    #[test]
    fn ranks_are_a_permutation_mean(row in proptest::collection::vec(0.0f64..1.0, 2..10)) {
        let ranks = ranks_desc(&row);
        let k = row.len() as f64;
        let sum: f64 = ranks.iter().sum();
        // Σ ranks = k(k+1)/2 regardless of ties.
        prop_assert!((sum - k * (k + 1.0) / 2.0).abs() < 1e-9);
        // Better score never gets a worse (higher) rank.
        for i in 0..row.len() {
            for j in 0..row.len() {
                if row[i] > row[j] {
                    prop_assert!(ranks[i] < ranks[j]);
                }
            }
        }
    }

    #[test]
    fn friedman_mean_ranks_bounded(
        scores in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 4),
            2..30,
        )
    ) {
        let r = friedman_test(&scores);
        for mr in &r.mean_ranks {
            prop_assert!((1.0..=4.0).contains(mr));
        }
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        prop_assert!(r.chi_square >= 0.0);
    }

    #[test]
    fn quartiles_are_ordered(values in proptest::collection::vec(-10.0f64..10.0, 1..50)) {
        let q = Quartiles::of(&values).unwrap();
        prop_assert!(q.min <= q.q1 + 1e-12);
        prop_assert!(q.q1 <= q.q2 + 1e-12);
        prop_assert!(q.q2 <= q.q3 + 1e-12);
        prop_assert!(q.q3 <= q.max + 1e-12);
        prop_assert!(q.iqr() >= -1e-12);
    }

    #[test]
    fn pearson_is_bounded_and_scale_invariant(
        pairs in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 3..40),
        a in 0.1f64..5.0,
        b in -3.0f64..3.0,
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r = pearson(&xs, &ys);
        prop_assert!((-1.0..=1.0).contains(&r));
        // Positive affine transforms preserve correlation.
        let ys2: Vec<f64> = ys.iter().map(|y| a * y + b).collect();
        let r2 = pearson(&xs, &ys2);
        prop_assert!((r - r2).abs() < 1e-6, "{r} vs {r2}");
    }

    #[test]
    fn mean_std_shift_invariance(
        values in proptest::collection::vec(-100.0f64..100.0, 1..60),
        shift in -50.0f64..50.0,
    ) {
        let base = mean_std(&values);
        let shifted: Vec<f64> = values.iter().map(|v| v + shift).collect();
        let s = mean_std(&shifted);
        prop_assert!((s.mean - (base.mean + shift)).abs() < 1e-6);
        prop_assert!((s.std - base.std).abs() < 1e-6);
    }
}
