//! Schema-agnostic n-gram **vector** (bag) models — Appendix B.2.1.
//!
//! An entity is modelled as a sparse vector with one dimension per distinct
//! n-gram, weighted by TF or TF-IDF. Term dimensions are *feature-hashed*
//! to `u64` ids (deterministic, collision probability negligible at our
//! vocabulary sizes), which keeps corpus statistics and inverted indexes
//! allocation-light.
//!
//! The four measure families of the paper: ARCS, cosine (TF / TF-IDF),
//! Jaccard (set), generalized Jaccard (TF / TF-IDF) — six similarity
//! functions per scheme, matching Figure 6.

use er_core::hash::seeded_hash64;
use er_core::FxHashMap;
use serde::{Deserialize, Serialize};

use crate::tokenize::NGramScheme;

/// Seed for term-id hashing (fixed so vectors are comparable across runs).
const TERM_SEED: u64 = 0x7e57_0123_4567_89ab;

/// Hash an n-gram to its dimension id.
#[inline]
pub fn term_id(gram: &str) -> u64 {
    seeded_hash64(gram.as_bytes(), TERM_SEED)
}

/// A sparse vector: `(term id, weight)` pairs sorted by term id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseVector {
    terms: Vec<(u64, f64)>,
}

impl SparseVector {
    /// Build from unordered (term, weight) pairs; duplicate terms are summed.
    pub fn from_pairs(mut pairs: Vec<(u64, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(t, _)| t);
        let mut terms: Vec<(u64, f64)> = Vec::with_capacity(pairs.len());
        for (t, w) in pairs {
            match terms.last_mut() {
                Some(last) if last.0 == t => last.1 += w,
                _ => terms.push((t, w)),
            }
        }
        SparseVector { terms }
    }

    /// The empty vector.
    pub fn empty() -> Self {
        SparseVector { terms: Vec::new() }
    }

    /// Number of non-zero dimensions.
    #[inline]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the vector has no terms.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Sorted `(term, weight)` pairs.
    #[inline]
    pub fn terms(&self) -> &[(u64, f64)] {
        &self.terms
    }

    /// Dot product (sorted merge join).
    pub fn dot(&self, other: &SparseVector) -> f64 {
        self.join(other).map(|(_, wa, wb)| wa * wb).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.terms.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt()
    }

    /// Sum of weights.
    pub fn weight_sum(&self) -> f64 {
        self.terms.iter().map(|&(_, w)| w).sum()
    }

    /// Number of common terms.
    pub fn common_terms(&self, other: &SparseVector) -> usize {
        self.join(other).count()
    }

    /// Σ min(w_a, w_b) over common terms.
    pub fn common_min_sum(&self, other: &SparseVector) -> f64 {
        self.join(other).map(|(_, wa, wb)| wa.min(wb)).sum()
    }

    /// Iterate common terms as `(term, w_self, w_other)`.
    pub fn join<'a>(
        &'a self,
        other: &'a SparseVector,
    ) -> impl Iterator<Item = (u64, f64, f64)> + 'a {
        JoinIter {
            a: &self.terms,
            b: &other.terms,
            i: 0,
            j: 0,
        }
    }
}

struct JoinIter<'a> {
    a: &'a [(u64, f64)],
    b: &'a [(u64, f64)],
    i: usize,
    j: usize,
}

impl Iterator for JoinIter<'_> {
    type Item = (u64, f64, f64);

    fn next(&mut self) -> Option<Self::Item> {
        while self.i < self.a.len() && self.j < self.b.len() {
            let (ta, wa) = self.a[self.i];
            let (tb, wb) = self.b[self.j];
            match ta.cmp(&tb) {
                std::cmp::Ordering::Less => self.i += 1,
                std::cmp::Ordering::Greater => self.j += 1,
                std::cmp::Ordering::Equal => {
                    self.i += 1;
                    self.j += 1;
                    return Some((ta, wa, wb));
                }
            }
        }
        None
    }
}

/// Term weighting scheme for bag models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TermWeighting {
    /// Term frequency, normalized by the entity's n-gram count.
    Tf,
    /// TF × inverse document frequency over an entity collection.
    TfIdf,
}

/// Document-frequency statistics of one entity collection.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DfIndex {
    n_docs: usize,
    df: FxHashMap<u64, u32>,
}

impl DfIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register one document's distinct terms.
    pub fn add_document<I: IntoIterator<Item = u64>>(&mut self, distinct_terms: I) {
        self.n_docs += 1;
        for t in distinct_terms {
            *self.df.entry(t).or_insert(0) += 1;
        }
    }

    /// Number of registered documents.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Document frequency of a term.
    pub fn df(&self, term: u64) -> u32 {
        self.df.get(&term).copied().unwrap_or(0)
    }

    /// `IDF(t) = ln(|E| / (df(t) + 1))`, clamped at 0 (the paper's
    /// Appendix B.2.1 formula; frequent terms approach zero weight).
    pub fn idf(&self, term: u64) -> f64 {
        if self.n_docs == 0 {
            return 0.0;
        }
        (self.n_docs as f64 / (self.df(term) as f64 + 1.0))
            .ln()
            .max(0.0)
    }
}

/// A bag-of-n-grams representation model for one scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorModel {
    /// Which n-grams this model extracts.
    pub scheme: NGramScheme,
}

impl VectorModel {
    /// Create a model over `scheme`.
    pub fn new(scheme: NGramScheme) -> Self {
        VectorModel { scheme }
    }

    /// Normalized term frequencies of a text: `TF(t) = f_t / N`.
    pub fn term_frequencies(&self, text: &str) -> FxHashMap<u64, f64> {
        let grams = self.scheme.extract(text);
        let n = grams.len() as f64;
        let mut counts: FxHashMap<u64, f64> = FxHashMap::default();
        for g in &grams {
            *counts.entry(term_id(g)).or_insert(0.0) += 1.0;
        }
        if n > 0.0 {
            for w in counts.values_mut() {
                *w /= n;
            }
        }
        counts
    }

    /// Build the entity vector under a weighting scheme.
    ///
    /// For TF-IDF, `df` must be the entity's own collection index.
    pub fn vector(
        &self,
        text: &str,
        weighting: TermWeighting,
        df: Option<&DfIndex>,
    ) -> SparseVector {
        let tf = self.term_frequencies(text);
        let pairs = tf
            .into_iter()
            .map(|(t, w)| {
                let w = match weighting {
                    TermWeighting::Tf => w,
                    TermWeighting::TfIdf => {
                        w * df.expect("TF-IDF weighting requires a DfIndex").idf(t)
                    }
                };
                (t, w)
            })
            .collect();
        SparseVector::from_pairs(pairs)
    }
}

/// The six bag-model similarity functions (Figure 6, schema-agnostic
/// vector column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VectorMeasure {
    /// ARCS: Σ over common terms of `log 2 / log(DF1·DF2)` — rare shared
    /// n-grams dominate. Unbounded above; the pipeline min-max normalizes.
    Arcs,
    /// Cosine with TF weights.
    CosineTf,
    /// Cosine with TF-IDF weights.
    CosineTfIdf,
    /// Set Jaccard over term sets.
    Jaccard,
    /// Generalized Jaccard with TF weights.
    GeneralizedJaccardTf,
    /// Generalized Jaccard with TF-IDF weights.
    GeneralizedJaccardTfIdf,
}

impl VectorMeasure {
    /// All six measures.
    pub fn all() -> [VectorMeasure; 6] {
        [
            VectorMeasure::Arcs,
            VectorMeasure::CosineTf,
            VectorMeasure::CosineTfIdf,
            VectorMeasure::Jaccard,
            VectorMeasure::GeneralizedJaccardTf,
            VectorMeasure::GeneralizedJaccardTfIdf,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            VectorMeasure::Arcs => "ARCS",
            VectorMeasure::CosineTf => "CosineTF",
            VectorMeasure::CosineTfIdf => "CosineTFIDF",
            VectorMeasure::Jaccard => "Jaccard",
            VectorMeasure::GeneralizedJaccardTf => "GenJaccardTF",
            VectorMeasure::GeneralizedJaccardTfIdf => "GenJaccardTFIDF",
        }
    }

    /// Which weighting the entity vectors must carry for this measure.
    pub fn weighting(&self) -> TermWeighting {
        match self {
            VectorMeasure::CosineTfIdf | VectorMeasure::GeneralizedJaccardTfIdf => {
                TermWeighting::TfIdf
            }
            // ARCS and set-Jaccard ignore weights; TF vectors suffice.
            _ => TermWeighting::Tf,
        }
    }

    /// Whether the raw score can exceed 1 (requiring graph-level
    /// normalization).
    pub fn is_unbounded(&self) -> bool {
        matches!(self, VectorMeasure::Arcs)
    }

    /// Similarity of two entity vectors. `dfs` are the per-collection
    /// document-frequency indexes, required by ARCS.
    pub fn similarity(
        &self,
        a: &SparseVector,
        b: &SparseVector,
        dfs: Option<(&DfIndex, &DfIndex)>,
    ) -> f64 {
        if a.is_empty() && b.is_empty() {
            return match self {
                VectorMeasure::Arcs => 0.0,
                _ => 1.0,
            };
        }
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        match self {
            VectorMeasure::Arcs => {
                let (df1, df2) = dfs.expect("ARCS requires per-collection DF indexes");
                a.join(b)
                    .map(|(t, _, _)| arcs_term_weight(df1.df(t), df2.df(t)))
                    .sum()
            }
            VectorMeasure::CosineTf | VectorMeasure::CosineTfIdf => {
                let denom = a.norm() * b.norm();
                if denom == 0.0 {
                    0.0
                } else {
                    (a.dot(b) / denom).clamp(0.0, 1.0)
                }
            }
            VectorMeasure::Jaccard => {
                let inter = a.common_terms(b);
                let union = a.len() + b.len() - inter;
                if union == 0 {
                    1.0
                } else {
                    inter as f64 / union as f64
                }
            }
            VectorMeasure::GeneralizedJaccardTf | VectorMeasure::GeneralizedJaccardTfIdf => {
                let min_sum = a.common_min_sum(b);
                let max_sum = a.weight_sum() + b.weight_sum() - min_sum;
                if max_sum <= 0.0 {
                    1.0
                } else {
                    (min_sum / max_sum).clamp(0.0, 1.0)
                }
            }
        }
    }
}

/// One common term's ARCS contribution: `log 2 / log(DF1·DF2)`, guarding
/// the degenerate `DF1·DF2 ≤ 1` case (unique terms) by flooring the product
/// at 2 — such terms then contribute the maximal weight 1.
#[inline]
fn arcs_term_weight(df1: u32, df2: u32) -> f64 {
    let prod = (df1 as f64 * df2 as f64).max(2.0);
    std::f64::consts::LN_2 / prod.ln()
}

/// Relative slack applied to every [`ProbePlan`] suffix bound.
///
/// The plan accumulates per-term contributions in *its* visit order while
/// [`VectorMeasure::similarity`] sums the same quantities in term-id order;
/// two float summation orders can disagree by a relative `n·ε ≈ 1e-12` at
/// realistic vector lengths. `1e-9` leaves three orders of magnitude of
/// headroom while staying far below any similarity gap the top-k heap could
/// distinguish.
pub const SUFFIX_BOUND_MARGIN: f64 = 1e-9;

/// A prefix-filter probe plan for one row vector — the generation-side form
/// of the token measures' shared-term upper bounds (AllPairs/PPJoin style).
///
/// The plan visits the probe's terms in an order chosen per measure
/// (descending bound contribution; ascending right-side document frequency
/// for set Jaccard, whose contributions are uniform) and carries
/// `suffix_bound(i)`: an upper bound on the similarity of the probe with
/// **any** vector sharing terms only among `order[i..]`. A candidate
/// generator that probes postings in plan order may therefore stop at step
/// `i` once `suffix_bound(i)` falls strictly below a top-k admission bound:
/// every not-yet-discovered candidate shares no term before `i`, so its
/// true similarity is dominated by `suffix_bound(i)` and it could never be
/// admitted. Bounds are monotone non-increasing in `i` and carry
/// [`SUFFIX_BOUND_MARGIN`] against float-sum reordering.
///
/// ```
/// use er_textsim::{SparseVector, VectorMeasure};
///
/// let probe = SparseVector::from_pairs(vec![(1, 0.8), (2, 0.5), (3, 0.1)]);
/// let plan = VectorMeasure::CosineTf.probe_plan(&probe, None);
/// assert_eq!(plan.len(), 3);
/// // Suffix bounds dominate every candidate sharing only suffix terms:
/// // a vector sharing only term 3 (visited last) scores at most the
/// // final single-term bound.
/// let tail = SparseVector::from_pairs(vec![(3, 1.0), (9, 1.0)]);
/// let sim = VectorMeasure::CosineTf.similarity(&probe, &tail, None);
/// assert!(sim <= plan.suffix_bound(plan.len() - 1));
/// // And the full-prefix bound dominates any candidate at all.
/// assert!(sim <= plan.suffix_bound(0));
/// ```
#[derive(Debug, Clone)]
pub struct ProbePlan {
    /// Positions into the probe's `terms()`, in visit order.
    order: Vec<u32>,
    /// `order.len() + 1` bounds; entry `i` bounds any pair sharing terms
    /// only among `order[i..]`.
    suffix_bounds: Vec<f64>,
}

impl ProbePlan {
    /// Number of planned probe steps (the probe's term count).
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the probe has no terms to visit.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Position (into the probe's `terms()`) visited at step `i`.
    #[inline]
    pub fn term_position(&self, i: usize) -> usize {
        self.order[i] as usize
    }

    /// Upper bound on the similarity of the probe with any vector sharing
    /// terms only among steps `i..` (`i == len()` means no shared terms).
    #[inline]
    pub fn suffix_bound(&self, i: usize) -> f64 {
        self.suffix_bounds[i]
    }
}

impl VectorMeasure {
    /// Build the prefix-filter [`ProbePlan`] for `probe` under this
    /// measure. `dfs` carries the per-collection document-frequency
    /// indexes — required by ARCS (as in [`similarity`](Self::similarity)),
    /// used as a postings-cost heuristic by set Jaccard, ignored otherwise.
    pub fn probe_plan(&self, probe: &SparseVector, dfs: Option<(&DfIndex, &DfIndex)>) -> ProbePlan {
        let terms = probe.terms();
        let n = terms.len();
        if n == 0 {
            return ProbePlan {
                order: Vec::new(),
                suffix_bounds: vec![0.0],
            };
        }
        // Additive per-term contribution to the shared-term bound.
        let contrib: Vec<f64> = match self {
            VectorMeasure::Arcs => {
                let (df1, df2) = dfs.expect("ARCS requires per-collection DF indexes");
                terms
                    .iter()
                    .map(|&(t, _)| arcs_term_weight(df1.df(t), df2.df(t)))
                    .collect()
            }
            VectorMeasure::CosineTf | VectorMeasure::CosineTfIdf => {
                terms.iter().map(|&(_, w)| w * w).collect()
            }
            VectorMeasure::Jaccard => vec![1.0; n],
            VectorMeasure::GeneralizedJaccardTf | VectorMeasure::GeneralizedJaccardTfIdf => {
                terms.iter().map(|&(_, w)| w).collect()
            }
        };
        let mut order: Vec<u32> = (0..n as u32).collect();
        match self {
            // Uniform contributions: any order yields the same bounds, so
            // visit rare right-side terms (short postings) first.
            VectorMeasure::Jaccard => {
                if let Some((_, df2)) = dfs {
                    order.sort_by_key(|&i| (df2.df(terms[i as usize].0), i));
                }
            }
            _ => order.sort_by(|&i, &j| {
                contrib[j as usize]
                    .partial_cmp(&contrib[i as usize])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(i.cmp(&j))
            }),
        }
        let norm = probe.norm();
        let wsum = probe.weight_sum();
        let mut suffix_bounds = vec![0.0; n + 1];
        let mut acc = 0.0f64;
        suffix_bounds[n] = self.suffix_bound_of(acc, n, 0, norm, wsum);
        for i in (0..n).rev() {
            acc += contrib[order[i] as usize];
            suffix_bounds[i] = self.suffix_bound_of(acc, n, n - i, norm, wsum);
        }
        ProbePlan {
            order,
            suffix_bounds,
        }
    }

    /// Map an accumulated suffix contribution to a similarity upper bound.
    ///
    /// * ARCS: the score *is* the shared-term sum, so `acc` bounds it.
    /// * Cosine: Cauchy–Schwarz — `dot(a, b) ≤ ‖a_S‖·‖b‖` when shared
    ///   terms lie in `S`, so `cos ≤ ‖a_S‖ / ‖a‖ = √acc / ‖a‖` (zero norm
    ///   scores exactly 0 by convention).
    /// * Set Jaccard: `inter ≤ |S|` and `union ≥ |a|`, so
    ///   `J ≤ remaining / |a|`.
    /// * Generalized Jaccard: `min_sum ≤ Σ_S w_a` and
    ///   `max_sum ≥ Σ_a w_a`, so `GJ ≤ acc / wsum` (non-positive total
    ///   weight scores the degenerate 1.0, which we bound by 1.0).
    fn suffix_bound_of(&self, acc: f64, n: usize, remaining: usize, norm: f64, wsum: f64) -> f64 {
        let raw = match self {
            VectorMeasure::Arcs => acc,
            VectorMeasure::CosineTf | VectorMeasure::CosineTfIdf => {
                if norm == 0.0 {
                    0.0
                } else {
                    (acc.sqrt() / norm).min(1.0)
                }
            }
            VectorMeasure::Jaccard => remaining as f64 / n as f64,
            VectorMeasure::GeneralizedJaccardTf | VectorMeasure::GeneralizedJaccardTfIdf => {
                if wsum <= 0.0 {
                    1.0
                } else {
                    (acc / wsum).min(1.0)
                }
            }
        };
        raw * (1.0 + SUFFIX_BOUND_MARGIN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    fn vec_of(pairs: &[(u64, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    #[test]
    fn sparse_vector_merges_duplicates_and_sorts() {
        let v = vec_of(&[(5, 1.0), (2, 0.5), (5, 2.0)]);
        assert_eq!(v.terms(), &[(2, 0.5), (5, 3.0)]);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn dot_and_norm() {
        let a = vec_of(&[(1, 1.0), (2, 2.0)]);
        let b = vec_of(&[(2, 3.0), (3, 4.0)]);
        assert!((a.dot(&b) - 6.0).abs() < EPS);
        assert!((a.norm() - 5.0f64.sqrt()).abs() < EPS);
        assert_eq!(a.common_terms(&b), 1);
        assert!((a.common_min_sum(&b) - 2.0).abs() < EPS);
    }

    #[test]
    fn model_builds_normalized_tf() {
        let m = VectorModel::new(NGramScheme::Token(1));
        let tf = m.term_frequencies("a b a");
        assert_eq!(tf.len(), 2);
        assert!((tf[&term_id("a")] - 2.0 / 3.0).abs() < EPS);
        assert!((tf[&term_id("b")] - 1.0 / 3.0).abs() < EPS);
    }

    #[test]
    fn tfidf_discounts_common_terms() {
        let m = VectorModel::new(NGramScheme::Token(1));
        let mut df = DfIndex::new();
        // "the" appears in all 4 docs; "zebra" in 1.
        for _ in 0..3 {
            df.add_document([term_id("the")]);
        }
        df.add_document([term_id("the"), term_id("zebra")]);
        let v = m.vector("the zebra", TermWeighting::TfIdf, Some(&df));
        let w_the = v
            .terms()
            .iter()
            .find(|&&(t, _)| t == term_id("the"))
            .unwrap()
            .1;
        let w_zebra = v
            .terms()
            .iter()
            .find(|&&(t, _)| t == term_id("zebra"))
            .unwrap()
            .1;
        assert!(w_zebra > w_the, "rare term must outweigh stop word");
        assert!((w_the - 0.0).abs() < EPS, "df+1 == |E| → idf 0");
    }

    #[test]
    fn cosine_tf_identity_and_disjoint() {
        let m = VectorModel::new(NGramScheme::Char(3));
        let a = m.vector("john smith", TermWeighting::Tf, None);
        let b = m.vector("john smith", TermWeighting::Tf, None);
        let c = m.vector("zzzzzz", TermWeighting::Tf, None);
        assert!((VectorMeasure::CosineTf.similarity(&a, &b, None) - 1.0).abs() < EPS);
        assert_eq!(VectorMeasure::CosineTf.similarity(&a, &c, None), 0.0);
    }

    #[test]
    fn jaccard_counts_term_sets() {
        let a = vec_of(&[(1, 0.9), (2, 0.1), (3, 0.5)]);
        let b = vec_of(&[(2, 0.7), (3, 0.2), (4, 0.4)]);
        assert!((VectorMeasure::Jaccard.similarity(&a, &b, None) - 0.5).abs() < EPS);
    }

    #[test]
    fn generalized_jaccard_uses_weights() {
        let a = vec_of(&[(1, 0.6), (2, 0.4)]);
        let b = vec_of(&[(1, 0.2), (3, 0.8)]);
        // min common = 0.2; max total = 1.0 + 1.0 - 0.2 = 1.8.
        let s = VectorMeasure::GeneralizedJaccardTf.similarity(&a, &b, None);
        assert!((s - 0.2 / 1.8).abs() < EPS);
    }

    #[test]
    fn arcs_prefers_rare_shared_terms() {
        let mut df1 = DfIndex::new();
        let mut df2 = DfIndex::new();
        // term 1 is common in both collections, term 2 rare.
        for _ in 0..100 {
            df1.add_document([1u64]);
            df2.add_document([1u64]);
        }
        df1.add_document([2u64]);
        df2.add_document([2u64]);
        let shared_common = vec_of(&[(1, 1.0)]);
        let shared_rare = vec_of(&[(2, 1.0)]);
        let s_common =
            VectorMeasure::Arcs.similarity(&shared_common, &shared_common, Some((&df1, &df2)));
        let s_rare = VectorMeasure::Arcs.similarity(&shared_rare, &shared_rare, Some((&df1, &df2)));
        assert!(
            s_rare > s_common,
            "rare shared term {s_rare} must beat common {s_common}"
        );
        // Exact: df=100 each → ln2/ln(10000); df=1 each → floor at 2.
        assert!((s_common - std::f64::consts::LN_2 / 10_000f64.ln()).abs() < EPS);
        assert!((s_rare - 1.0).abs() < EPS);
    }

    #[test]
    fn measure_roster_and_weighting() {
        assert_eq!(VectorMeasure::all().len(), 6);
        assert_eq!(VectorMeasure::CosineTfIdf.weighting(), TermWeighting::TfIdf);
        assert_eq!(VectorMeasure::Jaccard.weighting(), TermWeighting::Tf);
        assert!(VectorMeasure::Arcs.is_unbounded());
        assert!(!VectorMeasure::CosineTf.is_unbounded());
    }

    #[test]
    fn empty_vector_conventions() {
        let e = SparseVector::empty();
        let v = vec_of(&[(1, 1.0)]);
        for m in VectorMeasure::all() {
            if m == VectorMeasure::Arcs {
                continue; // needs DF indexes
            }
            assert_eq!(m.similarity(&e, &v, None), 0.0, "{}", m.name());
            assert_eq!(m.similarity(&e, &e, None), 1.0, "{}", m.name());
        }
    }
}
