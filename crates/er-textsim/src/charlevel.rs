//! Character-level schema-based similarity measures (Appendix B.1.1).
//!
//! All functions return similarities in `[0, 1]`; distance measures are
//! normalized as documented per function. Two empty strings are maximally
//! similar (1.0); an empty vs non-empty string scores 0.0.
//!
//! # The scoring engine underneath
//!
//! Every measure has two faces:
//!
//! * the classic `&str` API (`levenshtein_similarity(a, b)` etc.), which
//!   decodes each argument **once** into a thread-local scratch and
//!   delegates to the slice kernels — no per-call `Vec<char>` pairs, no
//!   double `chars()` walk for length + distance;
//! * the `*_codes` slice kernels over `&[u32]` Unicode scalars with an
//!   explicit reusable [`CharScratch`], the allocation-free shape the
//!   all-pairs construction engine drives via a prepared
//!   [`CharTable`](crate::CharTable).
//!
//! Levenshtein runs on the Myers bit-parallel kernel
//! ([`crate::bitpar`]); [`levenshtein_distance_classic`] keeps the
//! reference dynamic program for property tests and benchmarks.
//! [`CharMeasure::length_upper_bound`] and
//! [`CharMeasure::bag_upper_bound`] give cheap *exact* upper bounds
//! (each provably ≥ the measure's own computed `f64`, term by term under
//! monotone float operations), which is what lets a top-k sink prune a
//! candidate **before** scoring without changing any retained weight.

use std::cell::RefCell;

use serde::{Deserialize, Serialize};

use er_core::FxHashMap;

use crate::bitpar::{self, BandRows, MyersPattern};
use crate::chartable::sorted_common_count;

/// q-gram order of [`qgrams_similarity`] (Simmetrics-style trigrams).
const Q: usize = 3;

/// Padding character of the q-gram profiles — the literal `#` of the
/// Simmetrics convention, kept deliberately: a real `#` in the text
/// merges with padding grams exactly as it always has, so the packed
/// profiles are bit-compatible with the historical `String`-keyed ones
/// for **every** input.
const QGRAM_PAD: u32 = '#' as u32;

// The packing invariant behind `qgram_key`: every scalar value (and the
// pad) fits a 21-bit lane, so three pack losslessly into a u64.
const _: () = assert!(QGRAM_PAD < (1 << 21) && (char::MAX as u32) < (1 << 21));

/// The seven character-level measures of the paper's taxonomy (Figure 6),
/// in its listing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CharMeasure {
    /// Damerau-Levenshtein similarity (edit distance with transpositions).
    DamerauLevenshtein,
    /// Levenshtein similarity.
    Levenshtein,
    /// q-grams distance (block distance over padded trigram profiles).
    QGrams,
    /// Jaro similarity.
    Jaro,
    /// Needleman-Wunch global-alignment similarity.
    NeedlemanWunsch,
    /// Longest common subsequence similarity.
    LongestCommonSubsequence,
    /// Longest common substring similarity.
    LongestCommonSubstring,
}

impl CharMeasure {
    /// All character-level measures.
    pub fn all() -> [CharMeasure; 7] {
        [
            CharMeasure::DamerauLevenshtein,
            CharMeasure::Levenshtein,
            CharMeasure::QGrams,
            CharMeasure::Jaro,
            CharMeasure::NeedlemanWunsch,
            CharMeasure::LongestCommonSubsequence,
            CharMeasure::LongestCommonSubstring,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            CharMeasure::DamerauLevenshtein => "DamerauLevenshtein",
            CharMeasure::Levenshtein => "Levenshtein",
            CharMeasure::QGrams => "QGrams",
            CharMeasure::Jaro => "Jaro",
            CharMeasure::NeedlemanWunsch => "NeedlemanWunsch",
            CharMeasure::LongestCommonSubsequence => "LCSubsequence",
            CharMeasure::LongestCommonSubstring => "LCSubstring",
        }
    }

    /// Compute the similarity of two strings (thread-local scratch; each
    /// argument is decoded exactly once).
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        let m = *self;
        with_str_codes(a, b, |ca, cb, s| m.similarity_codes(ca, cb, s))
    }

    /// Compute the similarity of two pre-decoded scalar-value slices with
    /// an explicit reusable scratch — the allocation-free hot path of the
    /// all-pairs scorers. Bit-identical to [`CharMeasure::similarity`]
    /// on the same text.
    ///
    /// ```
    /// use er_textsim::{CharMeasure, CharScratch};
    ///
    /// let a: Vec<u32> = "kitten".chars().map(u32::from).collect();
    /// let b: Vec<u32> = "sitting".chars().map(u32::from).collect();
    /// let mut s = CharScratch::new();
    /// let got = CharMeasure::Levenshtein.similarity_codes(&a, &b, &mut s);
    /// assert_eq!(got, CharMeasure::Levenshtein.similarity("kitten", "sitting"));
    /// ```
    pub fn similarity_codes(&self, a: &[u32], b: &[u32], s: &mut CharScratch) -> f64 {
        match self {
            CharMeasure::DamerauLevenshtein => {
                let max_len = a.len().max(b.len());
                if max_len == 0 {
                    return 1.0;
                }
                1.0 - osa_distance_codes(a, b, s) as f64 / max_len as f64
            }
            CharMeasure::Levenshtein => {
                let max_len = a.len().max(b.len());
                if max_len == 0 {
                    return 1.0;
                }
                // The shorter side as the pattern: fewest 64-bit blocks.
                let d = if a.len() <= b.len() {
                    s.set_pattern(a);
                    s.pattern_distance(b)
                } else {
                    s.set_pattern(b);
                    s.pattern_distance(a)
                };
                1.0 - d as f64 / max_len as f64
            }
            CharMeasure::QGrams => qgrams_similarity_codes(a, b, s),
            CharMeasure::Jaro => jaro_similarity_codes(a, b, s),
            CharMeasure::NeedlemanWunsch => needleman_wunsch_similarity_codes(a, b, s),
            CharMeasure::LongestCommonSubsequence => {
                let max_len = a.len().max(b.len());
                if max_len == 0 {
                    return 1.0;
                }
                lcs_subsequence_len_codes(a, b, s) as f64 / max_len as f64
            }
            CharMeasure::LongestCommonSubstring => {
                let max_len = a.len().max(b.len());
                if max_len == 0 {
                    return 1.0;
                }
                lcs_substring_len_codes(a, b, s) as f64 / max_len as f64
            }
        }
    }

    /// An **exact** `O(1)` upper bound on the similarity from the two
    /// character lengths alone.
    ///
    /// Exactness contract: the returned value is ≥ the `f64` this
    /// measure itself computes for any strings of these lengths — every
    /// term of the bound dominates the corresponding term of the
    /// measure's formula and only monotone float operations combine
    /// them. A top-k sink may therefore skip any candidate whose bound
    /// falls strictly below its admission weight without changing the
    /// retained edge set by a single bit.
    ///
    /// ```
    /// use er_textsim::CharMeasure;
    ///
    /// for m in CharMeasure::all() {
    ///     let ub = m.length_upper_bound(6, 7);
    ///     assert!(m.similarity("kitten", "sitting") <= ub);
    /// }
    /// assert_eq!(CharMeasure::Levenshtein.length_upper_bound(0, 0), 1.0);
    /// assert_eq!(CharMeasure::Jaro.length_upper_bound(0, 4), 0.0);
    /// ```
    pub fn length_upper_bound(&self, la: usize, lb: usize) -> f64 {
        let (mn, mx) = (la.min(lb), la.max(lb));
        if mx == 0 {
            return 1.0; // both empty: every measure scores exactly 1
        }
        if mn == 0 {
            return 0.0; // one side empty: every measure scores exactly 0
        }
        match self {
            // d ≥ |la − lb| (every edit changes the length by ≤ 1; a
            // transposition not at all).
            CharMeasure::DamerauLevenshtein | CharMeasure::Levenshtein => {
                1.0 - (mx - mn) as f64 / mx as f64
            }
            // Padded profiles hold lᵢ + Q − 1 grams; the block distance
            // is at least the profile-mass difference.
            CharMeasure::QGrams => {
                let (na, nb) = (la + Q - 1, lb + Q - 1);
                1.0 - na.abs_diff(nb) as f64 / (na + nb) as f64
            }
            // m ≤ min(la, lb) and (m − t)/m ≤ 1.
            CharMeasure::Jaro => (mn as f64 / la as f64 + mn as f64 / lb as f64 + 1.0) / 3.0,
            // Any alignment pays ≥ |la − lb| gaps at −2 each.
            CharMeasure::NeedlemanWunsch => {
                let worst = 2 * (mx - mn);
                (1.0 - worst as f64 / (2.0 * mx as f64)).clamp(0.0, 1.0)
            }
            // A common sub{sequence, string} is at most the shorter side.
            CharMeasure::LongestCommonSubsequence | CharMeasure::LongestCommonSubstring => {
                mn as f64 / mx as f64
            }
        }
    }

    /// An **exact** `O(|a| + |b|)` upper bound from the sorted character
    /// bags (counting filter): `common` shared characters cap the match
    /// count of every alignment-free term. `None` for measures without a
    /// useful bag bound (q-grams, whose profile lives on windows, not
    /// characters). Same exactness contract as
    /// [`CharMeasure::length_upper_bound`].
    ///
    /// ```
    /// use er_textsim::{CharMeasure, CharTable};
    ///
    /// let t = CharTable::build(["kitten", "sitting"]);
    /// let m = CharMeasure::Levenshtein;
    /// let ub = m.bag_upper_bound(t.bag(0), t.bag(1)).unwrap();
    /// assert!(m.similarity("kitten", "sitting") <= ub);
    /// assert!(CharMeasure::QGrams.bag_upper_bound(t.bag(0), t.bag(1)).is_none());
    /// ```
    pub fn bag_upper_bound(&self, bag_a: &[u32], bag_b: &[u32]) -> Option<f64> {
        if matches!(self, CharMeasure::QGrams) {
            return None;
        }
        self.bag_upper_bound_from_common(
            sorted_common_count(bag_a, bag_b),
            bag_a.len(),
            bag_b.len(),
        )
    }

    /// Whether [`CharMeasure::bag_upper_bound`] exists for this measure —
    /// i.e. whether a counting-filter index probe is worth paying for.
    ///
    /// ```
    /// use er_textsim::CharMeasure;
    ///
    /// assert!(CharMeasure::Levenshtein.has_bag_bound());
    /// assert!(!CharMeasure::QGrams.has_bag_bound());
    /// ```
    #[inline]
    pub fn has_bag_bound(&self) -> bool {
        !matches!(self, CharMeasure::QGrams)
    }

    /// The [`CharMeasure::bag_upper_bound`] formula evaluated from an
    /// externally computed multiset-intersection size — the
    /// **index-facing** form of the counting filter. A length-bucketed
    /// candidate index obtains `common` from its `(character, occurrence
    /// tier)` postings instead of a per-pair two-pointer merge; feeding
    /// the same integer into this method reproduces the per-pair bound
    /// **bit for bit**, so index-side filtering inherits the exactness
    /// contract unchanged (property-checked in `tests/proptests.rs`).
    ///
    /// `common` must be `sorted_common_count` of the two character bags;
    /// `la` / `lb` are the two character lengths.
    ///
    /// ```
    /// use er_textsim::{sorted_common_count, CharMeasure, CharTable};
    ///
    /// let t = CharTable::build(["kitten", "sitting"]);
    /// let m = CharMeasure::Levenshtein;
    /// let common = sorted_common_count(t.bag(0), t.bag(1));
    /// assert_eq!(
    ///     m.bag_upper_bound_from_common(common, 6, 7),
    ///     m.bag_upper_bound(t.bag(0), t.bag(1)),
    /// );
    /// ```
    pub fn bag_upper_bound_from_common(&self, common: usize, la: usize, lb: usize) -> Option<f64> {
        if matches!(self, CharMeasure::QGrams) {
            return None;
        }
        let (mn, mx) = (la.min(lb), la.max(lb));
        if mx == 0 {
            return Some(1.0);
        }
        if mn == 0 {
            return Some(0.0);
        }
        Some(match self {
            // Edits that fix the multiset difference: d ≥ max − common
            // (a transposition changes no multiset, so this holds for
            // the OSA variant too).
            CharMeasure::DamerauLevenshtein | CharMeasure::Levenshtein => {
                1.0 - (mx - common) as f64 / mx as f64
            }
            // Jaro matches are an injection between equal characters,
            // so m ≤ common; m = 0 scores exactly 0.
            CharMeasure::Jaro => {
                if common == 0 {
                    0.0
                } else {
                    (common as f64 / la as f64 + common as f64 / lb as f64 + 1.0) / 3.0
                }
            }
            // matches ≤ common, so aligned mismatches ≥ min − common on
            // top of the |la − lb| forced gaps.
            CharMeasure::NeedlemanWunsch => {
                let worst = (mn - common) + 2 * (mx - mn);
                (1.0 - worst as f64 / (2.0 * mx as f64)).clamp(0.0, 1.0)
            }
            // A common sub{sequence, string} uses each character once
            // per side, so its length is ≤ the multiset intersection.
            CharMeasure::LongestCommonSubsequence | CharMeasure::LongestCommonSubstring => {
                common as f64 / mx as f64
            }
            CharMeasure::QGrams => unreachable!("handled above"),
        })
    }
}

/// Reusable per-worker scratch of the character kernels: Myers pattern
/// masks, banded-DP rows, rolling DP rows, Jaro stamps and q-gram
/// profile maps. One instance per scoring worker (or per thread for the
/// `&str` API); after warm-up, no kernel allocates.
#[derive(Debug, Clone, Default)]
pub struct CharScratch {
    myers: MyersPattern,
    band: BandRows,
    prev_u: Vec<usize>,
    cur_u: Vec<usize>,
    prev2_u: Vec<usize>,
    prev_f: Vec<f64>,
    cur_f: Vec<f64>,
    /// Jaro "b used" stamps (generation-tagged, never cleared).
    b_used: Vec<u32>,
    used_gen: u32,
    matches_a: Vec<u32>,
    matches_b: Vec<u32>,
    qa: FxHashMap<u64, usize>,
    qb: FxHashMap<u64, usize>,
}

impl CharScratch {
    /// Fresh scratch (all buffers empty; they grow to the corpus
    /// high-water mark and stay there).
    pub fn new() -> Self {
        CharScratch::default()
    }

    /// Prepare the Myers bit-parallel pattern for `a` — the row-level
    /// half of a Levenshtein comparison, reusable against every
    /// candidate of the row via [`CharScratch::pattern_distance`].
    #[inline]
    pub fn set_pattern(&mut self, a: &[u32]) {
        self.myers.prepare(a);
    }

    /// Levenshtein distance of the pattern prepared by
    /// [`CharScratch::set_pattern`] to `b`.
    #[inline]
    pub fn pattern_distance(&mut self, b: &[u32]) -> usize {
        self.myers.distance(b)
    }

    /// Cutoff-bounded Levenshtein distance (`None` ⇔ `> max_dist`) via
    /// the scratch band rows; see [`bitpar::levenshtein_bounded`].
    #[inline]
    pub fn levenshtein_bounded(&mut self, a: &[u32], b: &[u32], max_dist: usize) -> Option<usize> {
        bitpar::levenshtein_bounded(a, b, max_dist, &mut self.band)
    }

    /// Cutoff-bounded Damerau-Levenshtein (OSA) distance; see
    /// [`bitpar::osa_bounded`].
    #[inline]
    pub fn osa_bounded(&mut self, a: &[u32], b: &[u32], max_dist: usize) -> Option<usize> {
        bitpar::osa_bounded(a, b, max_dist, &mut self.band)
    }
}

/// Thread-local decode buffers + scratch backing the `&str` API.
struct StrScratch {
    a: Vec<u32>,
    b: Vec<u32>,
    s: CharScratch,
}

thread_local! {
    static STR_SCRATCH: RefCell<StrScratch> = RefCell::new(StrScratch {
        a: Vec::new(),
        b: Vec::new(),
        s: CharScratch::new(),
    });
}

/// Decode `a` and `b` once into the thread-local buffers and run `f`.
fn with_str_codes<R>(a: &str, b: &str, f: impl FnOnce(&[u32], &[u32], &mut CharScratch) -> R) -> R {
    STR_SCRATCH.with(|cell| {
        let w = &mut *cell.borrow_mut();
        w.a.clear();
        w.a.extend(a.chars().map(u32::from));
        w.b.clear();
        w.b.extend(b.chars().map(u32::from));
        f(&w.a, &w.b, &mut w.s)
    })
}

/// Levenshtein edit distance (insert/delete/substitute) on the Myers
/// bit-parallel kernel: `O(⌈min/64⌉·max)` word operations instead of the
/// classic `O(|a|·|b|)` cell grid, with identical results
/// (property-proven against [`levenshtein_distance_classic`]).
pub fn levenshtein_distance(a: &str, b: &str) -> usize {
    with_str_codes(a, b, |ca, cb, s| {
        if ca.len() <= cb.len() {
            s.set_pattern(ca);
            s.pattern_distance(cb)
        } else {
            s.set_pattern(cb);
            s.pattern_distance(ca)
        }
    })
}

/// The classic `O(|a|·|b|)`-time rolling-row Levenshtein dynamic
/// program — kept as the reference implementation the bit-parallel and
/// bounded kernels are verified (and benchmarked) against.
pub fn levenshtein_distance_classic(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Levenshtein distance if it is `≤ max_dist`, `None` otherwise — the
/// Ukkonen-banded early-exit kernel ([`bitpar::levenshtein_bounded`])
/// over a thread-local scratch. A pair whose distance provably exceeds
/// the cutoff is abandoned after `O((2·max_dist + 1)·min(|a|, |b|))`
/// work instead of the full grid.
///
/// ```
/// use er_textsim::levenshtein_distance_bounded;
///
/// assert_eq!(levenshtein_distance_bounded("kitten", "sitting", 3), Some(3));
/// assert_eq!(levenshtein_distance_bounded("kitten", "sitting", 2), None);
/// assert_eq!(levenshtein_distance_bounded("", "", 0), Some(0));
/// ```
pub fn levenshtein_distance_bounded(a: &str, b: &str, max_dist: usize) -> Option<usize> {
    with_str_codes(a, b, |ca, cb, s| s.levenshtein_bounded(ca, cb, max_dist))
}

/// `1 - d / max(|a|, |b|)`; 1.0 for two empty strings.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    with_str_codes(a, b, |ca, cb, s| {
        CharMeasure::Levenshtein.similarity_codes(ca, cb, s)
    })
}

/// Damerau-Levenshtein distance in the *optimal string alignment* variant
/// (adjacent transpositions, no substring edited twice) — the variant used
/// by Simmetrics.
pub fn damerau_levenshtein_distance(a: &str, b: &str) -> usize {
    with_str_codes(a, b, osa_distance_codes)
}

/// OSA distance over scalar slices with scratch-owned rolling rows.
fn osa_distance_codes(a: &[u32], b: &[u32], s: &mut CharScratch) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let cols = b.len() + 1;
    // Three rolling rows: i-2, i-1, i.
    s.prev2_u.clear();
    s.prev2_u.resize(cols, 0);
    s.prev_u.clear();
    s.prev_u.extend(0..cols);
    s.cur_u.clear();
    s.cur_u.resize(cols, 0);
    for i in 1..=a.len() {
        s.cur_u[0] = i;
        for j in 1..=b.len() {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut d = (s.prev_u[j - 1] + cost)
                .min(s.prev_u[j] + 1)
                .min(s.cur_u[j - 1] + 1);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                d = d.min(s.prev2_u[j - 2] + 1);
            }
            s.cur_u[j] = d;
        }
        std::mem::swap(&mut s.prev2_u, &mut s.prev_u);
        std::mem::swap(&mut s.prev_u, &mut s.cur_u);
    }
    s.prev_u[b.len()]
}

/// `1 - d / max(|a|, |b|)`; 1.0 for two empty strings.
pub fn damerau_levenshtein_similarity(a: &str, b: &str) -> f64 {
    with_str_codes(a, b, |ca, cb, s| {
        CharMeasure::DamerauLevenshtein.similarity_codes(ca, cb, s)
    })
}

/// Jaro similarity: `(m/|a| + m/|b| + (m-t)/m) / 3` with `m` common
/// characters within the match window and `t` half-transpositions.
pub fn jaro_similarity(a: &str, b: &str) -> f64 {
    with_str_codes(a, b, jaro_similarity_codes)
}

fn jaro_similarity_codes(a: &[u32], b: &[u32], s: &mut CharScratch) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    if s.used_gen == u32::MAX {
        s.b_used.fill(0);
        s.used_gen = 0;
    }
    s.used_gen += 1;
    let gen = s.used_gen;
    if s.b_used.len() < b.len() {
        s.b_used.resize(b.len(), 0);
    }
    s.matches_a.clear();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for (j, &cb) in b.iter().enumerate().take(hi).skip(lo) {
            if s.b_used[j] != gen && cb == ca {
                s.b_used[j] = gen;
                s.matches_a.push(ca);
                break;
            }
        }
    }
    let m = s.matches_a.len();
    if m == 0 {
        return 0.0;
    }
    s.matches_b.clear();
    s.matches_b.extend(
        b.iter()
            .zip(s.b_used.iter())
            .filter(|&(_, &u)| u == gen)
            .map(|(&c, _)| c),
    );
    let t = s
        .matches_a
        .iter()
        .zip(s.matches_b.iter())
        .filter(|(x, y)| x != y)
        .count() as f64
        / 2.0;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Needleman-Wunch alignment scores (Simmetrics defaults): match 0,
/// mismatch −1, gap −2; similarity is the score normalized by the all-gap
/// worst case of the longer string: `1 − (−S) / (2·max(|a|,|b|))`.
pub fn needleman_wunsch_similarity(a: &str, b: &str) -> f64 {
    with_str_codes(a, b, |ca, cb, s| {
        needleman_wunsch_similarity_codes(ca, cb, s)
    })
}

fn needleman_wunsch_similarity_codes(a: &[u32], b: &[u32], s: &mut CharScratch) -> f64 {
    const MISMATCH: f64 = -1.0;
    const GAP: f64 = -2.0;
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let max_len = a.len().max(b.len());
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    s.prev_f.clear();
    s.prev_f.extend((0..=b.len()).map(|j| j as f64 * GAP));
    s.cur_f.clear();
    s.cur_f.resize(b.len() + 1, 0.0);
    for (i, ca) in a.iter().enumerate() {
        s.cur_f[0] = (i + 1) as f64 * GAP;
        for (j, cb) in b.iter().enumerate() {
            let sub = s.prev_f[j] + if ca == cb { 0.0 } else { MISMATCH };
            s.cur_f[j + 1] = sub.max(s.prev_f[j + 1] + GAP).max(s.cur_f[j] + GAP);
        }
        std::mem::swap(&mut s.prev_f, &mut s.cur_f);
    }
    let score = s.prev_f[b.len()]; // <= 0
    (1.0 - (-score) / (2.0 * max_len as f64)).clamp(0.0, 1.0)
}

/// q-grams distance (q = 3, Simmetrics-style `##` padding): block distance
/// between trigram profiles, normalized to a similarity by the total
/// profile mass: `1 − Σ|f_a − f_b| / (N_a + N_b)`.
pub fn qgrams_similarity(a: &str, b: &str) -> f64 {
    with_str_codes(a, b, qgrams_similarity_codes)
}

/// Pack one padded trigram window into a collision-free `u64` key:
/// scalar values are < 2²¹, so three fit. (Collision-free between
/// *windows* — the pad is the real `#`, which is the point: see
/// [`QGRAM_PAD`].)
#[inline]
fn qgram_key(c0: u32, c1: u32, c2: u32) -> u64 {
    ((c0 as u64) << 42) | ((c1 as u64) << 21) | c2 as u64
}

/// Accumulate the padded trigram profile of `codes` into `map`
/// (cleared first); returns the total gram mass. No allocation: windows
/// are read through an index accessor and keyed as packed `u64`s —
/// the old implementation built a `String` per window.
fn qgram_profile(codes: &[u32], map: &mut FxHashMap<u64, usize>) -> usize {
    map.clear();
    if codes.is_empty() {
        return 0;
    }
    let at = |i: usize| -> u32 {
        if i < Q - 1 || i >= Q - 1 + codes.len() {
            QGRAM_PAD
        } else {
            codes[i - (Q - 1)]
        }
    };
    let windows = codes.len() + Q - 1; // padded length − Q + 1
    for w in 0..windows {
        *map.entry(qgram_key(at(w), at(w + 1), at(w + 2)))
            .or_insert(0) += 1;
    }
    windows
}

fn qgrams_similarity_codes(a: &[u32], b: &[u32], s: &mut CharScratch) -> f64 {
    let na = qgram_profile(a, &mut s.qa);
    let nb = qgram_profile(b, &mut s.qb);
    if na + nb == 0 {
        return 1.0;
    }
    let mut diff = 0usize;
    for (g, &fa) in &s.qa {
        let fb = s.qb.get(g).copied().unwrap_or(0);
        diff += fa.abs_diff(fb);
    }
    for (g, &fb) in &s.qb {
        if !s.qa.contains_key(g) {
            diff += fb;
        }
    }
    1.0 - diff as f64 / (na + nb) as f64
}

/// Longest common subsequence length (characters need not be consecutive).
pub fn lcs_subsequence_len(a: &str, b: &str) -> usize {
    with_str_codes(a, b, lcs_subsequence_len_codes)
}

fn lcs_subsequence_len_codes(a: &[u32], b: &[u32], s: &mut CharScratch) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    s.prev_u.clear();
    s.prev_u.resize(b.len() + 1, 0);
    s.cur_u.clear();
    s.cur_u.resize(b.len() + 1, 0);
    for ca in a {
        for (j, cb) in b.iter().enumerate() {
            s.cur_u[j + 1] = if ca == cb {
                s.prev_u[j] + 1
            } else {
                s.prev_u[j + 1].max(s.cur_u[j])
            };
        }
        std::mem::swap(&mut s.prev_u, &mut s.cur_u);
    }
    s.prev_u[b.len()]
}

/// `|lcs_seq(a,b)| / max(|a|, |b|)`; 1.0 for two empty strings.
pub fn lcs_subsequence_similarity(a: &str, b: &str) -> f64 {
    with_str_codes(a, b, |ca, cb, s| {
        CharMeasure::LongestCommonSubsequence.similarity_codes(ca, cb, s)
    })
}

/// Longest common substring length (consecutive characters).
pub fn lcs_substring_len(a: &str, b: &str) -> usize {
    with_str_codes(a, b, lcs_substring_len_codes)
}

fn lcs_substring_len_codes(a: &[u32], b: &[u32], s: &mut CharScratch) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    s.prev_u.clear();
    s.prev_u.resize(b.len() + 1, 0);
    s.cur_u.clear();
    s.cur_u.resize(b.len() + 1, 0);
    let mut best = 0;
    for ca in a {
        for (j, cb) in b.iter().enumerate() {
            s.cur_u[j + 1] = if ca == cb { s.prev_u[j] + 1 } else { 0 };
            best = best.max(s.cur_u[j + 1]);
        }
        std::mem::swap(&mut s.prev_u, &mut s.cur_u);
        s.cur_u.fill(0);
    }
    best
}

/// `|lcs_str(a,b)| / max(|a|, |b|)`; 1.0 for two empty strings.
pub fn lcs_substring_similarity(a: &str, b: &str) -> f64 {
    with_str_codes(a, b, |ca, cb, s| {
        CharMeasure::LongestCommonSubstring.similarity_codes(ca, cb, s)
    })
}

/// Smith-Waterman local alignment similarity (Simmetrics defaults: match
/// +1, mismatch −2, gap −0.5), normalized by the shorter length:
/// `best_local_score / min(|a|, |b|)`.
///
/// Used as the secondary character-level measure inside Monge-Elkan.
pub fn smith_waterman_similarity(a: &str, b: &str) -> f64 {
    with_str_codes(a, b, smith_waterman_similarity_codes)
}

fn smith_waterman_similarity_codes(a: &[u32], b: &[u32], s: &mut CharScratch) -> f64 {
    const MATCH: f64 = 1.0;
    const MISMATCH: f64 = -2.0;
    const GAP: f64 = -0.5;
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    s.prev_f.clear();
    s.prev_f.resize(b.len() + 1, 0.0);
    s.cur_f.clear();
    s.cur_f.resize(b.len() + 1, 0.0);
    let mut best = 0.0f64;
    for ca in a {
        for (j, cb) in b.iter().enumerate() {
            let sub = s.prev_f[j] + if ca == cb { MATCH } else { MISMATCH };
            s.cur_f[j + 1] = sub
                .max(s.prev_f[j + 1] + GAP)
                .max(s.cur_f[j] + GAP)
                .max(0.0);
            best = best.max(s.cur_f[j + 1]);
        }
        std::mem::swap(&mut s.prev_f, &mut s.cur_f);
    }
    (best / a.len().min(b.len()) as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn levenshtein_classic_cases() {
        assert_eq!(levenshtein_distance("kitten", "sitting"), 3);
        assert_eq!(levenshtein_distance("", "abc"), 3);
        assert_eq!(levenshtein_distance("abc", "abc"), 0);
        assert!((levenshtein_similarity("kitten", "sitting") - (1.0 - 3.0 / 7.0)).abs() < EPS);
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("", "x"), 0.0);
    }

    #[test]
    fn bitparallel_agrees_with_classic_reference() {
        let samples = [
            ("kitten", "sitting"),
            ("", ""),
            ("abc", ""),
            ("", "abc"),
            ("panasonic lumix dmc-fz8", "panasonic dmc fz8s lumix"),
            ("ΑΒΓΔΕ", "ΒΓΔΕΖ"),
        ];
        for (a, b) in samples {
            assert_eq!(
                levenshtein_distance(a, b),
                levenshtein_distance_classic(a, b),
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn bounded_levenshtein_edge_cutoffs() {
        assert_eq!(levenshtein_distance_bounded("abc", "abc", 0), Some(0));
        assert_eq!(levenshtein_distance_bounded("abc", "abd", 0), None);
        assert_eq!(levenshtein_distance_bounded("abc", "abd", 1), Some(1));
        assert_eq!(levenshtein_distance_bounded("", "abcd", 3), None);
        assert_eq!(levenshtein_distance_bounded("", "abcd", 4), Some(4));
        // A generous cutoff behaves like the unbounded distance.
        assert_eq!(
            levenshtein_distance_bounded("kitten", "sitting", 100),
            Some(3)
        );
    }

    #[test]
    fn damerau_counts_transpositions() {
        assert_eq!(damerau_levenshtein_distance("ca", "ac"), 1);
        assert_eq!(levenshtein_distance("ca", "ac"), 2);
        assert_eq!(damerau_levenshtein_distance("abcdef", "abcdfe"), 1);
        // OSA variant: "ca" -> "abc" is 3 (no double-edit of a substring).
        assert_eq!(damerau_levenshtein_distance("ca", "abc"), 3);
        assert!((damerau_levenshtein_similarity("ca", "ac") - 0.5).abs() < EPS);
    }

    #[test]
    fn jaro_known_values() {
        // Classic textbook values.
        assert!((jaro_similarity("MARTHA", "MARHTA") - 0.944444444).abs() < 1e-6);
        assert!((jaro_similarity("DIXON", "DICKSONX") - 0.766666666).abs() < 1e-6);
        assert!((jaro_similarity("JELLYFISH", "SMELLYFISH") - 0.896296296).abs() < 1e-6);
        assert_eq!(jaro_similarity("abc", "abc"), 1.0);
        assert_eq!(jaro_similarity("abc", "xyz"), 0.0);
        assert_eq!(jaro_similarity("", ""), 1.0);
    }

    #[test]
    fn needleman_wunsch_properties() {
        assert_eq!(needleman_wunsch_similarity("abc", "abc"), 1.0);
        assert_eq!(needleman_wunsch_similarity("", ""), 1.0);
        assert_eq!(needleman_wunsch_similarity("", "abc"), 0.0);
        // One substitution in three characters: score -1, norm 1 - 1/6.
        assert!((needleman_wunsch_similarity("abc", "abd") - (1.0 - 1.0 / 6.0)).abs() < EPS);
        // Completely different strings still ≥ 0.
        let s = needleman_wunsch_similarity("aaaa", "zzzz");
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn qgrams_profile_distance() {
        assert_eq!(qgrams_similarity("abc", "abc"), 1.0);
        assert_eq!(qgrams_similarity("", ""), 1.0);
        assert_eq!(qgrams_similarity("", "abc"), 0.0);
        let s = qgrams_similarity("night", "nacht");
        assert!(s > 0.0 && s < 1.0);
        // Symmetric.
        assert!((s - qgrams_similarity("nacht", "night")).abs() < EPS);
    }

    #[test]
    fn qgram_keys_are_collision_free_for_scalars() {
        // All three window positions stay within their 21-bit lanes
        // (the lane invariant itself is a compile-time assert).
        let max = char::MAX as u32;
        assert_ne!(qgram_key(max, 0, 0), qgram_key(0, max, 0));
        assert_ne!(qgram_key(0, max, 0), qgram_key(0, 0, max));
        assert_ne!(
            qgram_key(QGRAM_PAD, QGRAM_PAD, 'a' as u32),
            qgram_key(QGRAM_PAD, 'a' as u32, QGRAM_PAD)
        );
    }

    #[test]
    fn qgrams_pad_merges_with_real_hash_chars() {
        // The Simmetrics `#` padding convention survives the u64-key
        // rewrite: a real `#` in the text merges with padding grams,
        // exactly as the historical String-keyed profiles behaved.
        // "a#" vs "a": profiles share {##a, #a#} plus the merged
        // a##/a#-tail overlap — 6 of 7 total mass.
        let s = qgrams_similarity("a#", "a");
        assert!((s - 6.0 / 7.0).abs() < EPS, "got {s}");
    }

    #[test]
    fn lcs_subsequence_known() {
        assert_eq!(lcs_subsequence_len("ABCBDAB", "BDCABA"), 4); // BCAB/BDAB
        assert_eq!(lcs_subsequence_len("abc", ""), 0);
        assert!((lcs_subsequence_similarity("ABCBDAB", "BDCABA") - 4.0 / 7.0).abs() < EPS);
    }

    #[test]
    fn lcs_substring_known() {
        assert_eq!(lcs_substring_len("abcdxyz", "xyzabcd"), 4); // "abcd"
        assert_eq!(lcs_substring_len("zzz", "aaa"), 0);
        assert!((lcs_substring_similarity("abcdxyz", "xyzabcd") - 4.0 / 7.0).abs() < EPS);
        assert_eq!(lcs_substring_similarity("", ""), 1.0);
    }

    #[test]
    fn smith_waterman_local_alignment() {
        assert_eq!(smith_waterman_similarity("abc", "abc"), 1.0);
        // The common "bcd" core aligns locally despite different context.
        let s = smith_waterman_similarity("xbcdy", "zbcdw");
        assert!((s - 3.0 / 5.0).abs() < EPS);
        assert_eq!(smith_waterman_similarity("", "abc"), 0.0);
    }

    #[test]
    fn all_measures_are_bounded_symmetric_reflexive() {
        let samples = [
            ("iphone 12 pro", "iphone 12"),
            ("abc", "xyz"),
            ("data", "daat"),
            ("", "nonempty"),
            ("same", "same"),
        ];
        for m in CharMeasure::all() {
            for (a, b) in samples {
                let s = m.similarity(a, b);
                assert!((0.0..=1.0).contains(&s), "{} out of range: {s}", m.name());
                let rev = m.similarity(b, a);
                assert!((s - rev).abs() < EPS, "{} not symmetric", m.name());
            }
            assert!(
                (m.similarity("reflexive", "reflexive") - 1.0).abs() < EPS,
                "{} not reflexive",
                m.name()
            );
        }
    }

    #[test]
    fn upper_bounds_dominate_similarities() {
        let samples = [
            ("iphone 12 pro", "iphone 12"),
            ("abc", "xyz"),
            ("data", "daat"),
            ("", "nonempty"),
            ("", ""),
            ("kitten", "sitting"),
            ("aaaa", "aa"),
        ];
        for m in CharMeasure::all() {
            for (a, b) in samples {
                let sim = m.similarity(a, b);
                let (la, lb) = (a.chars().count(), b.chars().count());
                let len_ub = m.length_upper_bound(la, lb);
                assert!(
                    sim <= len_ub,
                    "{}: length bound {len_ub} < sim {sim} for {a:?} vs {b:?}",
                    m.name()
                );
                let bag = |s: &str| -> Vec<u32> {
                    let mut v: Vec<u32> = s.chars().map(u32::from).collect();
                    v.sort_unstable();
                    v
                };
                if let Some(bag_ub) = m.bag_upper_bound(&bag(a), &bag(b)) {
                    assert!(
                        sim <= bag_ub,
                        "{}: bag bound {bag_ub} < sim {sim} for {a:?} vs {b:?}",
                        m.name()
                    );
                }
            }
        }
    }

    #[test]
    fn codes_path_is_bit_identical_to_str_path() {
        let samples = [("data", "daat"), ("kitten", "sitting"), ("", "x")];
        let mut s = CharScratch::new();
        for m in CharMeasure::all() {
            for (a, b) in samples {
                let ca: Vec<u32> = a.chars().map(u32::from).collect();
                let cb: Vec<u32> = b.chars().map(u32::from).collect();
                assert_eq!(
                    m.similarity_codes(&ca, &cb, &mut s).to_bits(),
                    m.similarity(a, b).to_bits(),
                    "{} on {a:?} vs {b:?}",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn roster_has_seven() {
        assert_eq!(CharMeasure::all().len(), 7);
    }
}
