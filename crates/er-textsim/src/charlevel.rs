//! Character-level schema-based similarity measures (Appendix B.1.1).
//!
//! All functions return similarities in `[0, 1]`; distance measures are
//! normalized as documented per function. Two empty strings are maximally
//! similar (1.0); an empty vs non-empty string scores 0.0.

use serde::{Deserialize, Serialize};

/// The seven character-level measures of the paper's taxonomy (Figure 6),
/// in its listing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CharMeasure {
    /// Damerau-Levenshtein similarity (edit distance with transpositions).
    DamerauLevenshtein,
    /// Levenshtein similarity.
    Levenshtein,
    /// q-grams distance (block distance over padded trigram profiles).
    QGrams,
    /// Jaro similarity.
    Jaro,
    /// Needleman-Wunch global-alignment similarity.
    NeedlemanWunsch,
    /// Longest common subsequence similarity.
    LongestCommonSubsequence,
    /// Longest common substring similarity.
    LongestCommonSubstring,
}

impl CharMeasure {
    /// All character-level measures.
    pub fn all() -> [CharMeasure; 7] {
        [
            CharMeasure::DamerauLevenshtein,
            CharMeasure::Levenshtein,
            CharMeasure::QGrams,
            CharMeasure::Jaro,
            CharMeasure::NeedlemanWunsch,
            CharMeasure::LongestCommonSubsequence,
            CharMeasure::LongestCommonSubstring,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            CharMeasure::DamerauLevenshtein => "DamerauLevenshtein",
            CharMeasure::Levenshtein => "Levenshtein",
            CharMeasure::QGrams => "QGrams",
            CharMeasure::Jaro => "Jaro",
            CharMeasure::NeedlemanWunsch => "NeedlemanWunsch",
            CharMeasure::LongestCommonSubsequence => "LCSubsequence",
            CharMeasure::LongestCommonSubstring => "LCSubstring",
        }
    }

    /// Compute the similarity of two strings.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        match self {
            CharMeasure::DamerauLevenshtein => damerau_levenshtein_similarity(a, b),
            CharMeasure::Levenshtein => levenshtein_similarity(a, b),
            CharMeasure::QGrams => qgrams_similarity(a, b),
            CharMeasure::Jaro => jaro_similarity(a, b),
            CharMeasure::NeedlemanWunsch => needleman_wunsch_similarity(a, b),
            CharMeasure::LongestCommonSubsequence => lcs_subsequence_similarity(a, b),
            CharMeasure::LongestCommonSubstring => lcs_substring_similarity(a, b),
        }
    }
}

/// Levenshtein edit distance (insert/delete/substitute), O(|a|·|b|) time,
/// O(min) memory.
pub fn levenshtein_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// `1 - d / max(|a|, |b|)`; 1.0 for two empty strings.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein_distance(a, b) as f64 / max_len as f64
}

/// Damerau-Levenshtein distance in the *optimal string alignment* variant
/// (adjacent transpositions, no substring edited twice) — the variant used
/// by Simmetrics.
pub fn damerau_levenshtein_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let cols = b.len() + 1;
    // Three rolling rows: i-2, i-1, i.
    let mut row2: Vec<usize> = vec![0; cols];
    let mut row1: Vec<usize> = (0..cols).collect();
    let mut row0: Vec<usize> = vec![0; cols];
    for i in 1..=a.len() {
        row0[0] = i;
        for j in 1..=b.len() {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut d = (row1[j - 1] + cost).min(row1[j] + 1).min(row0[j - 1] + 1);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                d = d.min(row2[j - 2] + 1);
            }
            row0[j] = d;
        }
        std::mem::swap(&mut row2, &mut row1);
        std::mem::swap(&mut row1, &mut row0);
    }
    row1[b.len()]
}

/// `1 - d / max(|a|, |b|)`; 1.0 for two empty strings.
pub fn damerau_levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - damerau_levenshtein_distance(a, b) as f64 / max_len as f64
}

/// Jaro similarity: `(m/|a| + m/|b| + (m-t)/m) / 3` with `m` common
/// characters within the match window and `t` half-transpositions.
pub fn jaro_similarity(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == *ca {
                b_used[j] = true;
                matches_a.push(*ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .zip(b_used.iter())
        .filter(|(_, &u)| u)
        .map(|(c, _)| *c)
        .collect();
    let t = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count() as f64
        / 2.0;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Needleman-Wunch alignment scores (Simmetrics defaults): match 0,
/// mismatch −1, gap −2; similarity is the score normalized by the all-gap
/// worst case of the longer string: `1 − (−S) / (2·max(|a|,|b|))`.
pub fn needleman_wunsch_similarity(a: &str, b: &str) -> f64 {
    const MISMATCH: f64 = -1.0;
    const GAP: f64 = -2.0;
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let max_len = a.len().max(b.len());
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut prev: Vec<f64> = (0..=b.len()).map(|j| j as f64 * GAP).collect();
    let mut cur = vec![0.0f64; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = (i + 1) as f64 * GAP;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + if ca == cb { 0.0 } else { MISMATCH };
            cur[j + 1] = sub.max(prev[j + 1] + GAP).max(cur[j] + GAP);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let score = prev[b.len()]; // <= 0
    (1.0 - (-score) / (2.0 * max_len as f64)).clamp(0.0, 1.0)
}

/// q-grams distance (q = 3, Simmetrics-style `##` padding): block distance
/// between trigram profiles, normalized to a similarity by the total
/// profile mass: `1 − Σ|f_a − f_b| / (N_a + N_b)`.
pub fn qgrams_similarity(a: &str, b: &str) -> f64 {
    const Q: usize = 3;
    let profile = |s: &str| -> er_core::FxHashMap<String, usize> {
        let mut m = er_core::FxHashMap::default();
        if s.is_empty() {
            return m;
        }
        let padded: String = format!("{pad}{s}{pad}", pad = "#".repeat(Q - 1));
        let chars: Vec<char> = padded.chars().collect();
        for w in chars.windows(Q) {
            *m.entry(w.iter().collect()).or_insert(0) += 1;
        }
        m
    };
    let pa = profile(a);
    let pb = profile(b);
    let na: usize = pa.values().sum();
    let nb: usize = pb.values().sum();
    if na + nb == 0 {
        return 1.0;
    }
    let mut diff = 0usize;
    for (g, &fa) in &pa {
        let fb = pb.get(g).copied().unwrap_or(0);
        diff += fa.abs_diff(fb);
    }
    for (g, &fb) in &pb {
        if !pa.contains_key(g) {
            diff += fb;
        }
    }
    1.0 - diff as f64 / (na + nb) as f64
}

/// Longest common subsequence length (characters need not be consecutive).
pub fn lcs_subsequence_len(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for ca in &a {
        for (j, cb) in b.iter().enumerate() {
            cur[j + 1] = if ca == cb {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// `|lcs_seq(a,b)| / max(|a|, |b|)`; 1.0 for two empty strings.
pub fn lcs_subsequence_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    lcs_subsequence_len(a, b) as f64 / max_len as f64
}

/// Longest common substring length (consecutive characters).
pub fn lcs_substring_len(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    let mut best = 0;
    for ca in &a {
        for (j, cb) in b.iter().enumerate() {
            cur[j + 1] = if ca == cb { prev[j] + 1 } else { 0 };
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
        cur.fill(0);
    }
    best
}

/// `|lcs_str(a,b)| / max(|a|, |b|)`; 1.0 for two empty strings.
pub fn lcs_substring_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    lcs_substring_len(a, b) as f64 / max_len as f64
}

/// Smith-Waterman local alignment similarity (Simmetrics defaults: match
/// +1, mismatch −2, gap −0.5), normalized by the shorter length:
/// `best_local_score / min(|a|, |b|)`.
///
/// Used as the secondary character-level measure inside Monge-Elkan.
pub fn smith_waterman_similarity(a: &str, b: &str) -> f64 {
    const MATCH: f64 = 1.0;
    const MISMATCH: f64 = -2.0;
    const GAP: f64 = -0.5;
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut prev = vec![0.0f64; b.len() + 1];
    let mut cur = vec![0.0f64; b.len() + 1];
    let mut best = 0.0f64;
    for ca in &a {
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + if ca == cb { MATCH } else { MISMATCH };
            cur[j + 1] = sub.max(prev[j + 1] + GAP).max(cur[j] + GAP).max(0.0);
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    (best / a.len().min(b.len()) as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn levenshtein_classic_cases() {
        assert_eq!(levenshtein_distance("kitten", "sitting"), 3);
        assert_eq!(levenshtein_distance("", "abc"), 3);
        assert_eq!(levenshtein_distance("abc", "abc"), 0);
        assert!((levenshtein_similarity("kitten", "sitting") - (1.0 - 3.0 / 7.0)).abs() < EPS);
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("", "x"), 0.0);
    }

    #[test]
    fn damerau_counts_transpositions() {
        assert_eq!(damerau_levenshtein_distance("ca", "ac"), 1);
        assert_eq!(levenshtein_distance("ca", "ac"), 2);
        assert_eq!(damerau_levenshtein_distance("abcdef", "abcdfe"), 1);
        // OSA variant: "ca" -> "abc" is 3 (no double-edit of a substring).
        assert_eq!(damerau_levenshtein_distance("ca", "abc"), 3);
        assert!((damerau_levenshtein_similarity("ca", "ac") - 0.5).abs() < EPS);
    }

    #[test]
    fn jaro_known_values() {
        // Classic textbook values.
        assert!((jaro_similarity("MARTHA", "MARHTA") - 0.944444444).abs() < 1e-6);
        assert!((jaro_similarity("DIXON", "DICKSONX") - 0.766666666).abs() < 1e-6);
        assert!((jaro_similarity("JELLYFISH", "SMELLYFISH") - 0.896296296).abs() < 1e-6);
        assert_eq!(jaro_similarity("abc", "abc"), 1.0);
        assert_eq!(jaro_similarity("abc", "xyz"), 0.0);
        assert_eq!(jaro_similarity("", ""), 1.0);
    }

    #[test]
    fn needleman_wunsch_properties() {
        assert_eq!(needleman_wunsch_similarity("abc", "abc"), 1.0);
        assert_eq!(needleman_wunsch_similarity("", ""), 1.0);
        assert_eq!(needleman_wunsch_similarity("", "abc"), 0.0);
        // One substitution in three characters: score -1, norm 1 - 1/6.
        assert!((needleman_wunsch_similarity("abc", "abd") - (1.0 - 1.0 / 6.0)).abs() < EPS);
        // Completely different strings still ≥ 0.
        let s = needleman_wunsch_similarity("aaaa", "zzzz");
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn qgrams_profile_distance() {
        assert_eq!(qgrams_similarity("abc", "abc"), 1.0);
        assert_eq!(qgrams_similarity("", ""), 1.0);
        assert_eq!(qgrams_similarity("", "abc"), 0.0);
        let s = qgrams_similarity("night", "nacht");
        assert!(s > 0.0 && s < 1.0);
        // Symmetric.
        assert!((s - qgrams_similarity("nacht", "night")).abs() < EPS);
    }

    #[test]
    fn lcs_subsequence_known() {
        assert_eq!(lcs_subsequence_len("ABCBDAB", "BDCABA"), 4); // BCAB/BDAB
        assert_eq!(lcs_subsequence_len("abc", ""), 0);
        assert!((lcs_subsequence_similarity("ABCBDAB", "BDCABA") - 4.0 / 7.0).abs() < EPS);
    }

    #[test]
    fn lcs_substring_known() {
        assert_eq!(lcs_substring_len("abcdxyz", "xyzabcd"), 4); // "abcd"
        assert_eq!(lcs_substring_len("zzz", "aaa"), 0);
        assert!((lcs_substring_similarity("abcdxyz", "xyzabcd") - 4.0 / 7.0).abs() < EPS);
        assert_eq!(lcs_substring_similarity("", ""), 1.0);
    }

    #[test]
    fn smith_waterman_local_alignment() {
        assert_eq!(smith_waterman_similarity("abc", "abc"), 1.0);
        // The common "bcd" core aligns locally despite different context.
        let s = smith_waterman_similarity("xbcdy", "zbcdw");
        assert!((s - 3.0 / 5.0).abs() < EPS);
        assert_eq!(smith_waterman_similarity("", "abc"), 0.0);
    }

    #[test]
    fn all_measures_are_bounded_symmetric_reflexive() {
        let samples = [
            ("iphone 12 pro", "iphone 12"),
            ("abc", "xyz"),
            ("data", "daat"),
            ("", "nonempty"),
            ("same", "same"),
        ];
        for m in CharMeasure::all() {
            for (a, b) in samples {
                let s = m.similarity(a, b);
                assert!((0.0..=1.0).contains(&s), "{} out of range: {s}", m.name());
                let rev = m.similarity(b, a);
                assert!((s - rev).abs() < EPS, "{} not symmetric", m.name());
            }
            assert!(
                (m.similarity("reflexive", "reflexive") - 1.0).abs() < EPS,
                "{} not reflexive",
                m.name()
            );
        }
    }

    #[test]
    fn roster_has_seven() {
        assert_eq!(CharMeasure::all().len(), 7);
    }
}
