//! Schema-agnostic n-gram **graph** models — Appendix B.2.2 (JInsect-style).
//!
//! Each value becomes an undirected graph: one vertex per n-gram, an edge
//! between n-grams co-occurring within a window of size `n`, weighted by
//! co-occurrence frequency — preserving n-gram *order* information that the
//! bag models discard. An entity's graphs (one per attribute value) are
//! merged with the update operator of Giannakopoulos et al.: existing edge
//! weights move toward the incoming weight with a learning factor, new
//! edges join at their incoming weight; we use the incremental-average
//! factor `l = 1/(i+1)` for the i-th merge.
//!
//! Similarities (all in `[0, 1]`): Containment (shared-edge ratio), Value
//! (weight-ratio-aware), Normalized Value (small-graph-robust) and Overall
//! (their mean).

use er_core::FxHashMap;
use serde::{Deserialize, Serialize};

use crate::tokenize::NGramScheme;
use crate::vector::term_id;

/// An n-gram graph: undirected weighted edges over hashed n-gram vertices.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NGramGraph {
    edges: FxHashMap<(u64, u64), f64>,
}

impl NGramGraph {
    /// The empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the graph of a single value under `scheme`.
    ///
    /// n-grams at positions `i < j` are connected when `j - i < window`,
    /// with the window equal to the n-gram size (min 2, so token unigrams
    /// still connect adjacent tokens). Matches the paper's "Joe Biden"
    /// example: `Joe` connects to `oe_` and `e_B` for character 3-grams.
    pub fn from_value(value: &str, scheme: NGramScheme) -> Self {
        let grams = scheme.extract(value);
        let window = scheme.window();
        let ids: Vec<u64> = grams.iter().map(|g| term_id(g)).collect();
        let mut edges: FxHashMap<(u64, u64), f64> = FxHashMap::default();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len().min(i + window) {
                *edges.entry(edge_key(ids[i], ids[j])).or_insert(0.0) += 1.0;
            }
        }
        NGramGraph { edges }
    }

    /// Build an entity's graph by merging the graphs of all its values with
    /// the incremental-average update operator.
    pub fn from_values<'a, I: IntoIterator<Item = &'a str>>(
        values: I,
        scheme: NGramScheme,
    ) -> Self {
        let mut merged = NGramGraph::new();
        for (i, v) in values.into_iter().enumerate() {
            let g = NGramGraph::from_value(v, scheme);
            if i == 0 {
                merged = g;
            } else {
                merged.update(&g, 1.0 / (i as f64 + 1.0));
            }
        }
        merged
    }

    /// The update operator: existing edges move toward the incoming weight
    /// by factor `l`; edges only in `other` are inserted at their weight.
    pub fn update(&mut self, other: &NGramGraph, l: f64) {
        for (&k, &w_new) in &other.edges {
            self.edges
                .entry(k)
                .and_modify(|w| *w += (w_new - *w) * l)
                .or_insert(w_new);
        }
    }

    /// Number of edges `|G|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Weight of an edge, if present.
    pub fn weight(&self, a: u64, b: u64) -> Option<f64> {
        self.edges.get(&edge_key(a, b)).copied()
    }

    /// Iterate the canonical `(lo, hi)` edge keys — used by the pipeline's
    /// inverted index over graph edges.
    pub fn edge_keys(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.edges.keys().copied()
    }

    /// Containment Similarity: `Σ_{e∈Gi} μ(e, Gj) / min(|Gi|, |Gj|)` —
    /// the portion of shared edges, weight-agnostic.
    pub fn containment_similarity(&self, other: &NGramGraph) -> f64 {
        if let Some(s) = self.degenerate(other) {
            return s;
        }
        let (small, large) = if self.size() <= other.size() {
            (self, other)
        } else {
            (other, self)
        };
        let common = small
            .edges
            .keys()
            .filter(|k| large.edges.contains_key(*k))
            .count();
        common as f64 / small.size() as f64
    }

    /// Value Similarity: `Σ_{e∈Gi∩Gj} min(w_i,w_j)/max(w_i,w_j) / max(|Gi|,|Gj|)`.
    pub fn value_similarity(&self, other: &NGramGraph) -> f64 {
        if let Some(s) = self.degenerate(other) {
            return s;
        }
        self.value_ratio_sum(other) / self.size().max(other.size()) as f64
    }

    /// Normalized Value Similarity: as VS but divided by `min(|Gi|, |Gj|)`,
    /// mitigating imbalanced graph sizes.
    pub fn normalized_value_similarity(&self, other: &NGramGraph) -> f64 {
        if let Some(s) = self.degenerate(other) {
            return s;
        }
        (self.value_ratio_sum(other) / self.size().min(other.size()) as f64).clamp(0.0, 1.0)
    }

    /// Overall Similarity: the mean of containment, value and normalized
    /// value similarity.
    pub fn overall_similarity(&self, other: &NGramGraph) -> f64 {
        (self.containment_similarity(other)
            + self.value_similarity(other)
            + self.normalized_value_similarity(other))
            / 3.0
    }

    fn value_ratio_sum(&self, other: &NGramGraph) -> f64 {
        let (small, large) = if self.size() <= other.size() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .edges
            .iter()
            .filter_map(|(k, &wa)| {
                large.edges.get(k).map(|&wb| {
                    let (lo, hi) = if wa <= wb { (wa, wb) } else { (wb, wa) };
                    if hi <= 0.0 {
                        0.0
                    } else {
                        lo / hi
                    }
                })
            })
            .sum()
    }

    /// Empty-graph conventions: both empty → 1, one empty → 0.
    fn degenerate(&self, other: &NGramGraph) -> Option<f64> {
        match (self.is_empty(), other.is_empty()) {
            (true, true) => Some(1.0),
            (true, false) | (false, true) => Some(0.0),
            (false, false) => None,
        }
    }
}

fn edge_key(a: u64, b: u64) -> (u64, u64) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The four graph similarity measures of the paper (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphSimilarity {
    /// Containment Similarity (CoS).
    Containment,
    /// Value Similarity (VS).
    Value,
    /// Normalized Value Similarity (NS).
    NormalizedValue,
    /// Overall Similarity (OS): the mean of the other three.
    Overall,
}

impl GraphSimilarity {
    /// All four measures.
    pub fn all() -> [GraphSimilarity; 4] {
        [
            GraphSimilarity::Containment,
            GraphSimilarity::Value,
            GraphSimilarity::NormalizedValue,
            GraphSimilarity::Overall,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            GraphSimilarity::Containment => "Containment",
            GraphSimilarity::Value => "Value",
            GraphSimilarity::NormalizedValue => "NormalizedValue",
            GraphSimilarity::Overall => "Overall",
        }
    }

    /// Compute the similarity of two n-gram graphs.
    pub fn similarity(&self, a: &NGramGraph, b: &NGramGraph) -> f64 {
        match self {
            GraphSimilarity::Containment => a.containment_similarity(b),
            GraphSimilarity::Value => a.value_similarity(b),
            GraphSimilarity::NormalizedValue => a.normalized_value_similarity(b),
            GraphSimilarity::Overall => a.overall_similarity(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn paper_joe_biden_graph_structure() {
        // §4: seven nodes; 'Joe' connects to 'oe_' and 'e_B' with weight 1.
        let g = NGramGraph::from_value("Joe Biden", NGramScheme::Char(3));
        let joe = term_id("Joe");
        assert_eq!(g.weight(joe, term_id("oe ")), Some(1.0));
        assert_eq!(g.weight(joe, term_id("e B")), Some(1.0));
        assert_eq!(g.weight(joe, term_id(" Bi")), None, "outside window");
        // 7 grams, each (except the last two) linking 2 ahead: 6 + 5 = 11.
        assert_eq!(g.size(), 11);
    }

    #[test]
    fn repeated_cooccurrence_increases_weight() {
        // "abab" char 2-grams: ab, ba, ab → 'ab'-'ba' co-occurs twice
        // (positions 0-1 and 1-2).
        let g = NGramGraph::from_value("abab", NGramScheme::Char(2));
        assert_eq!(g.weight(term_id("ab"), term_id("ba")), Some(2.0));
    }

    #[test]
    fn token_unigram_graph_links_adjacent_tokens() {
        let g = NGramGraph::from_value("new york city", NGramScheme::Token(1));
        assert_eq!(g.weight(term_id("new"), term_id("york")), Some(1.0));
        assert_eq!(g.weight(term_id("york"), term_id("city")), Some(1.0));
        assert_eq!(g.weight(term_id("new"), term_id("city")), None);
    }

    #[test]
    fn update_operator_averages() {
        let mut a = NGramGraph::from_value("ab", NGramScheme::Char(1));
        // 'a'-'b' weight 1 in both; merging identical graphs keeps 1.
        let b = NGramGraph::from_value("ab", NGramScheme::Char(1));
        a.update(&b, 0.5);
        assert_eq!(a.weight(term_id("a"), term_id("b")), Some(1.0));
        // A new edge joins at its own weight.
        let c = NGramGraph::from_value("cd", NGramScheme::Char(1));
        a.update(&c, 0.5);
        assert_eq!(a.weight(term_id("c"), term_id("d")), Some(1.0));
    }

    #[test]
    fn identity_similarity_is_one() {
        let g = NGramGraph::from_value("entity resolution", NGramScheme::Char(3));
        for m in GraphSimilarity::all() {
            assert!(
                (m.similarity(&g, &g) - 1.0).abs() < EPS,
                "{} of identical graphs",
                m.name()
            );
        }
    }

    #[test]
    fn disjoint_graphs_score_zero() {
        let a = NGramGraph::from_value("aaaa", NGramScheme::Char(2));
        let b = NGramGraph::from_value("zzzz", NGramScheme::Char(2));
        for m in GraphSimilarity::all() {
            assert_eq!(m.similarity(&a, &b), 0.0, "{}", m.name());
        }
    }

    #[test]
    fn empty_graph_conventions() {
        let e = NGramGraph::new();
        let g = NGramGraph::from_value("abc", NGramScheme::Char(2));
        for m in GraphSimilarity::all() {
            assert_eq!(m.similarity(&e, &e), 1.0, "{}", m.name());
            assert_eq!(m.similarity(&e, &g), 0.0, "{}", m.name());
        }
    }

    #[test]
    fn normalized_value_counters_imbalance() {
        // A small graph fully contained in a much larger one: NS stays
        // high where VS collapses.
        let small = NGramGraph::from_value("abcd", NGramScheme::Char(2));
        let large = NGramGraph::from_value(
            "abcd qrst uvwx yzab cdef ghij klmn oprs",
            NGramScheme::Char(2),
        );
        let vs = small.value_similarity(&large);
        let ns = small.normalized_value_similarity(&large);
        assert!(ns > vs, "NS {ns} must exceed VS {vs} on imbalanced graphs");
        // Overall is the mean of the three.
        let cs = small.containment_similarity(&large);
        assert!((small.overall_similarity(&large) - (cs + vs + ns) / 3.0).abs() < EPS);
    }

    #[test]
    fn entity_graph_merges_values() {
        let g = NGramGraph::from_values(["john smith", "london"], NGramScheme::Char(3));
        assert!(g.weight(term_id("joh"), term_id("ohn")).is_some());
        assert!(g.weight(term_id("lon"), term_id("ond")).is_some());
        // Similarity to a single-value graph with shared content is high.
        let h = NGramGraph::from_value("john smith", NGramScheme::Char(3));
        assert!(g.containment_similarity(&h) > 0.9);
    }

    #[test]
    fn symmetry() {
        let a = NGramGraph::from_value("apple iphone 12", NGramScheme::Char(3));
        let b = NGramGraph::from_value("apple iphone 13 pro", NGramScheme::Char(3));
        for m in GraphSimilarity::all() {
            assert!(
                (m.similarity(&a, &b) - m.similarity(&b, &a)).abs() < EPS,
                "{} not symmetric",
                m.name()
            );
        }
    }
}
