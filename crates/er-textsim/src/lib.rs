#![warn(missing_docs)]

//! # er-textsim — syntactic similarity measures and representation models
//!
//! Implements the full learning-free syntactic taxonomy of §4 / Appendix B
//! of the paper:
//!
//! * **Schema-based, character-level** ([`charlevel`]): Levenshtein,
//!   Damerau-Levenshtein, Jaro, Needleman-Wunch, q-grams distance, longest
//!   common substring and subsequence (7 measures), plus Smith-Waterman as
//!   the secondary measure inside Monge-Elkan.
//! * **Schema-based, token-level** ([`tokenlevel`]): cosine, block distance,
//!   Euclidean, Jaccard, generalized Jaccard, Dice, Simon White, overlap
//!   coefficient, Monge-Elkan (9 measures) — 16 schema-based measures total,
//!   unified by [`SchemaBasedMeasure`].
//! * **Schema-agnostic n-gram vector models** ([`vector`]): character
//!   n∈{2,3,4} and token n∈{1,2,3} bag models with TF/TF-IDF weights and the
//!   ARCS / cosine / Jaccard / generalized-Jaccard similarities.
//! * **Schema-agnostic n-gram graph models** ([`graphmodel`]): the JInsect
//!   n-gram graphs with containment / value / normalized value / overall
//!   similarity.
//!
//! All similarities return values in `[0, 1]`; distances are normalized into
//! similarities as documented per measure. Unicode is handled at the
//! `char` level.
//!
//! The character measures run on a bound-driven scoring engine:
//! [`bitpar`] holds the Myers bit-parallel Levenshtein kernel and the
//! Ukkonen-banded cutoff variants, [`chartable`] the interned
//! [`CharTable`] the all-pairs scorers prepare once per corpus, and
//! [`CharMeasure::length_upper_bound`] / [`CharMeasure::bag_upper_bound`]
//! the exact pre-scoring upper bounds a top-k sink prunes against.
//! [`lanes`] holds the lane-parallel (SWAR / array-of-lanes) batch forms
//! of those kernels — a multi-text [`MyersBatch`] and batched
//! length/counting-filter screens — bit-identical to the scalar kernels
//! and selected by the pipeline's `KernelMode`.

pub mod bitpar;
pub mod charindex;
pub mod charlevel;
pub mod chartable;
pub mod graphmodel;
pub mod lanes;
pub mod measure;
pub mod tokenize;
pub mod tokenlevel;
pub mod vector;

pub use bitpar::{levenshtein_bounded, osa_bounded, BandRows, MyersPattern};
pub use charindex::LengthBucketIndex;
pub use charlevel::{
    levenshtein_distance_bounded, levenshtein_distance_classic, CharMeasure, CharScratch,
};
pub use chartable::{sorted_common_count, CharTable};
pub use graphmodel::{GraphSimilarity, NGramGraph};
pub use lanes::{MyersBatch, LANE_WIDTH};
pub use measure::SchemaBasedMeasure;
pub use tokenize::{char_ngrams, normalize_text, token_ngrams, tokens, NGramScheme};
pub use tokenlevel::TokenMeasure;
pub use vector::{
    DfIndex, ProbePlan, SparseVector, TermWeighting, VectorMeasure, VectorModel,
    SUFFIX_BOUND_MARGIN,
};

#[cfg(test)]
mod sync_tests {
    //! `er-pipeline`'s parallel construction engine shares this crate's
    //! read-side structures (DF indexes, sparse vectors, n-gram graphs,
    //! models and measures) immutably across scoped worker threads. These
    //! assertions pin the `Send + Sync` contract at compile time so an
    //! accidental `Rc`/`RefCell`/raw-pointer addition fails here, not in a
    //! downstream crate.
    use super::*;

    fn assert_shared_read_side<T: Send + Sync>() {}

    #[test]
    fn read_side_structures_are_send_sync() {
        assert_shared_read_side::<CharTable>();
        assert_shared_read_side::<DfIndex>();
        assert_shared_read_side::<SparseVector>();
        assert_shared_read_side::<VectorModel>();
        assert_shared_read_side::<NGramGraph>();
        assert_shared_read_side::<SchemaBasedMeasure>();
        assert_shared_read_side::<VectorMeasure>();
        assert_shared_read_side::<GraphSimilarity>();
        assert_shared_read_side::<NGramScheme>();
        assert_shared_read_side::<TermWeighting>();
    }
}
