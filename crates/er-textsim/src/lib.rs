#![warn(missing_docs)]

//! # er-textsim — syntactic similarity measures and representation models
//!
//! Implements the full learning-free syntactic taxonomy of §4 / Appendix B
//! of the paper:
//!
//! * **Schema-based, character-level** ([`charlevel`]): Levenshtein,
//!   Damerau-Levenshtein, Jaro, Needleman-Wunch, q-grams distance, longest
//!   common substring and subsequence (7 measures), plus Smith-Waterman as
//!   the secondary measure inside Monge-Elkan.
//! * **Schema-based, token-level** ([`tokenlevel`]): cosine, block distance,
//!   Euclidean, Jaccard, generalized Jaccard, Dice, Simon White, overlap
//!   coefficient, Monge-Elkan (9 measures) — 16 schema-based measures total,
//!   unified by [`SchemaBasedMeasure`].
//! * **Schema-agnostic n-gram vector models** ([`vector`]): character
//!   n∈{2,3,4} and token n∈{1,2,3} bag models with TF/TF-IDF weights and the
//!   ARCS / cosine / Jaccard / generalized-Jaccard similarities.
//! * **Schema-agnostic n-gram graph models** ([`graphmodel`]): the JInsect
//!   n-gram graphs with containment / value / normalized value / overall
//!   similarity.
//!
//! All similarities return values in `[0, 1]`; distances are normalized into
//! similarities as documented per measure. Unicode is handled at the
//! `char` level.

pub mod charlevel;
pub mod graphmodel;
pub mod measure;
pub mod tokenize;
pub mod tokenlevel;
pub mod vector;

pub use charlevel::CharMeasure;
pub use graphmodel::{GraphSimilarity, NGramGraph};
pub use measure::SchemaBasedMeasure;
pub use tokenize::{char_ngrams, normalize_text, token_ngrams, tokens, NGramScheme};
pub use tokenlevel::TokenMeasure;
pub use vector::{DfIndex, SparseVector, TermWeighting, VectorMeasure, VectorModel};
