//! The 16 schema-based syntactic measures, unified.
//!
//! The paper applies character-level measures to short attribute values and
//! token-level measures to word-structured values; the pipeline combines
//! every measure with the selected high-coverage/high-distinctiveness
//! attributes of each dataset.

use serde::{Deserialize, Serialize};

use crate::charlevel::CharMeasure;
use crate::tokenlevel::TokenMeasure;

/// One of the paper's 16 schema-based syntactic similarity measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemaBasedMeasure {
    /// A character-level measure.
    Char(CharMeasure),
    /// A token-level measure.
    Token(TokenMeasure),
}

impl SchemaBasedMeasure {
    /// All 16 measures: 7 character-level + 9 token-level.
    pub fn all() -> Vec<SchemaBasedMeasure> {
        CharMeasure::all()
            .into_iter()
            .map(SchemaBasedMeasure::Char)
            .chain(
                TokenMeasure::all()
                    .into_iter()
                    .map(SchemaBasedMeasure::Token),
            )
            .collect()
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SchemaBasedMeasure::Char(m) => m.name(),
            SchemaBasedMeasure::Token(m) => m.name(),
        }
    }

    /// Compute the similarity of two attribute values.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        match self {
            SchemaBasedMeasure::Char(m) => m.similarity(a, b),
            SchemaBasedMeasure::Token(m) => m.similarity(a, b),
        }
    }

    /// Whether this is a character-level measure.
    pub fn is_char_level(&self) -> bool {
        matches!(self, SchemaBasedMeasure::Char(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_measures_total() {
        let all = SchemaBasedMeasure::all();
        assert_eq!(all.len(), 16);
        assert_eq!(all.iter().filter(|m| m.is_char_level()).count(), 7);
        // Names are unique.
        let mut names: Vec<&str> = all.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn dispatch_reaches_both_families() {
        let lev = SchemaBasedMeasure::Char(CharMeasure::Levenshtein);
        assert_eq!(lev.similarity("abc", "abc"), 1.0);
        let jac = SchemaBasedMeasure::Token(TokenMeasure::Jaccard);
        assert!((jac.similarity("a b", "b c") - 1.0 / 3.0).abs() < 1e-9);
    }
}
