//! Length-bucketed candidate index for the character measures.
//!
//! The PR 5 scoring engine *checked* the length-difference and
//! character-bag counting filters per enumerated pair; this index
//! **inverts** them so a candidate generator never enumerates the pairs
//! they would reject. Entries (one side of a prepared
//! [`CharTable`](crate::CharTable)) are grouped into buckets by exact
//! character length, and each bucket carries postings keyed by
//! `(character, occurrence tier)`: an entry with `m` copies of character
//! `c` appears in the postings of `(c, 1) … (c, m)`. Probing a query bag
//! with multiplicity therefore accumulates, per bucket member,
//! `Σ_c min(m_query(c), m_member(c))` — exactly
//! [`sorted_common_count`](crate::sorted_common_count), the integer the
//! per-pair counting filter feeds into
//! [`CharMeasure::bag_upper_bound_from_common`](crate::CharMeasure::bag_upper_bound_from_common).
//!
//! Completeness therefore reduces to the PR 5 monotone-domination
//! argument: a generator that skips a whole bucket only when
//! `length_upper_bound(|query|, bucket_len)` falls strictly below the
//! admission bound, and a member only when the bag bound computed from
//! the probed `common` does, discards exclusively pairs whose true
//! similarity is provably below the bound — the same decisions the
//! scorer itself would have made, taken earlier and without touching the
//! pair (property-checked in `tests/proptests.rs`).

use er_core::FxHashMap;

/// One exact-length bucket: its members and the `(character, tier)`
/// postings over them.
#[derive(Debug, Default)]
struct Bucket {
    /// Caller-side slot ids, in insertion (ascending) order.
    members: Vec<u32>,
    /// `(character, occurrence tier)` → positions into `members` of every
    /// member holding at least `tier` copies of `character`.
    postings: FxHashMap<(u32, u32), Vec<u32>>,
}

/// A length-bucketed inverted index over sorted character bags — the
/// generation-side form of the character measures' length and
/// counting-filter bounds.
///
/// ```
/// use er_textsim::{sorted_common_count, CharTable, LengthBucketIndex};
///
/// let t = CharTable::build(["abc", "abd", "abcd"]);
/// let index = LengthBucketIndex::build((0..t.len()).map(|i| t.bag(i)));
/// assert_eq!(index.n_entries(), 3);
/// assert_eq!(index.n_buckets(), 2); // lengths 3 and 4
///
/// // Probing reproduces the per-pair multiset intersection exactly.
/// let probe = CharTable::build(["abcb"]);
/// let mut counts = Vec::new();
/// for b in 0..index.n_buckets() {
///     index.count_common_into(b, probe.bag(0), &mut counts);
///     for (pos, &slot) in index.bucket_members(b).iter().enumerate() {
///         let expect = sorted_common_count(probe.bag(0), t.bag(slot as usize));
///         assert_eq!(counts[pos] as usize, expect);
///     }
/// }
/// ```
#[derive(Debug, Default)]
pub struct LengthBucketIndex {
    /// Distinct entry lengths, ascending; parallel to `buckets`.
    lengths: Vec<usize>,
    buckets: Vec<Bucket>,
    n_entries: usize,
}

impl LengthBucketIndex {
    /// Build over sorted character bags; slot `i` is the `i`-th bag of
    /// the iterator (for a [`CharTable`](crate::CharTable) side, the
    /// entry offset the caller re-applies on generation).
    pub fn build<'a>(bags: impl Iterator<Item = &'a [u32]>) -> Self {
        let mut by_len: std::collections::BTreeMap<usize, Bucket> =
            std::collections::BTreeMap::new();
        let mut n_entries = 0usize;
        for (slot, bag) in bags.enumerate() {
            n_entries += 1;
            let bucket = by_len.entry(bag.len()).or_default();
            let pos = bucket.members.len() as u32;
            bucket.members.push(slot as u32);
            let mut i = 0;
            while i < bag.len() {
                let c = bag[i];
                let mut m = 1usize;
                while i + m < bag.len() && bag[i + m] == c {
                    m += 1;
                }
                for t in 1..=m as u32 {
                    bucket.postings.entry((c, t)).or_default().push(pos);
                }
                i += m;
            }
        }
        let (lengths, buckets) = by_len.into_iter().unzip();
        LengthBucketIndex {
            lengths,
            buckets,
            n_entries,
        }
    }

    /// Number of indexed entries.
    pub fn n_entries(&self) -> usize {
        self.n_entries
    }

    /// Number of distinct-length buckets.
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.n_entries == 0
    }

    /// The exact character length of bucket `b`'s entries.
    pub fn bucket_char_len(&self, b: usize) -> usize {
        self.lengths[b]
    }

    /// Bucket `b`'s member slots, ascending.
    pub fn bucket_members(&self, b: usize) -> &[u32] {
        &self.buckets[b].members
    }

    /// Write the bucket ids ordered by ascending `|bucket_len −
    /// probe_len|` (ties: shorter bucket first) into `out`.
    ///
    /// Every length bound of
    /// [`CharMeasure`](crate::CharMeasure) is non-increasing as the
    /// length gap grows in either direction, so visiting buckets
    /// closest-length-first front-loads the candidates most likely to
    /// fill a top-k heap — tightening the admission bound before the
    /// far buckets are even considered.
    ///
    /// ```
    /// # use er_textsim::{CharTable, LengthBucketIndex};
    /// let t = CharTable::build(["a", "bb", "cccc"]);
    /// let index = LengthBucketIndex::build((0..t.len()).map(|i| t.bag(i)));
    /// let mut order = Vec::new();
    /// index.bucket_order_closest_first(2, &mut order);
    /// let lens: Vec<usize> = order.iter().map(|&b| index.bucket_char_len(b as usize)).collect();
    /// assert_eq!(lens, vec![2, 1, 4]);
    /// ```
    pub fn bucket_order_closest_first(&self, probe_len: usize, out: &mut Vec<u32>) {
        out.clear();
        out.reserve(self.buckets.len());
        let start = self.lengths.partition_point(|&l| l < probe_len);
        let (mut lo, mut hi) = (start, start);
        while lo > 0 || hi < self.lengths.len() {
            let d_lo = if lo > 0 {
                probe_len - self.lengths[lo - 1]
            } else {
                usize::MAX
            };
            let d_hi = if hi < self.lengths.len() {
                self.lengths[hi] - probe_len
            } else {
                usize::MAX
            };
            if d_lo <= d_hi {
                lo -= 1;
                out.push(lo as u32);
            } else {
                out.push(hi as u32);
                hi += 1;
            }
        }
    }

    /// Counting-filter probe of bucket `b`: after the call, `counts[pos]`
    /// is the multiset intersection size of `probe_bag` (sorted
    /// ascending) with member `pos`'s bag — bit-identical input to
    /// [`CharMeasure::bag_upper_bound_from_common`](crate::CharMeasure::bag_upper_bound_from_common)
    /// as the per-pair two-pointer merge would produce.
    pub fn count_common_into(&self, b: usize, probe_bag: &[u32], counts: &mut Vec<u32>) {
        let bucket = &self.buckets[b];
        counts.clear();
        counts.resize(bucket.members.len(), 0);
        let mut i = 0;
        while i < probe_bag.len() {
            let c = probe_bag[i];
            let mut m = 1usize;
            while i + m < probe_bag.len() && probe_bag[i + m] == c {
                m += 1;
            }
            for t in 1..=m as u32 {
                match bucket.postings.get(&(c, t)) {
                    Some(ps) => {
                        for &p in ps {
                            counts[p as usize] += 1;
                        }
                    }
                    // Tier t is empty ⇒ every higher tier is too.
                    None => break,
                }
            }
            i += m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chartable::{sorted_common_count, CharTable};

    fn sample_index(values: &[&str]) -> (CharTable, LengthBucketIndex) {
        let t = CharTable::build(values.iter().copied());
        let index = LengthBucketIndex::build((0..t.len()).map(|i| t.bag(i)));
        (t, index)
    }

    #[test]
    fn buckets_partition_entries_by_length() {
        let values = ["abc", "xy", "aabbc", "def", "", "pq"];
        let (t, index) = sample_index(&values);
        assert_eq!(index.n_entries(), values.len());
        let mut seen = vec![false; values.len()];
        for b in 0..index.n_buckets() {
            for &slot in index.bucket_members(b) {
                assert_eq!(t.char_len(slot as usize), index.bucket_char_len(b));
                assert!(!seen[slot as usize], "slot {slot} indexed twice");
                seen[slot as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every entry indexed exactly once");
    }

    #[test]
    fn counting_probe_matches_two_pointer_merge() {
        let values = ["abc", "aabbcc", "xyz", "aaab", "bca"];
        let (t, index) = sample_index(&values);
        let probe = CharTable::build(["aabcx"]);
        let mut counts = Vec::new();
        for b in 0..index.n_buckets() {
            index.count_common_into(b, probe.bag(0), &mut counts);
            for (pos, &slot) in index.bucket_members(b).iter().enumerate() {
                assert_eq!(
                    counts[pos] as usize,
                    sorted_common_count(probe.bag(0), t.bag(slot as usize)),
                    "entry {slot}"
                );
            }
        }
    }

    #[test]
    fn closest_first_order_is_total_and_sorted_by_gap() {
        let (_, index) = sample_index(&["a", "bb", "ccc", "dddd", "eeeeee"]);
        for probe_len in 0..8 {
            let mut order = Vec::new();
            index.bucket_order_closest_first(probe_len, &mut order);
            assert_eq!(order.len(), index.n_buckets(), "probe {probe_len}");
            let gaps: Vec<usize> = order
                .iter()
                .map(|&b| index.bucket_char_len(b as usize).abs_diff(probe_len))
                .collect();
            assert!(
                gaps.windows(2).all(|w| w[0] <= w[1]),
                "probe {probe_len}: {gaps:?}"
            );
        }
    }

    #[test]
    fn empty_index_is_harmless() {
        let index = LengthBucketIndex::build(std::iter::empty());
        assert!(index.is_empty());
        let mut order = vec![7u32];
        index.bucket_order_closest_first(3, &mut order);
        assert!(order.is_empty());
    }
}
