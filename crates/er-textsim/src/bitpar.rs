//! Bit-parallel and bound-driven edit-distance kernels.
//!
//! The all-pairs character branches of the pipeline score `n₁ × n₂`
//! string pairs; the classic `O(|a|·|b|)` dynamic program is the hottest
//! loop of the whole reproduction. Two replacements:
//!
//! * [`MyersPattern`] — Myers' bit-parallel Levenshtein (1999), in the
//!   multi-block formulation of Hyyrö (2003): the DP column is packed
//!   into `⌈|a|/64⌉` machine words and one text character advances the
//!   whole column in a handful of word operations, so the cost drops to
//!   `O(⌈|a|/64⌉·|b|)`. The pattern's per-character bit masks are
//!   prepared **once** and reused against every text — exactly the
//!   all-pairs access shape (one left row vs every right candidate).
//! * [`levenshtein_bounded`] / [`osa_bounded`] — Ukkonen-style banded
//!   DPs that evaluate only cells within `max_dist` of the diagonal and
//!   abandon the pair as soon as the distance provably exceeds
//!   `max_dist`. The scorers derive `max_dist` from a top-k sink's
//!   admission bound, turning "cannot enter the heap anyway" into an
//!   early exit.
//!
//! All kernels operate on `&[u32]` Unicode scalar values (see
//! [`CharTable`](crate::chartable::CharTable)) and return exactly the
//! same integer distances as the classic dynamic programs — equivalence
//! is property-proven in `tests/proptests.rs`, including patterns
//! longer than one 64-bit block and `max_dist` edge cases.

use er_core::FxHashMap;

/// A prepared Myers bit-parallel pattern: per-character match masks over
/// `⌈m/64⌉` blocks, reusable against any number of texts.
///
/// ```
/// use er_textsim::MyersPattern;
///
/// let mut p = MyersPattern::new();
/// let kitten: Vec<u32> = "kitten".chars().map(u32::from).collect();
/// let sitting: Vec<u32> = "sitting".chars().map(u32::from).collect();
/// p.prepare(&kitten);
/// assert_eq!(p.distance(&sitting), 3);
/// assert_eq!(p.distance(&kitten), 0, "patterns are reusable");
/// ```
#[derive(Debug, Clone, Default)]
pub struct MyersPattern {
    /// Pattern length in scalar values.
    m: usize,
    /// `⌈m/64⌉` (0 for the empty pattern).
    blocks: usize,
    /// Scalar value → start index of its block run in `slab`.
    peq: FxHashMap<u32, u32>,
    /// Match-mask blocks, `blocks` consecutive words per distinct char.
    slab: Vec<u64>,
    /// Working vertical-delta vectors, reused across `distance` calls.
    vp: Vec<u64>,
    vn: Vec<u64>,
}

impl MyersPattern {
    /// An empty pattern holder (prepare before use).
    pub fn new() -> Self {
        MyersPattern::default()
    }

    /// Length of the currently prepared pattern.
    ///
    /// ```
    /// # use er_textsim::MyersPattern;
    /// let mut p = MyersPattern::new();
    /// p.prepare(&[97, 98, 99]);
    /// assert_eq!(p.pattern_len(), 3);
    /// ```
    #[inline]
    pub fn pattern_len(&self) -> usize {
        self.m
    }

    /// Prepare the match masks of `pattern`, replacing any previous
    /// pattern. Cost: `O(|pattern| + distinct chars)`; no allocation
    /// beyond the high-water mark of previous patterns.
    pub fn prepare(&mut self, pattern: &[u32]) {
        self.m = pattern.len();
        self.blocks = pattern.len().div_ceil(64);
        self.peq.clear();
        self.slab.clear();
        for (i, &c) in pattern.iter().enumerate() {
            let at = match self.peq.get(&c) {
                Some(&at) => at as usize,
                None => {
                    let at = self.slab.len();
                    self.slab.resize(at + self.blocks, 0);
                    self.peq.insert(c, at as u32);
                    at
                }
            };
            self.slab[at + i / 64] |= 1u64 << (i % 64);
        }
    }

    /// Levenshtein distance of the prepared pattern to `text` in
    /// `O(⌈m/64⌉·|text|)` word operations.
    pub fn distance(&mut self, text: &[u32]) -> usize {
        if self.m == 0 {
            return text.len();
        }
        if text.is_empty() {
            return self.m;
        }
        let blocks = self.blocks;
        self.vp.clear();
        self.vp.resize(blocks, !0u64);
        self.vn.clear();
        self.vn.resize(blocks, 0u64);
        let mut score = self.m;
        let last = blocks - 1;
        let last_mask = 1u64 << ((self.m - 1) % 64);
        for &c in text {
            let eq_at = self.peq.get(&c).map(|&at| at as usize);
            // Horizontal deltas crossing the row-0 boundary: D[0][j] −
            // D[0][j−1] = +1.
            let mut hp_carry = 1u64;
            let mut hn_carry = 0u64;
            for b in 0..blocks {
                let eq = eq_at.map_or(0, |at| self.slab[at + b]);
                let vp = self.vp[b];
                let vn = self.vn[b];
                let x = eq | hn_carry;
                let d0 = ((x & vp).wrapping_add(vp) ^ vp) | x | vn;
                let mut hp = vn | !(d0 | vp);
                let mut hn = vp & d0;
                if b == last {
                    score += usize::from(hp & last_mask != 0);
                    score -= usize::from(hn & last_mask != 0);
                }
                let hp_out = hp >> 63;
                let hn_out = hn >> 63;
                hp = (hp << 1) | hp_carry;
                hn = (hn << 1) | hn_carry;
                self.vp[b] = hn | !(d0 | hp);
                self.vn[b] = hp & d0;
                hp_carry = hp_out;
                hn_carry = hn_out;
            }
        }
        score
    }
}

/// Reusable row buffers for the banded dynamic programs (per worker —
/// the bounded kernels never allocate once the high-water mark is
/// reached).
#[derive(Debug, Clone, Default)]
pub struct BandRows {
    prev: Vec<usize>,
    cur: Vec<usize>,
    prev2: Vec<usize>,
}

/// Levenshtein distance if it is `≤ max_dist`, `None` otherwise —
/// Ukkonen's banded DP: only cells within `max_dist` of the diagonal
/// exist, and the pair is abandoned as soon as an entire band row
/// exceeds the cutoff. Cost `O((2·max_dist + 1) · |a|)`.
///
/// ```
/// use er_textsim::{levenshtein_bounded, BandRows};
///
/// let a: Vec<u32> = "kitten".chars().map(u32::from).collect();
/// let b: Vec<u32> = "sitting".chars().map(u32::from).collect();
/// let mut rows = BandRows::default();
/// assert_eq!(levenshtein_bounded(&a, &b, 3, &mut rows), Some(3));
/// assert_eq!(levenshtein_bounded(&a, &b, 2, &mut rows), None);
/// ```
pub fn levenshtein_bounded(
    a: &[u32],
    b: &[u32],
    max_dist: usize,
    rows: &mut BandRows,
) -> Option<usize> {
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > max_dist {
        return None;
    }
    if n == 0 {
        return Some(m); // m ≤ max_dist by the guard above
    }
    if m == 0 {
        return Some(n);
    }
    let inf = max_dist.saturating_add(1);
    rows.prev.clear();
    rows.prev
        .extend((0..=m).map(|j| if j <= max_dist { j } else { inf }));
    rows.cur.clear();
    rows.cur.resize(m + 1, inf);
    for i in 1..=n {
        let lo = i.saturating_sub(max_dist).max(1);
        let hi = (i + max_dist).min(m);
        if lo > hi {
            return None;
        }
        rows.cur[lo - 1] = if lo == 1 && i <= max_dist { i } else { inf };
        let mut row_min = inf;
        for j in lo..=hi {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let d = (rows.prev[j - 1].saturating_add(cost))
                .min(rows.prev[j].saturating_add(1))
                .min(rows.cur[j - 1].saturating_add(1))
                .min(inf);
            rows.cur[j] = d;
            row_min = row_min.min(d);
        }
        // Invalidate the column the band just vacated so the next row
        // never reads a stale value as its `prev[j]`.
        if hi < m {
            rows.cur[hi + 1] = inf;
        }
        if row_min > max_dist {
            return None;
        }
        std::mem::swap(&mut rows.prev, &mut rows.cur);
    }
    (rows.prev[m] <= max_dist).then_some(rows.prev[m])
}

/// Damerau-Levenshtein distance (optimal string alignment variant, as
/// [`damerau_levenshtein_distance`](crate::charlevel::damerau_levenshtein_distance))
/// if it is `≤ max_dist`, `None` otherwise — the banded DP of
/// [`levenshtein_bounded`] plus the adjacent-transposition case.
///
/// The early exit requires **two** consecutive band rows above the
/// cutoff: a transposition bridges from row `i−2` directly to row `i`,
/// so one bad row alone does not prove the tail unreachable.
///
/// ```
/// use er_textsim::{osa_bounded, BandRows};
///
/// let a: Vec<u32> = "ca".chars().map(u32::from).collect();
/// let b: Vec<u32> = "ac".chars().map(u32::from).collect();
/// let mut rows = BandRows::default();
/// assert_eq!(osa_bounded(&a, &b, 1, &mut rows), Some(1));
/// assert_eq!(osa_bounded(&a, &b, 0, &mut rows), None);
/// ```
pub fn osa_bounded(a: &[u32], b: &[u32], max_dist: usize, rows: &mut BandRows) -> Option<usize> {
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > max_dist {
        return None;
    }
    if n == 0 {
        return Some(m);
    }
    if m == 0 {
        return Some(n);
    }
    let inf = max_dist.saturating_add(1);
    rows.prev2.clear();
    rows.prev2.resize(m + 1, inf);
    rows.prev.clear();
    rows.prev
        .extend((0..=m).map(|j| if j <= max_dist { j } else { inf }));
    rows.cur.clear();
    rows.cur.resize(m + 1, inf);
    let mut prev_row_min = 0usize; // row 0's minimum is 0
    for i in 1..=n {
        let lo = i.saturating_sub(max_dist).max(1);
        let hi = (i + max_dist).min(m);
        if lo > hi {
            return None;
        }
        rows.cur[lo - 1] = if lo == 1 && i <= max_dist { i } else { inf };
        let mut row_min = inf;
        for j in lo..=hi {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut d = (rows.prev[j - 1].saturating_add(cost))
                .min(rows.prev[j].saturating_add(1))
                .min(rows.cur[j - 1].saturating_add(1));
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                d = d.min(rows.prev2[j - 2].saturating_add(1));
            }
            let d = d.min(inf);
            rows.cur[j] = d;
            row_min = row_min.min(d);
        }
        if hi < m {
            rows.cur[hi + 1] = inf;
        }
        if row_min > max_dist && prev_row_min > max_dist {
            return None;
        }
        prev_row_min = row_min;
        std::mem::swap(&mut rows.prev2, &mut rows.prev);
        std::mem::swap(&mut rows.prev, &mut rows.cur);
    }
    (rows.prev[m] <= max_dist).then_some(rows.prev[m])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charlevel::{damerau_levenshtein_distance, levenshtein_distance_classic};

    fn codes(s: &str) -> Vec<u32> {
        s.chars().map(u32::from).collect()
    }

    #[test]
    fn myers_matches_classic_on_known_cases() {
        let cases = [
            ("kitten", "sitting"),
            ("", "abc"),
            ("abc", ""),
            ("", ""),
            ("abc", "abc"),
            ("flaw", "lawn"),
            ("βßΩ漢", "ßΩ漢x"),
        ];
        let mut p = MyersPattern::new();
        for (a, b) in cases {
            p.prepare(&codes(a));
            assert_eq!(
                p.distance(&codes(b)),
                levenshtein_distance_classic(a, b),
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn myers_multi_block_patterns() {
        // Patterns of 64, 65, 130 chars force 1, 2 and 3 blocks.
        let base: String = ('a'..='z').cycle().take(130).collect();
        for plen in [63usize, 64, 65, 100, 130] {
            let a: String = base.chars().take(plen).collect();
            let b: String = base.chars().skip(3).take(plen).collect();
            let mut p = MyersPattern::new();
            p.prepare(&codes(&a));
            assert_eq!(
                p.distance(&codes(&b)),
                levenshtein_distance_classic(&a, &b),
                "pattern length {plen}"
            );
        }
    }

    #[test]
    fn bounded_agrees_with_classic_and_cuts_off() {
        let mut rows = BandRows::default();
        for (a, b) in [("kitten", "sitting"), ("abcdef", "azcdxf"), ("", "xy")] {
            let d = levenshtein_distance_classic(a, b);
            for max_dist in 0..=(d + 2) {
                let got = levenshtein_bounded(&codes(a), &codes(b), max_dist, &mut rows);
                if max_dist >= d {
                    assert_eq!(got, Some(d), "{a:?} vs {b:?} @ {max_dist}");
                } else {
                    assert_eq!(got, None, "{a:?} vs {b:?} @ {max_dist}");
                }
            }
        }
    }

    #[test]
    fn osa_bounded_agrees_with_classic() {
        let mut rows = BandRows::default();
        for (a, b) in [("ca", "ac"), ("ca", "abc"), ("abcdef", "abcdfe"), ("x", "")] {
            let d = damerau_levenshtein_distance(a, b);
            for max_dist in 0..=(d + 2) {
                let got = osa_bounded(&codes(a), &codes(b), max_dist, &mut rows);
                if max_dist >= d {
                    assert_eq!(got, Some(d), "{a:?} vs {b:?} @ {max_dist}");
                } else {
                    assert_eq!(got, None, "{a:?} vs {b:?} @ {max_dist}");
                }
            }
        }
    }

    #[test]
    fn osa_transposition_survives_single_bad_row() {
        // A transposition bridges row i−2 → i; a one-row early exit
        // would wrongly abandon this pair at tight cutoffs.
        let a = codes("ab");
        let b = codes("ba");
        let mut rows = BandRows::default();
        assert_eq!(osa_bounded(&a, &b, 1, &mut rows), Some(1));
    }
}
