//! Lane-parallel (SWAR / array-of-lanes) character kernels.
//!
//! The scalar scoring engine walks one candidate at a time, and each
//! candidate's kernel is a *serial dependency chain*: the Myers step for
//! text position `t` cannot start before position `t − 1` finished, and
//! a bound formula's float ops depend on each other. One left row,
//! however, faces hundreds of independent right candidates — so this
//! module restructures the hot kernels to advance [`LANE_WIDTH`]
//! candidates per step through fixed-width lane arrays (`[u64; L]`,
//! `[f64; L]`). The lanes are fully independent, which buys
//! instruction-level parallelism on any core and lets LLVM
//! autovectorize the regular inner loops — with **no** nightly
//! `core::simd`, no intrinsics, and no target-feature gates.
//!
//! # Exactness contract
//!
//! Every kernel here is **bit-identical** to its scalar counterpart,
//! by construction rather than by tolerance:
//!
//! * [`MyersBatch`] runs the exact
//!   [`MyersPattern`](crate::bitpar::MyersPattern) block recurrence per
//!   lane — integer/bit operations only, so any evaluation order
//!   reproduces the same distances.
//! * The batched bound helpers ([`length_upper_bounds`],
//!   [`bag_upper_bounds_from_common`]) evaluate the *same* per-candidate
//!   `f64` formula as [`CharMeasure::length_upper_bound`] /
//!   [`CharMeasure::bag_upper_bound_from_common`], one candidate per
//!   lane. Each lane performs the identical sequence of float operations
//!   the scalar call performs, and IEEE-754 ops are deterministic, so
//!   the lane result equals the scalar result bit for bit (the property
//!   suite `er-pipeline/tests/kernel_props.rs` pins this for every
//!   measure, including multi-block patterns and ragged tails).
//!
//! The equivalences are proven in this crate's `tests/proptests.rs` and
//! re-proven end-to-end (graph bits) in `er-pipeline`.

use er_core::FxHashMap;

use crate::charlevel::CharMeasure;
use crate::chartable::sorted_common_count;

/// Number of candidates one lane step advances. Eight `u64` lanes fill a
/// 512-bit vector register and keep eight independent dependency chains
/// in flight on narrower cores; the batch helpers accept any slice up to
/// this width, so ragged tails (a chunk shorter than `LANE_WIDTH`) are
/// ordinary inputs, not special cases.
pub const LANE_WIDTH: usize = 8;

/// A multi-text Myers bit-parallel Levenshtein batch: one prepared
/// pattern (the left row) scored against up to [`LANE_WIDTH`] texts
/// (right candidates) at once.
///
/// The per-character match masks are prepared once per row, exactly as
/// [`MyersPattern`](crate::bitpar::MyersPattern) prepares them; the
/// distance loop then advances all lanes position by position, each lane
/// executing the identical multi-block recurrence the scalar kernel
/// executes. Lanes whose text is exhausted simply stop stepping — their
/// score is already final — so texts of different lengths batch
/// together without padding.
///
/// ```
/// use er_textsim::lanes::MyersBatch;
///
/// let codes = |s: &str| -> Vec<u32> { s.chars().map(u32::from).collect() };
/// let kitten = codes("kitten");
/// let texts = [codes("sitting"), codes("kitten"), codes("")];
/// let refs: Vec<&[u32]> = texts.iter().map(Vec::as_slice).collect();
/// let mut batch = MyersBatch::new();
/// batch.prepare(&kitten);
/// let mut out = [0usize; 3];
/// batch.distances(&refs, &mut out);
/// assert_eq!(out, [3, 0, 6]);
/// ```
#[derive(Debug, Clone)]
pub struct MyersBatch {
    /// Pattern length in scalar values.
    m: usize,
    /// `⌈m/64⌉` (0 for the empty pattern).
    blocks: usize,
    /// Scalar value → start index of its block run in `slab`.
    peq: FxHashMap<u32, u32>,
    /// Match-mask blocks, `blocks` consecutive words per distinct char.
    slab: Vec<u64>,
    /// Direct-mapped single-block masks for ASCII scalars — the same
    /// mask bits `slab` holds, just reachable without hashing. Only
    /// maintained for single-block patterns (the hot case); the gather
    /// loop falls back to `peq` for scalars ≥ 128.
    ascii: [u64; 128],
    /// Lane-interleaved vertical deltas: block `b` of lane `l` lives at
    /// `b * LANE_WIDTH + l`, so the per-block lane loop walks one
    /// contiguous `[u64; LANE_WIDTH]` window.
    vp: Vec<u64>,
    vn: Vec<u64>,
}

impl Default for MyersBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl MyersBatch {
    /// An empty batch holder (prepare before use).
    pub fn new() -> Self {
        MyersBatch {
            m: 0,
            blocks: 0,
            peq: FxHashMap::default(),
            slab: Vec::new(),
            ascii: [0u64; 128],
            vp: Vec::new(),
            vn: Vec::new(),
        }
    }

    /// Length of the currently prepared pattern.
    #[inline]
    pub fn pattern_len(&self) -> usize {
        self.m
    }

    /// Prepare the match masks of `pattern`, replacing any previous
    /// pattern — the same masks, bit for bit, that
    /// [`MyersPattern::prepare`](crate::bitpar::MyersPattern::prepare)
    /// builds.
    pub fn prepare(&mut self, pattern: &[u32]) {
        self.m = pattern.len();
        self.blocks = pattern.len().div_ceil(64);
        self.peq.clear();
        self.slab.clear();
        for (i, &c) in pattern.iter().enumerate() {
            let at = match self.peq.get(&c) {
                Some(&at) => at as usize,
                None => {
                    let at = self.slab.len();
                    self.slab.resize(at + self.blocks, 0);
                    self.peq.insert(c, at as u32);
                    at
                }
            };
            self.slab[at + i / 64] |= 1u64 << (i % 64);
        }
        if self.blocks <= 1 {
            self.ascii = [0u64; 128];
            for (i, &c) in pattern.iter().enumerate() {
                if c < 128 {
                    self.ascii[c as usize] |= 1u64 << i;
                }
            }
        }
    }

    /// Levenshtein distances of the prepared pattern to each text in
    /// `texts` (at most [`LANE_WIDTH`] of them), written to the first
    /// `texts.len()` slots of `out`. Equal to calling
    /// [`MyersPattern::distance`](crate::bitpar::MyersPattern::distance)
    /// per text, for any mix of lengths (ragged tails included).
    pub fn distances(&mut self, texts: &[&[u32]], out: &mut [usize]) {
        let n = texts.len();
        assert!(n <= LANE_WIDTH, "at most {LANE_WIDTH} texts per batch");
        assert!(out.len() >= n, "output slice too short");
        if self.m == 0 {
            for l in 0..n {
                out[l] = texts[l].len();
            }
            return;
        }
        let mut lens = [0usize; LANE_WIDTH];
        let mut max_len = 0usize;
        for l in 0..n {
            lens[l] = texts[l].len();
            max_len = max_len.max(lens[l]);
        }
        let mut score = [self.m; LANE_WIDTH];
        if max_len == 0 {
            out[..n].copy_from_slice(&score[..n]);
            return;
        }
        if self.blocks == 1 {
            self.distances_single_block(texts, n, &lens, &mut score);
            out[..n].copy_from_slice(&score[..n]);
            return;
        }
        let blocks = self.blocks;
        self.vp.clear();
        self.vp.resize(blocks * LANE_WIDTH, !0u64);
        self.vn.clear();
        self.vn.resize(blocks * LANE_WIDTH, 0u64);
        let last = blocks - 1;
        let last_mask = 1u64 << ((self.m - 1) % 64);
        // One per-lane match-mask run per step: lane `l` looks up its own
        // text character, then every lane advances through the shared
        // block recurrence. The eight chains are independent, so the
        // core overlaps their latencies instead of serializing them.
        let mut eq_at = [usize::MAX; LANE_WIDTH];
        // An index loop on purpose: `t` walks every lane's text at once
        // (ragged lengths), not one iterable.
        #[allow(clippy::needless_range_loop)]
        for t in 0..max_len {
            for l in 0..n {
                eq_at[l] = if t < lens[l] {
                    self.peq
                        .get(&texts[l][t])
                        .map_or(usize::MAX, |&at| at as usize)
                } else {
                    usize::MAX
                };
            }
            // Horizontal deltas crossing the row-0 boundary:
            // D[0][j] − D[0][j−1] = +1, per lane.
            let mut hp_carry = [1u64; LANE_WIDTH];
            let mut hn_carry = [0u64; LANE_WIDTH];
            for b in 0..blocks {
                let base = b * LANE_WIDTH;
                for l in 0..n {
                    if t >= lens[l] {
                        continue;
                    }
                    let eq = if eq_at[l] == usize::MAX {
                        0
                    } else {
                        self.slab[eq_at[l] + b]
                    };
                    let vp = self.vp[base + l];
                    let vn = self.vn[base + l];
                    let x = eq | hn_carry[l];
                    let d0 = ((x & vp).wrapping_add(vp) ^ vp) | x | vn;
                    let mut hp = vn | !(d0 | vp);
                    let mut hn = vp & d0;
                    if b == last {
                        score[l] += usize::from(hp & last_mask != 0);
                        score[l] -= usize::from(hn & last_mask != 0);
                    }
                    let hp_out = hp >> 63;
                    let hn_out = hn >> 63;
                    hp = (hp << 1) | hp_carry[l];
                    hn = (hn << 1) | hn_carry[l];
                    self.vp[base + l] = hn | !(d0 | hp);
                    self.vn[base + l] = hp & d0;
                    hp_carry[l] = hp_out;
                    hn_carry[l] = hn_out;
                }
            }
        }
        out[..n].copy_from_slice(&score[..n]);
    }

    /// The hot path: patterns of at most 64 scalar values keep every
    /// lane's column state (`vp`, `vn`, score) in registers. Two passes:
    /// first each lane's per-character match masks are gathered into a
    /// lane-interleaved buffer (tight per-lane loops — the hash lookups
    /// pipeline without the recurrence in between), then the recurrence
    /// runs branch-free over all lanes up to the shortest lane length
    /// (the shape LLVM autovectorizes) and finishes the ragged tails one
    /// lane at a time in scalar registers. Both halves execute exactly
    /// the single-block Myers recurrence per lane (integer/bit ops
    /// only), so the split changes scheduling, never a result bit.
    fn distances_single_block(
        &mut self,
        texts: &[&[u32]],
        n: usize,
        lens: &[usize; LANE_WIDTH],
        score: &mut [usize; LANE_WIDTH],
    ) {
        let min_len = lens[..n].iter().copied().min().unwrap_or(0);
        // `vp` doubles as the eq-mask scratch: lane `l`'s mask for text
        // position `t` lives at `t * LANE_WIDTH + l` (tail positions are
        // stored per lane past the interleaved region's layout, same
        // indexing — slots of exhausted lanes just stay zero).
        let max_len = lens[..n].iter().copied().max().unwrap_or(0);
        self.vp.clear();
        self.vp.resize(max_len * LANE_WIDTH, 0u64);
        let eq_buf = &mut self.vp;
        for l in 0..n {
            let text = texts[l];
            for (t, &c) in text.iter().enumerate() {
                eq_buf[t * LANE_WIDTH + l] = if c < 128 {
                    self.ascii[c as usize]
                } else {
                    self.peq.get(&c).map_or(0, |&at| self.slab[at as usize])
                };
            }
        }
        let last_mask = 1u64 << ((self.m - 1) % 64);
        let mut vp = [!0u64; LANE_WIDTH];
        let mut vn = [0u64; LANE_WIDTH];
        for t in 0..min_len {
            let eq = &eq_buf[t * LANE_WIDTH..(t + 1) * LANE_WIDTH];
            for l in 0..n {
                let (vpl, vnl) = (vp[l], vn[l]);
                let x = eq[l];
                let d0 = ((x & vpl).wrapping_add(vpl) ^ vpl) | x | vnl;
                let hp = vnl | !(d0 | vpl);
                let hn = vpl & d0;
                score[l] += usize::from(hp & last_mask != 0);
                score[l] -= usize::from(hn & last_mask != 0);
                let hp2 = (hp << 1) | 1;
                let hn2 = hn << 1;
                vp[l] = hn2 | !(d0 | hp2);
                vn[l] = hp2 & d0;
            }
        }
        for l in 0..n {
            let (mut vpl, mut vnl, mut s) = (vp[l], vn[l], score[l]);
            for t in min_len..lens[l] {
                let x = eq_buf[t * LANE_WIDTH + l];
                let d0 = ((x & vpl).wrapping_add(vpl) ^ vpl) | x | vnl;
                let hp = vnl | !(d0 | vpl);
                let hn = vpl & d0;
                s += usize::from(hp & last_mask != 0);
                s -= usize::from(hn & last_mask != 0);
                let hp2 = (hp << 1) | 1;
                let hn2 = hn << 1;
                vpl = hn2 | !(d0 | hp2);
                vnl = hp2 & d0;
            }
            score[l] = s;
        }
    }
}

/// Batched [`CharMeasure::length_upper_bound`]: the bound of `(la,
/// lens[i])` written to `out[i]` for every lane. The measure `match` is
/// resolved once; each lane then evaluates the identical float formula
/// the scalar method evaluates, so `out[i]` equals
/// `measure.length_upper_bound(la, lens[i])` bit for bit.
///
/// ```
/// use er_textsim::lanes::length_upper_bounds;
/// use er_textsim::CharMeasure;
///
/// let m = CharMeasure::Levenshtein;
/// let lens = [4usize, 6, 0];
/// let mut out = [0.0f64; 3];
/// length_upper_bounds(m, 6, &lens, &mut out);
/// for (i, &len) in lens.iter().enumerate() {
///     assert_eq!(out[i].to_bits(), m.length_upper_bound(6, len).to_bits());
/// }
/// ```
pub fn length_upper_bounds(measure: CharMeasure, la: usize, lens: &[usize], out: &mut [f64]) {
    assert!(out.len() >= lens.len(), "output slice too short");
    for (o, &lb) in out.iter_mut().zip(lens) {
        *o = measure.length_upper_bound(la, lb);
    }
}

/// Batched counting-filter screen:
/// [`CharMeasure::bag_upper_bound_from_common`] per lane, with
/// `f64::INFINITY` standing in for the measures without a bag bound
/// (q-grams) — an infinite upper bound never falls below an admission
/// bound, which is exactly the scalar `None` behaviour.
///
/// `commons[i]` must be the multiset-intersection size of the probe bag
/// and candidate `i`'s bag (see [`sorted_common_counts`]); `la` /
/// `lens[i]` the two character lengths.
pub fn bag_upper_bounds_from_common(
    measure: CharMeasure,
    commons: &[usize],
    la: usize,
    lens: &[usize],
    out: &mut [f64],
) {
    assert!(
        commons.len() == lens.len() && out.len() >= lens.len(),
        "lane slices disagree"
    );
    for l in 0..lens.len() {
        out[l] = measure
            .bag_upper_bound_from_common(commons[l], la, lens[l])
            .unwrap_or(f64::INFINITY);
    }
}

/// Batched [`sorted_common_count`]: the multiset-intersection size of
/// `bag_a` with each candidate bag. The per-lane two-pointer merge is
/// data-dependent (it cannot be a fixed-width SWAR loop), but hoisting
/// it out of the scoring loop lets the screen run bound checks over
/// whole lanes at once.
pub fn sorted_common_counts(bag_a: &[u32], bags: &[&[u32]], out: &mut [usize]) {
    assert!(out.len() >= bags.len(), "output slice too short");
    for (o, bag_b) in out.iter_mut().zip(bags) {
        *o = sorted_common_count(bag_a, bag_b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitpar::MyersPattern;

    fn codes(s: &str) -> Vec<u32> {
        s.chars().map(u32::from).collect()
    }

    #[test]
    fn batch_matches_scalar_on_known_cases() {
        let pattern = codes("kitten");
        let texts = [
            codes("sitting"),
            codes("kitten"),
            codes(""),
            codes("k"),
            codes("βßΩ漢"),
        ];
        let refs: Vec<&[u32]> = texts.iter().map(Vec::as_slice).collect();
        let mut batch = MyersBatch::new();
        batch.prepare(&pattern);
        let mut got = [0usize; LANE_WIDTH];
        batch.distances(&refs, &mut got);
        let mut p = MyersPattern::new();
        p.prepare(&pattern);
        for (l, t) in texts.iter().enumerate() {
            assert_eq!(got[l], p.distance(t), "lane {l}");
        }
    }

    #[test]
    fn batch_handles_empty_pattern_and_multi_block() {
        let mut batch = MyersBatch::new();
        batch.prepare(&[]);
        let texts = [codes("abc"), codes("")];
        let refs: Vec<&[u32]> = texts.iter().map(Vec::as_slice).collect();
        let mut got = [0usize; 2];
        batch.distances(&refs, &mut got);
        assert_eq!(got, [3, 0]);

        // A 130-char pattern forces 3 blocks and inter-block carries.
        let base: String = ('a'..='z').cycle().take(130).collect();
        let pattern = codes(&base);
        let shifted: String = base.chars().skip(3).chain("xyz".chars()).collect();
        let texts = [codes(&shifted), codes(&base), codes("short")];
        let refs: Vec<&[u32]> = texts.iter().map(Vec::as_slice).collect();
        batch.prepare(&pattern);
        let mut got = [0usize; 3];
        batch.distances(&refs, &mut got);
        let mut p = MyersPattern::new();
        p.prepare(&pattern);
        for (l, t) in texts.iter().enumerate() {
            assert_eq!(got[l], p.distance(t), "multi-block lane {l}");
        }
    }

    #[test]
    fn bound_batches_match_scalar_bits() {
        let m = CharMeasure::NeedlemanWunsch;
        let bag_a = codes("abbey");
        let mut sorted_a = bag_a.clone();
        sorted_a.sort_unstable();
        let bags = [codes("abba"), codes(""), codes("zzz")];
        let mut sorted_bags: Vec<Vec<u32>> = bags.to_vec();
        for b in &mut sorted_bags {
            b.sort_unstable();
        }
        let refs: Vec<&[u32]> = sorted_bags.iter().map(Vec::as_slice).collect();
        let lens: Vec<usize> = bags.iter().map(Vec::len).collect();

        let mut commons = [0usize; 3];
        sorted_common_counts(&sorted_a, &refs, &mut commons);
        let mut bag_ub = [0f64; 3];
        bag_upper_bounds_from_common(m, &commons, bag_a.len(), &lens, &mut bag_ub);
        let mut len_ub = [0f64; 3];
        length_upper_bounds(m, bag_a.len(), &lens, &mut len_ub);
        for l in 0..3 {
            assert_eq!(
                len_ub[l].to_bits(),
                m.length_upper_bound(bag_a.len(), lens[l]).to_bits()
            );
            assert_eq!(
                bag_ub[l].to_bits(),
                m.bag_upper_bound(&sorted_a, &sorted_bags[l])
                    .unwrap()
                    .to_bits()
            );
        }
        // The q-grams lane screen is a no-op bound, like the scalar None.
        let mut qg = [0f64; 3];
        bag_upper_bounds_from_common(CharMeasure::QGrams, &commons, bag_a.len(), &lens, &mut qg);
        assert!(qg.iter().all(|&x| x == f64::INFINITY));
    }
}
