//! Token-level schema-based similarity measures (Appendix B.1.2).
//!
//! Inputs are treated as sets or multisets (bags) of whitespace tokens,
//! per measure. All similarities are in `[0, 1]`; two empty token lists are
//! maximally similar, an empty vs non-empty list scores 0.

use er_core::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};

use crate::charlevel::smith_waterman_similarity;
use crate::tokenize::tokens;

/// The nine token-level measures of the paper's taxonomy (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenMeasure {
    /// Cosine of token-count vectors.
    Cosine,
    /// Monge-Elkan with Smith-Waterman as the secondary measure.
    MongeElkan,
    /// Block (L1 / Manhattan) distance over token counts, normalized.
    BlockDistance,
    /// Dice similarity over token sets.
    Dice,
    /// Overlap coefficient over token sets.
    OverlapCoefficient,
    /// Euclidean (L2) distance over token counts, normalized.
    Euclidean,
    /// Jaccard similarity over token sets.
    Jaccard,
    /// Generalized Jaccard over token multisets.
    GeneralizedJaccard,
    /// Simon White: Dice over multisets of within-token character bigrams.
    SimonWhite,
}

impl TokenMeasure {
    /// All token-level measures.
    pub fn all() -> [TokenMeasure; 9] {
        [
            TokenMeasure::Cosine,
            TokenMeasure::MongeElkan,
            TokenMeasure::BlockDistance,
            TokenMeasure::Dice,
            TokenMeasure::OverlapCoefficient,
            TokenMeasure::Euclidean,
            TokenMeasure::Jaccard,
            TokenMeasure::GeneralizedJaccard,
            TokenMeasure::SimonWhite,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            TokenMeasure::Cosine => "Cosine",
            TokenMeasure::MongeElkan => "MongeElkan",
            TokenMeasure::BlockDistance => "BlockDistance",
            TokenMeasure::Dice => "Dice",
            TokenMeasure::OverlapCoefficient => "OverlapCoefficient",
            TokenMeasure::Euclidean => "Euclidean",
            TokenMeasure::Jaccard => "Jaccard",
            TokenMeasure::GeneralizedJaccard => "GeneralizedJaccard",
            TokenMeasure::SimonWhite => "SimonWhite",
        }
    }

    /// Compute the similarity of two strings (tokenized internally).
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        let ta = tokens(a);
        let tb = tokens(b);
        match self {
            TokenMeasure::Cosine => cosine_similarity(&ta, &tb),
            TokenMeasure::MongeElkan => monge_elkan_similarity(&ta, &tb),
            TokenMeasure::BlockDistance => block_distance_similarity(&ta, &tb),
            TokenMeasure::Dice => dice_similarity(&ta, &tb),
            TokenMeasure::OverlapCoefficient => overlap_coefficient(&ta, &tb),
            TokenMeasure::Euclidean => euclidean_similarity(&ta, &tb),
            TokenMeasure::Jaccard => jaccard_similarity(&ta, &tb),
            TokenMeasure::GeneralizedJaccard => generalized_jaccard_similarity(&ta, &tb),
            TokenMeasure::SimonWhite => simon_white_similarity(&ta, &tb),
        }
    }
}

fn counts<'a>(toks: &[&'a str]) -> FxHashMap<&'a str, usize> {
    let mut m = FxHashMap::default();
    for t in toks {
        *m.entry(*t).or_insert(0) += 1;
    }
    m
}

fn set<'a>(toks: &[&'a str]) -> FxHashSet<&'a str> {
    toks.iter().copied().collect()
}

/// Cosine of the token count vectors: `a·b / (‖a‖·‖b‖)`.
pub fn cosine_similarity(a: &[&str], b: &[&str]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let ca = counts(a);
    let cb = counts(b);
    let dot: f64 = ca
        .iter()
        .filter_map(|(t, &fa)| cb.get(t).map(|&fb| (fa * fb) as f64))
        .sum();
    let na: f64 = ca.values().map(|&f| (f * f) as f64).sum::<f64>().sqrt();
    let nb: f64 = cb.values().map(|&f| (f * f) as f64).sum::<f64>().sqrt();
    (dot / (na * nb)).clamp(0.0, 1.0)
}

/// Block (L1) distance over token counts, normalized:
/// `1 − ‖a − b‖₁ / (N_a + N_b)`.
pub fn block_distance_similarity(a: &[&str], b: &[&str]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let ca = counts(a);
    let cb = counts(b);
    let mut diff = 0usize;
    for (t, &fa) in &ca {
        diff += fa.abs_diff(cb.get(t).copied().unwrap_or(0));
    }
    for (t, &fb) in &cb {
        if !ca.contains_key(t) {
            diff += fb;
        }
    }
    1.0 - diff as f64 / (a.len() + b.len()) as f64
}

/// Euclidean (L2) distance over token counts, normalized by the maximal
/// possible distance `√(N_a² + N_b²)` (disjoint bags):
/// `1 − ‖a − b‖₂ / √(N_a² + N_b²)`.
pub fn euclidean_similarity(a: &[&str], b: &[&str]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let ca = counts(a);
    let cb = counts(b);
    let mut sq = 0.0f64;
    for (t, &fa) in &ca {
        let fb = cb.get(t).copied().unwrap_or(0);
        let d = fa as f64 - fb as f64;
        sq += d * d;
    }
    for (t, &fb) in &cb {
        if !ca.contains_key(t) {
            sq += (fb * fb) as f64;
        }
    }
    let denom = ((a.len() * a.len() + b.len() * b.len()) as f64).sqrt();
    if denom == 0.0 {
        return 1.0;
    }
    (1.0 - sq.sqrt() / denom).clamp(0.0, 1.0)
}

/// Jaccard over token sets: `|A ∩ B| / |A ∪ B|`.
pub fn jaccard_similarity(a: &[&str], b: &[&str]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa = set(a);
    let sb = set(b);
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Generalized Jaccard over token multisets: `Σ min(f_a, f_b) / Σ max(f_a, f_b)`.
pub fn generalized_jaccard_similarity(a: &[&str], b: &[&str]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let ca = counts(a);
    let cb = counts(b);
    let mut min_sum = 0usize;
    for (t, &fa) in &ca {
        min_sum += fa.min(cb.get(t).copied().unwrap_or(0));
    }
    let max_sum = a.len() + b.len() - min_sum;
    if max_sum == 0 {
        1.0
    } else {
        min_sum as f64 / max_sum as f64
    }
}

/// Dice over token sets: `2|A ∩ B| / (|A| + |B|)`.
pub fn dice_similarity(a: &[&str], b: &[&str]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa = set(a);
    let sb = set(b);
    let inter = sa.intersection(&sb).count();
    let denom = sa.len() + sb.len();
    if denom == 0 {
        1.0
    } else {
        2.0 * inter as f64 / denom as f64
    }
}

/// Overlap coefficient over token sets: `|A ∩ B| / min(|A|, |B|)`.
pub fn overlap_coefficient(a: &[&str], b: &[&str]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let sa = set(a);
    let sb = set(b);
    let inter = sa.intersection(&sb).count();
    inter as f64 / sa.len().min(sb.len()) as f64
}

/// Simon White ("strike a match"): Dice over the *multisets* of adjacent
/// character pairs taken within each token.
pub fn simon_white_similarity(a: &[&str], b: &[&str]) -> f64 {
    fn pairs(toks: &[&str]) -> Vec<(char, char)> {
        let mut out = Vec::new();
        for t in toks {
            let chars: Vec<char> = t.chars().collect();
            for w in chars.windows(2) {
                out.push((w[0], w[1]));
            }
        }
        out
    }
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let pa = pairs(a);
    let pb = pairs(b);
    if pa.is_empty() && pb.is_empty() {
        // Tokens exist but are single characters: fall back to set Dice.
        return dice_similarity(a, b);
    }
    let mut cb: FxHashMap<(char, char), usize> = FxHashMap::default();
    for p in &pb {
        *cb.entry(*p).or_insert(0) += 1;
    }
    let mut inter = 0usize;
    for p in &pa {
        if let Some(c) = cb.get_mut(p) {
            if *c > 0 {
                *c -= 1;
                inter += 1;
            }
        }
    }
    2.0 * inter as f64 / (pa.len() + pb.len()) as f64
}

/// Monge-Elkan: `(1/|a|) Σ_i max_j sim'(a_i, b_j)` with Smith-Waterman as
/// the secondary measure (Appendix B.1.2). Asymmetric by definition; we
/// symmetrize with the mean of both directions so the similarity-graph
/// contract (symmetric weights) holds.
pub fn monge_elkan_similarity(a: &[&str], b: &[&str]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let dir = |xs: &[&str], ys: &[&str]| -> f64 {
        xs.iter()
            .map(|x| {
                ys.iter()
                    .map(|y| smith_waterman_similarity(x, y))
                    .fold(0.0f64, f64::max)
            })
            .sum::<f64>()
            / xs.len() as f64
    };
    (dir(a, b) + dir(b, a)) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;
    fn toks(s: &str) -> Vec<&str> {
        tokens(s)
    }

    #[test]
    fn cosine_counts() {
        let a = toks("new york city");
        let b = toks("york city hall");
        // dot = 2 (york, city); norms √3 → 2/3.
        assert!((cosine_similarity(&a, &b) - 2.0 / 3.0).abs() < EPS);
        assert_eq!(cosine_similarity(&toks(""), &toks("")), 1.0);
        assert_eq!(cosine_similarity(&toks("a"), &toks("")), 0.0);
    }

    #[test]
    fn block_distance_example() {
        let a = toks("a b b");
        let b = toks("a b c");
        // diff: b 1, c 1 → 2; sim = 1 - 2/6.
        assert!((block_distance_similarity(&a, &b) - (1.0 - 2.0 / 6.0)).abs() < EPS);
    }

    #[test]
    fn euclidean_example() {
        let a = toks("a b");
        let b = toks("a c");
        // diff vector: b 1, c 1 → √2; denom √(4+4)=2√2 → sim = 0.5.
        assert!((euclidean_similarity(&a, &b) - 0.5).abs() < EPS);
        assert_eq!(euclidean_similarity(&toks(""), &toks("")), 1.0);
    }

    #[test]
    fn jaccard_and_generalized() {
        let a = toks("a b c");
        let b = toks("b c d");
        assert!((jaccard_similarity(&a, &b) - 0.5).abs() < EPS); // 2/4
                                                                 // Multiset: a = {a,a,b}, b = {a,b,b}: min 1+1=2, max 2+2=4 → 0.5.
        let a2 = toks("a a b");
        let b2 = toks("a b b");
        assert!((generalized_jaccard_similarity(&a2, &b2) - 0.5).abs() < EPS);
        // Set Jaccard of the same pair is 1 — multisets matter.
        assert!((jaccard_similarity(&a2, &b2) - 1.0).abs() < EPS);
    }

    #[test]
    fn dice_and_overlap() {
        let a = toks("a b c");
        let b = toks("b c d e");
        assert!((dice_similarity(&a, &b) - 2.0 * 2.0 / 7.0).abs() < EPS);
        assert!((overlap_coefficient(&a, &b) - 2.0 / 3.0).abs() < EPS);
        // Subset → overlap = 1.
        assert!((overlap_coefficient(&toks("a b"), &toks("a b c d")) - 1.0).abs() < EPS);
    }

    #[test]
    fn simon_white_pairs() {
        // Classic example: "healed" vs "sealed" → pairs he,ea,al,le,ed vs
        // se,ea,al,le,ed → 2*4/10 = 0.8.
        let s = simon_white_similarity(&toks("healed"), &toks("sealed"));
        assert!((s - 0.8).abs() < EPS);
        // Single-char tokens fall back to set Dice.
        let s = simon_white_similarity(&toks("a b"), &toks("a c"));
        assert!((s - 0.5).abs() < EPS);
    }

    #[test]
    fn monge_elkan_rewards_best_alignments() {
        let a = toks("peter christen");
        let b = toks("christen peter");
        assert!((monge_elkan_similarity(&a, &b) - 1.0).abs() < EPS);
        let c = toks("peter christen");
        let d = toks("petra christen");
        let s = monge_elkan_similarity(&c, &d);
        assert!(s > 0.5 && s < 1.0);
        // Symmetrized.
        assert!((s - monge_elkan_similarity(&d, &c)).abs() < EPS);
    }

    #[test]
    fn all_measures_bounded_symmetric_reflexive() {
        let samples = [
            ("apple iphone 12", "iphone 12 apple"),
            ("a b c", "d e f"),
            ("", "x y"),
            ("dup dup dup", "dup"),
        ];
        for m in TokenMeasure::all() {
            for (a, b) in samples {
                let s = m.similarity(a, b);
                assert!((0.0..=1.0).contains(&s), "{} out of range: {s}", m.name());
                assert!(
                    (s - m.similarity(b, a)).abs() < EPS,
                    "{} not symmetric",
                    m.name()
                );
            }
            assert!(
                (m.similarity("same same", "same same") - 1.0).abs() < EPS,
                "{} not reflexive",
                m.name()
            );
        }
    }

    #[test]
    fn roster_has_nine() {
        assert_eq!(TokenMeasure::all().len(), 9);
    }
}
