//! Text normalization, tokenization and n-gram extraction.
//!
//! Every representation model starts from the same preprocessing:
//! lowercasing and whitespace/punctuation token splitting, as is standard in
//! the ER toolkits the paper builds on (JedAI / Simmetrics).

use serde::{Deserialize, Serialize};

/// Lowercase and collapse runs of whitespace/punctuation into single spaces.
///
/// Keeps alphanumerics (any script) and intra-token characters; everything
/// else becomes a separator.
pub fn normalize_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_was_space = true;
    for c in s.chars() {
        if c.is_alphanumeric() {
            for lc in c.to_lowercase() {
                out.push(lc);
            }
            last_was_space = false;
        } else if !last_was_space {
            out.push(' ');
            last_was_space = true;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Whitespace tokens of a (raw or normalized) string.
pub fn tokens(s: &str) -> Vec<&str> {
    s.split_whitespace().collect()
}

/// Character n-grams of `s` as they appear (no padding): the paper's
/// "Joe Biden" has the seven 3-grams `Joe`, `oe_`, `e_B`, `_Bi`, `Bid`,
/// `ide`, `den` (spaces rendered as `_` there).
///
/// Strings shorter than `n` yield a single n-gram equal to the whole string
/// (so short values are still representable), except the empty string,
/// which yields nothing.
pub fn char_ngrams(s: &str, n: usize) -> Vec<String> {
    assert!(n > 0, "n-gram size must be positive");
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    if chars.len() <= n {
        return vec![chars.iter().collect()];
    }
    (0..=chars.len() - n)
        .map(|i| chars[i..i + n].iter().collect())
        .collect()
}

/// Token n-grams of `s`: contiguous token windows joined by a single space.
/// `n = 1` is the plain token list.
pub fn token_ngrams(s: &str, n: usize) -> Vec<String> {
    assert!(n > 0, "n-gram size must be positive");
    let toks = tokens(s);
    if toks.is_empty() {
        return Vec::new();
    }
    if toks.len() <= n {
        return vec![toks.join(" ")];
    }
    (0..=toks.len() - n)
        .map(|i| toks[i..i + n].join(" "))
        .collect()
}

/// A schema-agnostic n-gram scheme: which unit and which `n`.
///
/// The paper uses `n ∈ {2,3,4}` for character and `n ∈ {1,2,3}` for token
/// n-grams, for both the vector and the graph models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NGramScheme {
    /// Character n-grams of the given size.
    Char(usize),
    /// Token n-grams of the given size.
    Token(usize),
}

impl NGramScheme {
    /// The six schemes of the paper.
    pub fn all() -> [NGramScheme; 6] {
        [
            NGramScheme::Char(2),
            NGramScheme::Char(3),
            NGramScheme::Char(4),
            NGramScheme::Token(1),
            NGramScheme::Token(2),
            NGramScheme::Token(3),
        ]
    }

    /// Extract this scheme's n-grams from a text.
    pub fn extract(&self, s: &str) -> Vec<String> {
        match *self {
            NGramScheme::Char(n) => char_ngrams(s, n),
            NGramScheme::Token(n) => token_ngrams(s, n),
        }
    }

    /// Short display name, e.g. `c3` or `t2`.
    pub fn short_name(&self) -> String {
        match *self {
            NGramScheme::Char(n) => format!("c{n}"),
            NGramScheme::Token(n) => format!("t{n}"),
        }
    }

    /// The window size used by the corresponding n-gram *graph* model
    /// (JInsect uses the n-gram size itself).
    pub fn window(&self) -> usize {
        match *self {
            NGramScheme::Char(n) | NGramScheme::Token(n) => n.max(2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_lowercases_and_collapses() {
        assert_eq!(normalize_text("  Joe   BIDEN! "), "joe biden");
        assert_eq!(normalize_text("A-B_C"), "a b c");
        assert_eq!(normalize_text(""), "");
        assert_eq!(normalize_text("---"), "");
        assert_eq!(normalize_text("Σίσυφος 42"), "σίσυφος 42");
    }

    #[test]
    fn paper_joe_biden_char_trigrams() {
        // §4: "the set of character 3-grams {'Joe', 'oe_', 'e_B', '_Bi',
        // 'Bid', 'ide', 'den'}" — seven 3-grams.
        let grams = char_ngrams("Joe Biden", 3);
        assert_eq!(grams, vec!["Joe", "oe ", "e B", " Bi", "Bid", "ide", "den"]);
    }

    #[test]
    fn short_strings_become_single_gram() {
        assert_eq!(char_ngrams("ab", 3), vec!["ab"]);
        assert_eq!(char_ngrams("abc", 3), vec!["abc"]);
        assert!(char_ngrams("", 3).is_empty());
    }

    #[test]
    fn token_ngrams_window_over_tokens() {
        assert_eq!(
            token_ngrams("joe biden usa", 1),
            vec!["joe", "biden", "usa"]
        );
        assert_eq!(
            token_ngrams("joe biden usa", 2),
            vec!["joe biden", "biden usa"]
        );
        assert_eq!(token_ngrams("joe biden", 3), vec!["joe biden"]);
        assert!(token_ngrams("", 2).is_empty());
    }

    #[test]
    fn paper_token_bigram_example() {
        // §4: "a token 2-gram vector of 'Joe Biden' would be all zeros …
        // except for the place corresponding to the 2-gram 'Joe Biden'".
        assert_eq!(token_ngrams("Joe Biden", 2), vec!["Joe Biden"]);
    }

    #[test]
    fn scheme_roster_matches_paper() {
        let names: Vec<String> = NGramScheme::all().iter().map(|s| s.short_name()).collect();
        assert_eq!(names, vec!["c2", "c3", "c4", "t1", "t2", "t3"]);
    }

    #[test]
    fn scheme_extract_dispatches() {
        assert_eq!(NGramScheme::Char(2).extract("abc"), vec!["ab", "bc"]);
        assert_eq!(NGramScheme::Token(1).extract("a b"), vec!["a", "b"]);
    }

    #[test]
    fn unicode_ngrams_are_char_based() {
        // Multi-byte chars count as single units.
        assert_eq!(char_ngrams("αβγδ", 2), vec!["αβ", "βγ", "γδ"]);
    }
}
