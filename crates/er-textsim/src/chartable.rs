//! Interned character tables for prepared all-pairs scoring.
//!
//! The character-level scorers compare the *same* attribute values
//! against each other `n₁ × n₂` times; decoding a value's `char`s per
//! pair (the old `Vec<char>`-per-call shape) re-did the same UTF-8 walk
//! and allocation hundreds of millions of times at paper scale. A
//! [`CharTable`] decodes every value **once** in the prepare phase into
//! one contiguous `u32` scalar-value slab (plus per-value sorted
//! character bags for the counting-filter upper bounds of
//! [`CharMeasure`](crate::CharMeasure)) and hands out borrowed slices —
//! the score phase allocates nothing and shares the table read-only
//! across workers.

/// Interned character data of a sequence of attribute values: per value
/// a `&[u32]` of Unicode scalar values in order, and the same scalars
/// sorted ascending (a multiset "bag") for order-free bounds.
///
/// ```
/// use er_textsim::{sorted_common_count, CharTable};
///
/// let t = CharTable::build(["cab", "bad", ""]);
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.codes(0), &"cab".chars().map(u32::from).collect::<Vec<_>>()[..]);
/// assert_eq!(t.bag(0), &"abc".chars().map(u32::from).collect::<Vec<_>>()[..]);
/// assert!(t.codes(2).is_empty());
/// // "cab" and "bad" share {a, b}.
/// assert_eq!(sorted_common_count(t.bag(0), t.bag(1)), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CharTable {
    /// Scalar values of every entry, concatenated.
    codes: Vec<u32>,
    /// The same scalar values, sorted ascending within each entry.
    bags: Vec<u32>,
    /// Entry boundaries into `codes` / `bags` (`n + 1` fenceposts).
    offsets: Vec<u32>,
}

impl CharTable {
    /// Intern `values` in order. Total character count must fit `u32`
    /// (4 billion scalars — far beyond any collection this crate
    /// handles in one table).
    pub fn build<'a, I: IntoIterator<Item = &'a str>>(values: I) -> Self {
        let mut codes: Vec<u32> = Vec::new();
        let mut offsets: Vec<u32> = vec![0];
        for v in values {
            codes.extend(v.chars().map(u32::from));
            let end = u32::try_from(codes.len()).expect("char table exceeds u32 offsets");
            offsets.push(end);
        }
        let mut bags = codes.clone();
        for w in offsets.windows(2) {
            bags[w[0] as usize..w[1] as usize].sort_unstable();
        }
        CharTable {
            codes,
            bags,
            offsets,
        }
    }

    /// Number of interned values.
    ///
    /// ```
    /// # use er_textsim::CharTable;
    /// assert_eq!(CharTable::build(["a", "b"]).len(), 2);
    /// ```
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the table holds no values.
    ///
    /// ```
    /// # use er_textsim::CharTable;
    /// assert!(CharTable::build([]).is_empty());
    /// ```
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entry `i`'s scalar values in text order.
    #[inline]
    pub fn codes(&self, i: usize) -> &[u32] {
        &self.codes[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Entry `i`'s scalar values sorted ascending (its character bag).
    #[inline]
    pub fn bag(&self, i: usize) -> &[u32] {
        &self.bags[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Entry `i`'s length in scalar values (what `str::chars().count()`
    /// re-computed per pair before the table existed).
    #[inline]
    pub fn char_len(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }
}

/// Size of the multiset intersection of two ascending-sorted slices —
/// the shared-character count behind the counting-filter bounds
/// (`O(|a| + |b|)` two-pointer merge).
///
/// ```
/// use er_textsim::sorted_common_count;
///
/// assert_eq!(sorted_common_count(&[1, 2, 2, 5], &[2, 2, 2, 6]), 2);
/// assert_eq!(sorted_common_count(&[], &[1]), 0);
/// ```
pub fn sorted_common_count(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut common) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    common
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trips_values() {
        let values = ["hello", "", "漢字テスト", "aba"];
        let t = CharTable::build(values);
        assert_eq!(t.len(), 4);
        for (i, v) in values.iter().enumerate() {
            let expect: Vec<u32> = v.chars().map(u32::from).collect();
            assert_eq!(t.codes(i), &expect[..], "entry {i}");
            assert_eq!(t.char_len(i), expect.len());
            let mut sorted = expect;
            sorted.sort_unstable();
            assert_eq!(t.bag(i), &sorted[..], "bag {i}");
        }
    }

    #[test]
    fn common_count_is_multiset_intersection() {
        let t = CharTable::build(["aabc", "abbc", "xyz"]);
        assert_eq!(sorted_common_count(t.bag(0), t.bag(1)), 3); // a, b, c
        assert_eq!(sorted_common_count(t.bag(0), t.bag(2)), 0);
        assert_eq!(sorted_common_count(t.bag(0), t.bag(0)), 4);
    }
}
