//! Property tests for the similarity measures: bounds, symmetry,
//! reflexivity and tokenization invariants over random ASCII-ish strings.

use er_textsim::{
    char_ngrams, normalize_text, token_ngrams, GraphSimilarity, NGramGraph, NGramScheme,
    SchemaBasedMeasure, SparseVector, TermWeighting, VectorMeasure, VectorModel,
};
use proptest::prelude::*;

fn arb_text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9 ]{0,24}").expect("valid regex")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn schema_based_measures_bounded_symmetric(a in arb_text(), b in arb_text()) {
        for m in SchemaBasedMeasure::all() {
            let s = m.similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s), "{} = {s} for {a:?} vs {b:?}", m.name());
            let r = m.similarity(&b, &a);
            prop_assert!((s - r).abs() < 1e-9, "{} asymmetric", m.name());
        }
    }

    #[test]
    fn schema_based_measures_reflexive(a in arb_text()) {
        for m in SchemaBasedMeasure::all() {
            let s = m.similarity(&a, &a);
            prop_assert!((s - 1.0).abs() < 1e-9, "{}({a:?},{a:?}) = {s}", m.name());
        }
    }

    #[test]
    fn ngram_counts_match_lengths(a in arb_text(), n in 1usize..5) {
        let grams = char_ngrams(&a, n);
        let len = a.chars().count();
        if len == 0 {
            prop_assert!(grams.is_empty());
        } else if len <= n {
            prop_assert_eq!(grams.len(), 1);
        } else {
            prop_assert_eq!(grams.len(), len - n + 1);
        }
        for g in &grams {
            prop_assert!(g.chars().count() <= n.max(len.min(n)));
        }
    }

    #[test]
    fn token_ngram_counts(a in arb_text(), n in 1usize..4) {
        let grams = token_ngrams(&a, n);
        let toks = a.split_whitespace().count();
        if toks == 0 {
            prop_assert!(grams.is_empty());
        } else if toks <= n {
            prop_assert_eq!(grams.len(), 1);
        } else {
            prop_assert_eq!(grams.len(), toks - n + 1);
        }
    }

    #[test]
    fn normalization_is_idempotent(a in "[\\PC]{0,32}") {
        let once = normalize_text(&a);
        let twice = normalize_text(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn vector_measures_bounded_symmetric(a in arb_text(), b in arb_text()) {
        for scheme in NGramScheme::all() {
            let model = VectorModel::new(scheme);
            let va = model.vector(&a, TermWeighting::Tf, None);
            let vb = model.vector(&b, TermWeighting::Tf, None);
            for m in [
                VectorMeasure::CosineTf,
                VectorMeasure::Jaccard,
                VectorMeasure::GeneralizedJaccardTf,
            ] {
                let s = m.similarity(&va, &vb, None);
                prop_assert!((0.0..=1.0).contains(&s), "{} = {s}", m.name());
                let r = m.similarity(&vb, &va, None);
                prop_assert!((s - r).abs() < 1e-9, "{} asymmetric", m.name());
            }
        }
    }

    #[test]
    fn vector_identity_is_one(a in "[a-z0-9 ]{1,24}") {
        prop_assume!(!a.trim().is_empty());
        let model = VectorModel::new(NGramScheme::Char(3));
        let v = model.vector(&a, TermWeighting::Tf, None);
        prop_assume!(!v.is_empty());
        for m in [
            VectorMeasure::CosineTf,
            VectorMeasure::Jaccard,
            VectorMeasure::GeneralizedJaccardTf,
        ] {
            let s = m.similarity(&v, &v, None);
            prop_assert!((s - 1.0).abs() < 1e-9, "{}(v,v) = {s}", m.name());
        }
    }

    #[test]
    fn sparse_vector_dot_is_commutative(
        pairs_a in proptest::collection::vec((0u64..50, 0.0f64..2.0), 0..20),
        pairs_b in proptest::collection::vec((0u64..50, 0.0f64..2.0), 0..20),
    ) {
        let a = SparseVector::from_pairs(pairs_a);
        let b = SparseVector::from_pairs(pairs_b);
        prop_assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-9);
        prop_assert!(a.common_min_sum(&b) <= a.weight_sum() + 1e-9);
        prop_assert_eq!(a.common_terms(&b), b.common_terms(&a));
    }

    #[test]
    fn graph_similarities_bounded_symmetric(a in arb_text(), b in arb_text()) {
        for scheme in [NGramScheme::Char(3), NGramScheme::Token(1)] {
            let ga = NGramGraph::from_value(&a, scheme);
            let gb = NGramGraph::from_value(&b, scheme);
            for m in GraphSimilarity::all() {
                let s = m.similarity(&ga, &gb);
                prop_assert!((0.0..=1.0).contains(&s), "{} = {s}", m.name());
                let r = m.similarity(&gb, &ga);
                prop_assert!((s - r).abs() < 1e-9, "{} asymmetric", m.name());
            }
        }
    }
}
