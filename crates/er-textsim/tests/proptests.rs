//! Property tests for the similarity measures: bounds, symmetry,
//! reflexivity and tokenization invariants over random ASCII-ish strings —
//! plus the **candidate-index filter kernels** (probe-plan suffix bounds,
//! length buckets, counting filters) behind index-driven generation:
//! none of them may ever drop a pair whose true similarity meets the
//! admission bound.

use er_textsim::{
    char_ngrams, levenshtein_bounded, levenshtein_distance_bounded, levenshtein_distance_classic,
    normalize_text, osa_bounded, sorted_common_count, token_ngrams, BandRows, CharMeasure,
    CharScratch, CharTable, DfIndex, GraphSimilarity, LengthBucketIndex, MyersBatch, MyersPattern,
    NGramGraph, NGramScheme, SchemaBasedMeasure, SparseVector, TermWeighting, VectorMeasure,
    VectorModel,
};
use proptest::prelude::*;

fn arb_text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9 ]{0,24}").expect("valid regex")
}

/// A small repeat-heavy alphabet with multi-byte and supplementary-plane
/// characters, so edit distances are interesting and `char`-level
/// handling (not byte-level) is exercised.
const UNI_ALPHA: [char; 10] = ['a', 'b', 'c', 'd', ' ', '-', 'é', 'ß', '漢', '𝄞'];

/// Arbitrary unicode strings up to `max` scalars — beyond 64 to force
/// multi-block bit-parallel patterns.
fn arb_unicode(max: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..UNI_ALPHA.len(), 0..=max)
        .prop_map(|ix| ix.into_iter().map(|i| UNI_ALPHA[i]).collect())
}

fn codes(s: &str) -> Vec<u32> {
    s.chars().map(u32::from).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn schema_based_measures_bounded_symmetric(a in arb_text(), b in arb_text()) {
        for m in SchemaBasedMeasure::all() {
            let s = m.similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s), "{} = {s} for {a:?} vs {b:?}", m.name());
            let r = m.similarity(&b, &a);
            prop_assert!((s - r).abs() < 1e-9, "{} asymmetric", m.name());
        }
    }

    #[test]
    fn schema_based_measures_reflexive(a in arb_text()) {
        for m in SchemaBasedMeasure::all() {
            let s = m.similarity(&a, &a);
            prop_assert!((s - 1.0).abs() < 1e-9, "{}({a:?},{a:?}) = {s}", m.name());
        }
    }

    /// The Myers bit-parallel kernel (single- and multi-block: strings
    /// run past 64 scalars) computes exactly the classic DP distance,
    /// both through the `&str` API and a reused prepared pattern.
    #[test]
    fn bit_parallel_levenshtein_matches_classic(
        a in arb_unicode(140),
        b in arb_unicode(140),
    ) {
        let expect = levenshtein_distance_classic(&a, &b);
        prop_assert_eq!(er_textsim::charlevel::levenshtein_distance(&a, &b), expect);
        let mut p = MyersPattern::new();
        p.prepare(&codes(&a));
        prop_assert_eq!(p.distance(&codes(&b)), expect);
        // The pattern survives reuse against a second text.
        prop_assert_eq!(p.distance(&codes(&a)), 0);
    }

    /// The banded bounded kernel returns the exact distance iff it is
    /// within `max_dist`, and `None` otherwise — including `max_dist`
    /// exactly at, one below and far beyond the true distance.
    #[test]
    fn bounded_levenshtein_matches_classic(
        a in arb_unicode(90),
        b in arb_unicode(90),
        max_dist in 0usize..=40,
    ) {
        let d = levenshtein_distance_classic(&a, &b);
        let got = levenshtein_distance_bounded(&a, &b, max_dist);
        if max_dist >= d {
            prop_assert_eq!(got, Some(d));
        } else {
            prop_assert_eq!(got, None);
        }
        // Pin the decision boundary regardless of the sampled cutoff.
        let mut rows = BandRows::default();
        let (ca, cb) = (codes(&a), codes(&b));
        prop_assert_eq!(levenshtein_bounded(&ca, &cb, d, &mut rows), Some(d));
        if d > 0 {
            prop_assert_eq!(levenshtein_bounded(&ca, &cb, d - 1, &mut rows), None);
        }
    }

    /// Same contract for the banded OSA (Damerau) kernel.
    #[test]
    fn bounded_osa_matches_classic(
        a in arb_unicode(60),
        b in arb_unicode(60),
        max_dist in 0usize..=30,
    ) {
        let d = er_textsim::charlevel::damerau_levenshtein_distance(&a, &b);
        let mut rows = BandRows::default();
        let (ca, cb) = (codes(&a), codes(&b));
        let got = osa_bounded(&ca, &cb, max_dist, &mut rows);
        if max_dist >= d {
            prop_assert_eq!(got, Some(d));
        } else {
            prop_assert_eq!(got, None);
        }
        prop_assert_eq!(osa_bounded(&ca, &cb, d, &mut rows), Some(d));
        if d > 0 {
            prop_assert_eq!(osa_bounded(&ca, &cb, d - 1, &mut rows), None);
        }
    }

    /// The exactness contract behind prune-aware scoring: every upper
    /// bound dominates the measure's own computed similarity.
    #[test]
    fn char_upper_bounds_dominate(a in arb_unicode(40), b in arb_unicode(40)) {
        let (ca, cb) = (codes(&a), codes(&b));
        let (mut bag_a, mut bag_b) = (ca.clone(), cb.clone());
        bag_a.sort_unstable();
        bag_b.sort_unstable();
        for m in CharMeasure::all() {
            let sim = m.similarity(&a, &b);
            let len_ub = m.length_upper_bound(ca.len(), cb.len());
            prop_assert!(
                sim <= len_ub,
                "{}: length bound {len_ub} < sim {sim} for {a:?} vs {b:?}",
                m.name()
            );
            if let Some(bag_ub) = m.bag_upper_bound(&bag_a, &bag_b) {
                prop_assert!(
                    sim <= bag_ub,
                    "{}: bag bound {bag_ub} < sim {sim} for {a:?} vs {b:?}",
                    m.name()
                );
            }
        }
    }

    /// The slice kernels behind the prepared char tables are bit-identical
    /// to the `&str` API for every measure.
    #[test]
    fn codes_kernels_bit_identical_to_str(a in arb_unicode(70), b in arb_unicode(70)) {
        let (ca, cb) = (codes(&a), codes(&b));
        let mut s = CharScratch::new();
        for m in CharMeasure::all() {
            prop_assert_eq!(
                m.similarity_codes(&ca, &cb, &mut s).to_bits(),
                m.similarity(&a, &b).to_bits(),
                "{} diverges on {:?} vs {:?}",
                m.name(), &a, &b
            );
        }
    }

    #[test]
    fn ngram_counts_match_lengths(a in arb_text(), n in 1usize..5) {
        let grams = char_ngrams(&a, n);
        let len = a.chars().count();
        if len == 0 {
            prop_assert!(grams.is_empty());
        } else if len <= n {
            prop_assert_eq!(grams.len(), 1);
        } else {
            prop_assert_eq!(grams.len(), len - n + 1);
        }
        for g in &grams {
            prop_assert!(g.chars().count() <= n.max(len.min(n)));
        }
    }

    #[test]
    fn token_ngram_counts(a in arb_text(), n in 1usize..4) {
        let grams = token_ngrams(&a, n);
        let toks = a.split_whitespace().count();
        if toks == 0 {
            prop_assert!(grams.is_empty());
        } else if toks <= n {
            prop_assert_eq!(grams.len(), 1);
        } else {
            prop_assert_eq!(grams.len(), toks - n + 1);
        }
    }

    #[test]
    fn normalization_is_idempotent(a in "[\\PC]{0,32}") {
        let once = normalize_text(&a);
        let twice = normalize_text(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn vector_measures_bounded_symmetric(a in arb_text(), b in arb_text()) {
        for scheme in NGramScheme::all() {
            let model = VectorModel::new(scheme);
            let va = model.vector(&a, TermWeighting::Tf, None);
            let vb = model.vector(&b, TermWeighting::Tf, None);
            for m in [
                VectorMeasure::CosineTf,
                VectorMeasure::Jaccard,
                VectorMeasure::GeneralizedJaccardTf,
            ] {
                let s = m.similarity(&va, &vb, None);
                prop_assert!((0.0..=1.0).contains(&s), "{} = {s}", m.name());
                let r = m.similarity(&vb, &va, None);
                prop_assert!((s - r).abs() < 1e-9, "{} asymmetric", m.name());
            }
        }
    }

    #[test]
    fn vector_identity_is_one(a in "[a-z0-9 ]{1,24}") {
        prop_assume!(!a.trim().is_empty());
        let model = VectorModel::new(NGramScheme::Char(3));
        let v = model.vector(&a, TermWeighting::Tf, None);
        prop_assume!(!v.is_empty());
        for m in [
            VectorMeasure::CosineTf,
            VectorMeasure::Jaccard,
            VectorMeasure::GeneralizedJaccardTf,
        ] {
            let s = m.similarity(&v, &v, None);
            prop_assert!((s - 1.0).abs() < 1e-9, "{}(v,v) = {s}", m.name());
        }
    }

    #[test]
    fn sparse_vector_dot_is_commutative(
        pairs_a in proptest::collection::vec((0u64..50, 0.0f64..2.0), 0..20),
        pairs_b in proptest::collection::vec((0u64..50, 0.0f64..2.0), 0..20),
    ) {
        let a = SparseVector::from_pairs(pairs_a);
        let b = SparseVector::from_pairs(pairs_b);
        prop_assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-9);
        prop_assert!(a.common_min_sum(&b) <= a.weight_sum() + 1e-9);
        prop_assert_eq!(a.common_terms(&b), b.common_terms(&a));
    }

    #[test]
    fn graph_similarities_bounded_symmetric(a in arb_text(), b in arb_text()) {
        for scheme in [NGramScheme::Char(3), NGramScheme::Token(1)] {
            let ga = NGramGraph::from_value(&a, scheme);
            let gb = NGramGraph::from_value(&b, scheme);
            for m in GraphSimilarity::all() {
                let s = m.similarity(&ga, &gb);
                prop_assert!((0.0..=1.0).contains(&s), "{} = {s}", m.name());
                let r = m.similarity(&gb, &ga);
                prop_assert!((s - r).abs() < 1e-9, "{} asymmetric", m.name());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Candidate-index filter kernels. These are the contracts the er-pipeline
// generators (`candidates` module) rely on for completeness: every skip
// decision an index takes is one the exact scorer would also have taken.
// ---------------------------------------------------------------------------

fn distinct_terms(v: &SparseVector) -> impl Iterator<Item = u64> + '_ {
    v.terms().iter().map(|&(t, _)| t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Prefix filter: for any candidate, the suffix bound at its *first*
    /// plan step touching a shared term dominates the true similarity.
    /// A generator that stops probing once the suffix bound falls
    /// strictly below an admission bound therefore never drops a pair
    /// whose similarity meets the bound — not-yet-discovered candidates
    /// share terms only among the remaining steps.
    #[test]
    fn probe_plan_suffix_bounds_never_drop_candidates(
        probe in arb_text(),
        cands in proptest::collection::vec(arb_text(), 1..5),
    ) {
        for scheme in [NGramScheme::Token(1), NGramScheme::Char(3)] {
            let model = VectorModel::new(scheme);
            // Mirror the scorer's DF setup: per-side indexes feed the plan
            // (and ARCS), the union index feeds TF-IDF weighting.
            let raw_probe = model.vector(&probe, TermWeighting::Tf, None);
            let raw_cands: Vec<SparseVector> = cands
                .iter()
                .map(|c| model.vector(c, TermWeighting::Tf, None))
                .collect();
            let mut df_left = DfIndex::new();
            let mut df_right = DfIndex::new();
            let mut df_union = DfIndex::new();
            df_left.add_document(distinct_terms(&raw_probe));
            df_union.add_document(distinct_terms(&raw_probe));
            for v in &raw_cands {
                df_right.add_document(distinct_terms(v));
                df_union.add_document(distinct_terms(v));
            }
            for m in VectorMeasure::all() {
                let va = model.vector(&probe, m.weighting(), Some(&df_union));
                if va.is_empty() {
                    continue; // the scorer skips zero-vector rows entirely
                }
                let plan = m.probe_plan(&va, Some((&df_left, &df_right)));
                prop_assert_eq!(plan.len(), va.terms().len());
                for i in 0..plan.len() {
                    prop_assert!(
                        plan.suffix_bound(i) >= plan.suffix_bound(i + 1),
                        "{}: suffix bounds not monotone at {i}",
                        m.name()
                    );
                }
                for text in &cands {
                    let vb = model.vector(text, m.weighting(), Some(&df_union));
                    if vb.is_empty() {
                        continue;
                    }
                    let sim = m.similarity(&va, &vb, Some((&df_left, &df_right)));
                    let first = (0..plan.len()).find(|&i| {
                        let (t, _) = va.terms()[plan.term_position(i)];
                        vb.terms().iter().any(|&(tb, _)| tb == t)
                    });
                    let step = first.unwrap_or(plan.len());
                    let bound = plan.suffix_bound(step);
                    prop_assert!(
                        sim <= bound,
                        "{}: sim {sim} > suffix bound {bound} at step {step} \
                         for {probe:?} vs {text:?}",
                        m.name()
                    );
                }
            }
        }
    }

    /// Length-bucket index: traversal covers every entry exactly once in
    /// ascending length-gap order, the counting probe reproduces the
    /// two-pointer multiset intersection bit-exactly, and the length and
    /// bag bounds derived from bucket metadata dominate the true
    /// similarity — so bucket- and member-level skips never drop an
    /// admissible pair.
    #[test]
    fn length_bucket_kernels_never_drop_admissible_pairs(
        values in proptest::collection::vec(arb_unicode(12), 0..8),
        probe in arb_unicode(12),
    ) {
        let t = CharTable::build(values.iter().map(|s| s.as_str()));
        let index = LengthBucketIndex::build((0..t.len()).map(|i| t.bag(i)));
        let pt = CharTable::build([probe.as_str()]);
        let (probe_bag, probe_len) = (pt.bag(0), pt.char_len(0));

        // Traversal order is a permutation of the buckets, sorted by gap.
        let mut order = Vec::new();
        index.bucket_order_closest_first(probe_len, &mut order);
        prop_assert_eq!(order.len(), index.n_buckets());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert!(sorted.iter().enumerate().all(|(i, &b)| b as usize == i));
        let gaps: Vec<usize> = order
            .iter()
            .map(|&b| index.bucket_char_len(b as usize).abs_diff(probe_len))
            .collect();
        prop_assert!(gaps.windows(2).all(|w| w[0] <= w[1]), "gaps {gaps:?}");

        let mut counts = Vec::new();
        let mut seen = vec![false; t.len()];
        for b in 0..index.n_buckets() {
            let bucket_len = index.bucket_char_len(b);
            index.count_common_into(b, probe_bag, &mut counts);
            for (pos, &slot) in index.bucket_members(b).iter().enumerate() {
                let slot = slot as usize;
                prop_assert!(!seen[slot], "slot {slot} indexed twice");
                seen[slot] = true;
                prop_assert_eq!(t.char_len(slot), bucket_len);
                let common = counts[pos] as usize;
                prop_assert_eq!(common, sorted_common_count(probe_bag, t.bag(slot)));
                for m in CharMeasure::all() {
                    let sim = m.similarity(&probe, &values[slot]);
                    let len_ub = m.length_upper_bound(probe_len, bucket_len);
                    prop_assert!(
                        sim <= len_ub,
                        "{}: bucket length bound {len_ub} < sim {sim}",
                        m.name()
                    );
                    let from_common =
                        m.bag_upper_bound_from_common(common, probe_len, bucket_len);
                    prop_assert_eq!(from_common.is_some(), m.has_bag_bound());
                    if let Some(ub) = from_common {
                        let per_pair = m
                            .bag_upper_bound(probe_bag, t.bag(slot))
                            .expect("bag bound availability must agree");
                        prop_assert_eq!(
                            ub.to_bits(),
                            per_pair.to_bits(),
                            "{}: probed bag bound diverges from per-pair bound",
                            m.name()
                        );
                        prop_assert!(
                            sim <= ub,
                            "{}: probed bag bound {ub} < sim {sim}",
                            m.name()
                        );
                    }
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "every entry indexed exactly once");
    }
}

// ---------------------------------------------------------------------------
// Kernel-state isolation: the lane engine interleaves multi-text Myers
// batches with scalar kernel calls on the same worker thread (one
// CharScratch + one MyersBatch per worker). Nothing the batch does may
// disturb the scratch's prepared pattern or band state, and nothing the
// scalar kernels do may disturb the batch's prepared masks — a shared
// buffer would make interleaved results depend on call order.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Regression: interleaved batch and scalar calls on one thread do
    /// not corrupt each other's state. A `CharScratch` pattern prepared
    /// before a `MyersBatch` runs (with a *different* pattern) must
    /// return the same distances after the batch as before it, through
    /// every scalar kernel that shares the scratch — and the batch must
    /// return the same distances after the scalar calls as a fresh
    /// batch would.
    #[test]
    fn interleaved_batch_and_scalar_calls_do_not_corrupt_scratch(
        scalar_pattern in arb_unicode(80),
        batch_pattern in arb_unicode(80),
        texts in proptest::collection::vec(arb_unicode(80), 1..=8),
    ) {
        let sp = codes(&scalar_pattern);
        let bp = codes(&batch_pattern);
        let text_codes: Vec<Vec<u32>> = texts.iter().map(|t| codes(t)).collect();
        let refs: Vec<&[u32]> = text_codes.iter().map(Vec::as_slice).collect();

        // Reference results from isolated state.
        let mut fresh = MyersPattern::new();
        fresh.prepare(&sp);
        let scalar_ref: Vec<usize> = text_codes.iter().map(|t| fresh.distance(t)).collect();
        let mut fresh_batch = MyersBatch::new();
        fresh_batch.prepare(&bp);
        let mut batch_ref = [0usize; 8];
        fresh_batch.distances(&refs, &mut batch_ref);

        // Interleave on shared per-worker state.
        let mut scratch = CharScratch::new();
        let mut batch = MyersBatch::new();
        scratch.set_pattern(&sp);
        batch.prepare(&bp);
        for (i, t) in text_codes.iter().enumerate() {
            // Scalar kernels between batch steps: the banded kernels
            // and the non-Levenshtein measures all share the scratch.
            prop_assert_eq!(scratch.pattern_distance(t), scalar_ref[i]);
            let mut got = [0usize; 8];
            batch.distances(&refs, &mut got);
            prop_assert_eq!(&got[..refs.len()], &batch_ref[..refs.len()]);
            scratch.levenshtein_bounded(&sp, t, 2);
            scratch.osa_bounded(&sp, t, 2);
            CharMeasure::Jaro.similarity_codes(&sp, t, &mut scratch);
            CharMeasure::QGrams.similarity_codes(&sp, t, &mut scratch);
            CharMeasure::DamerauLevenshtein.similarity_codes(&sp, t, &mut scratch);
            // The scratch pattern survives everything above.
            prop_assert_eq!(scratch.pattern_distance(t), scalar_ref[i]);
            let mut again = [0usize; 8];
            batch.distances(&refs, &mut again);
            prop_assert_eq!(&again[..refs.len()], &batch_ref[..refs.len()]);
        }
    }
}
