//! Relaxed Word Mover's Distance.
//!
//! Exact WMD is an optimal-transport problem; the standard *relaxed* lower
//! bound (Kusner et al.) drops one marginal constraint per direction and
//! takes the max: each token moves all its mass to its nearest counterpart.
//! This is the usual practical surrogate and preserves the ranking
//! behaviour the paper's Word Mover's *similarity* (`1/(1+WMD)`) relies on.

use crate::dense::DenseVector;

/// Relaxed WMD between two uniform-weight token-vector bags:
/// `max(Σᵢ minⱼ d(aᵢ, bⱼ)/|a|, Σⱼ minᵢ d(bⱼ, aᵢ)/|b|)`.
///
/// Conventions: both bags empty → 0 (identical); one empty → `f64::INFINITY`
/// is avoided by returning the norm-scale constant 1.0 per missing side —
/// callers convert to similarity via `1/(1+d)`, so an empty-vs-nonempty pair
/// scores 0.5 at most through the explicit guard below, and the pipeline
/// filters empty texts beforehand.
pub fn relaxed_wmd(a: &[DenseVector], b: &[DenseVector]) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return f64::MAX,
        (false, false) => {}
    }
    let dir = |xs: &[DenseVector], ys: &[DenseVector]| -> f64 {
        xs.iter()
            .map(|x| {
                ys.iter()
                    .map(|y| x.euclidean_distance(y))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            / xs.len() as f64
    };
    dir(a, b).max(dir(b, a))
}

/// Word Mover's similarity: `1 / (1 + RWMD)`; 0 when one side is empty.
pub fn word_movers_similarity(a: &[DenseVector], b: &[DenseVector]) -> f64 {
    let d = relaxed_wmd(a, b);
    if d == f64::MAX {
        0.0
    } else {
        1.0 / (1.0 + d)
    }
}

/// Safety margin of [`BagSummary::wms_upper_bound`], applied **in the
/// scale of the distances themselves** (`margin · (d + r_a + r_b)`),
/// not of their difference: the rounding error of each computed
/// distance is relative to its own magnitude (f64 accumulations over
/// f32 components, ≲ 10⁻¹³ at the 768 dimensions of the largest
/// encoder), so when `d − r_a − r_b` suffers catastrophic cancellation
/// a margin relative to the *difference* could be smaller than the
/// error it must absorb. Scaling by the operand magnitudes keeps the
/// margin four orders above the worst accumulated rounding while
/// costing nothing measurable in pruning power.
const CENTROID_BOUND_MARGIN: f64 = 1e-9;

/// One token bag's transport-bound summary: its centroid and the
/// largest token-to-centroid distance (radius).
///
/// By the triangle inequality, for any token `x` of the other bag
/// `min_j ‖x − bⱼ‖ ≥ ‖c_a − c_b‖ − r_a − r_b`, so the relaxed WMD of two
/// bags is at least the centroid distance minus both radii — a bound
/// that costs one vector distance per *pair* instead of `|a|·|b|`, after
/// an `O(|bag|·dim)` prepare per bag.
///
/// ```
/// use er_embed::{BagSummary, word_movers_similarity, EmbeddingModel};
///
/// let enc = EmbeddingModel::FastText.encoder();
/// let a = enc.token_vectors("canon powershot camera");
/// let b = enc.token_vectors("sigmod conference proceedings");
/// let (sa, sb) = (BagSummary::of(&a).unwrap(), BagSummary::of(&b).unwrap());
/// assert!(word_movers_similarity(&a, &b) <= sa.wms_upper_bound(&sb));
/// assert!(BagSummary::of(&[]).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct BagSummary {
    centroid: DenseVector,
    radius: f64,
}

impl BagSummary {
    /// Summarize a non-empty token bag (`None` for an empty one).
    pub fn of(bag: &[DenseVector]) -> Option<BagSummary> {
        Self::from_vectors(bag.len(), bag.iter())
    }

    /// [`BagSummary::of`] over any re-iterable view of `n` vectors —
    /// the shape interned token tables provide (ids resolved through a
    /// shared vector slab).
    pub fn from_vectors<'a>(
        n: usize,
        vectors: impl Iterator<Item = &'a DenseVector> + Clone,
    ) -> Option<BagSummary> {
        if n == 0 {
            return None;
        }
        let mut centroid = {
            let mut it = vectors.clone();
            let first = it.next().expect("n > 0");
            let mut c = first.clone();
            for v in it {
                c.add_assign(v);
            }
            c.scale(1.0 / n as f32);
            c
        };
        let radius = vectors
            .map(|v| v.euclidean_distance(&centroid))
            .fold(0.0f64, f64::max);
        centroid.0.shrink_to_fit();
        Some(BagSummary { centroid, radius })
    }

    /// The bag's centroid vector.
    #[inline]
    pub fn centroid(&self) -> &DenseVector {
        &self.centroid
    }

    /// The largest token-to-centroid distance of the bag.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Upper bound on the Word Mover's **similarity** of the two
    /// summarized bags: `1 / (1 + max(0, ‖c_a − c_b‖ − r_a − r_b))`,
    /// slackened by a margin in the scale of the distances (see
    /// `CENTROID_BOUND_MARGIN`) so float rounding — including
    /// catastrophic cancellation when the difference is tiny — can
    /// never push the bound below the actually computed similarity
    /// (property-checked in the construction-engine suite — a top-k
    /// scorer prunes only when this bound is strictly below its
    /// admission weight, keeping results bit-identical).
    pub fn wms_upper_bound(&self, other: &BagSummary) -> f64 {
        let d = self.centroid.euclidean_distance(&other.centroid);
        let slack = CENTROID_BOUND_MARGIN * (d + self.radius + other.radius);
        let lb = d - self.radius - other.radius - slack;
        if lb <= 0.0 {
            return 1.0;
        }
        1.0 / (1.0 + lb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasttext::FastTextLike;

    #[test]
    fn identical_bags_have_zero_distance() {
        let ft = FastTextLike::new(64, 0.0);
        let a = ft.token_vectors("apple iphone pro");
        assert_eq!(relaxed_wmd(&a, &a), 0.0);
        assert_eq!(word_movers_similarity(&a, &a), 1.0);
    }

    #[test]
    fn permutations_have_zero_distance() {
        // WMD is transport-based: word order is irrelevant.
        let ft = FastTextLike::new(64, 0.0);
        let a = ft.token_vectors("apple iphone pro");
        let b = ft.token_vectors("pro apple iphone");
        assert!(relaxed_wmd(&a, &b) < 1e-9);
    }

    #[test]
    fn related_bags_closer_than_unrelated() {
        let ft = FastTextLike::new(128, 0.0);
        let a = ft.token_vectors("canon powershot camera");
        let b = ft.token_vectors("canon powershot digital camera");
        let c = ft.token_vectors("sigmod conference proceedings");
        assert!(
            word_movers_similarity(&a, &b) > word_movers_similarity(&a, &c),
            "shared tokens must raise WM similarity"
        );
    }

    #[test]
    fn symmetry_of_relaxed_bound() {
        let ft = FastTextLike::new(64, 0.0);
        let a = ft.token_vectors("alpha beta");
        let b = ft.token_vectors("beta gamma delta");
        assert!((relaxed_wmd(&a, &b) - relaxed_wmd(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn centroid_bound_dominates_similarity() {
        // The bound must never fall below the actual similarity — on
        // related bags (bound ≈ 1, useless but safe) and on far-apart
        // bags (bound < 1, the pruning case).
        let ft = FastTextLike::new(128, 0.0);
        let texts = [
            "canon powershot camera",
            "canon powershot digital camera black",
            "sigmod conference proceedings",
            "x",
            "alpha beta gamma delta epsilon",
        ];
        let bags: Vec<Vec<DenseVector>> = texts.iter().map(|t| ft.token_vectors(t)).collect();
        let sums: Vec<BagSummary> = bags.iter().map(|b| BagSummary::of(b).unwrap()).collect();
        let mut saw_effective_bound = false;
        for (i, a) in bags.iter().enumerate() {
            for (j, b) in bags.iter().enumerate() {
                let sim = word_movers_similarity(a, b);
                let ub = sums[i].wms_upper_bound(&sums[j]);
                assert!(sim <= ub, "bags {i},{j}: sim {sim} > bound {ub}");
                if ub < 1.0 {
                    saw_effective_bound = true;
                }
            }
        }
        assert!(saw_effective_bound, "no pair produced a non-trivial bound");
    }

    #[test]
    fn bag_summary_from_vectors_matches_of() {
        let ft = FastTextLike::new(64, 0.0);
        let bag = ft.token_vectors("alpha beta gamma");
        let direct = BagSummary::of(&bag).unwrap();
        let via_iter = BagSummary::from_vectors(bag.len(), bag.iter()).unwrap();
        let probe = ft.token_vectors("delta")[0].clone();
        let probe_sum = BagSummary::of(std::slice::from_ref(&probe)).unwrap();
        assert_eq!(
            direct.wms_upper_bound(&probe_sum),
            via_iter.wms_upper_bound(&probe_sum)
        );
    }

    #[test]
    fn empty_bag_conventions() {
        let ft = FastTextLike::new(64, 0.0);
        let a = ft.token_vectors("something");
        let empty: Vec<_> = ft.token_vectors("");
        assert_eq!(relaxed_wmd(&empty, &empty), 0.0);
        assert_eq!(word_movers_similarity(&a, &empty), 0.0);
        assert_eq!(word_movers_similarity(&empty, &empty), 1.0);
    }
}
