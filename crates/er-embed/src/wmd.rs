//! Relaxed Word Mover's Distance.
//!
//! Exact WMD is an optimal-transport problem; the standard *relaxed* lower
//! bound (Kusner et al.) drops one marginal constraint per direction and
//! takes the max: each token moves all its mass to its nearest counterpart.
//! This is the usual practical surrogate and preserves the ranking
//! behaviour the paper's Word Mover's *similarity* (`1/(1+WMD)`) relies on.

use crate::dense::DenseVector;

/// Relaxed WMD between two uniform-weight token-vector bags:
/// `max(Σᵢ minⱼ d(aᵢ, bⱼ)/|a|, Σⱼ minᵢ d(bⱼ, aᵢ)/|b|)`.
///
/// Conventions: both bags empty → 0 (identical); one empty → `f64::INFINITY`
/// is avoided by returning the norm-scale constant 1.0 per missing side —
/// callers convert to similarity via `1/(1+d)`, so an empty-vs-nonempty pair
/// scores 0.5 at most through the explicit guard below, and the pipeline
/// filters empty texts beforehand.
pub fn relaxed_wmd(a: &[DenseVector], b: &[DenseVector]) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return f64::MAX,
        (false, false) => {}
    }
    let dir = |xs: &[DenseVector], ys: &[DenseVector]| -> f64 {
        xs.iter()
            .map(|x| {
                ys.iter()
                    .map(|y| x.euclidean_distance(y))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            / xs.len() as f64
    };
    dir(a, b).max(dir(b, a))
}

/// Word Mover's similarity: `1 / (1 + RWMD)`; 0 when one side is empty.
pub fn word_movers_similarity(a: &[DenseVector], b: &[DenseVector]) -> f64 {
    let d = relaxed_wmd(a, b);
    if d == f64::MAX {
        0.0
    } else {
        1.0 / (1.0 + d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasttext::FastTextLike;

    #[test]
    fn identical_bags_have_zero_distance() {
        let ft = FastTextLike::new(64, 0.0);
        let a = ft.token_vectors("apple iphone pro");
        assert_eq!(relaxed_wmd(&a, &a), 0.0);
        assert_eq!(word_movers_similarity(&a, &a), 1.0);
    }

    #[test]
    fn permutations_have_zero_distance() {
        // WMD is transport-based: word order is irrelevant.
        let ft = FastTextLike::new(64, 0.0);
        let a = ft.token_vectors("apple iphone pro");
        let b = ft.token_vectors("pro apple iphone");
        assert!(relaxed_wmd(&a, &b) < 1e-9);
    }

    #[test]
    fn related_bags_closer_than_unrelated() {
        let ft = FastTextLike::new(128, 0.0);
        let a = ft.token_vectors("canon powershot camera");
        let b = ft.token_vectors("canon powershot digital camera");
        let c = ft.token_vectors("sigmod conference proceedings");
        assert!(
            word_movers_similarity(&a, &b) > word_movers_similarity(&a, &c),
            "shared tokens must raise WM similarity"
        );
    }

    #[test]
    fn symmetry_of_relaxed_bound() {
        let ft = FastTextLike::new(64, 0.0);
        let a = ft.token_vectors("alpha beta");
        let b = ft.token_vectors("beta gamma delta");
        assert!((relaxed_wmd(&a, &b) - relaxed_wmd(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn empty_bag_conventions() {
        let ft = FastTextLike::new(64, 0.0);
        let a = ft.token_vectors("something");
        let empty: Vec<_> = ft.token_vectors("");
        assert_eq!(relaxed_wmd(&empty, &empty), 0.0);
        assert_eq!(word_movers_similarity(&a, &empty), 0.0);
        assert_eq!(word_movers_similarity(&empty, &empty), 1.0);
    }
}
