//! Deterministic pseudo-random vectors from hashed seeds.
//!
//! Each string (n-gram, token, context signature) deterministically maps to
//! a fixed unit vector whose components come from a splitmix64 stream —
//! the "hash kernel" that replaces learned embedding tables.

use er_core::hash::seeded_hash64;

use crate::dense::DenseVector;

/// Generate the unit pseudo-embedding of `key` in `dim` dimensions under a
/// model-specific `seed`.
pub fn pseudo_unit_vector(key: &str, dim: usize, seed: u64) -> DenseVector {
    let mut state = seeded_hash64(key.as_bytes(), seed);
    let mut v = Vec::with_capacity(dim);
    for _ in 0..dim {
        state = splitmix64(state);
        // Map the top 24 bits to a uniform value in [-1, 1).
        let u = (state >> 40) as f32 / (1u64 << 23) as f32 - 1.0;
        v.push(u);
    }
    let mut dv = DenseVector(v);
    dv.normalize();
    dv
}

/// The shared anisotropy direction of a model: every encoded text blends a
/// fraction of this vector, concentrating all embeddings in a cone.
pub fn anisotropy_direction(dim: usize, seed: u64) -> DenseVector {
    pseudo_unit_vector("\u{0}__anisotropy__", dim, seed)
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectors_are_deterministic_unit_length() {
        let a = pseudo_unit_vector("token", 64, 1);
        let b = pseudo_unit_vector("token", 64, 1);
        assert_eq!(a, b);
        assert!((a.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn different_keys_or_seeds_decorrelate() {
        let a = pseudo_unit_vector("token", 256, 1);
        let b = pseudo_unit_vector("other", 256, 1);
        let c = pseudo_unit_vector("token", 256, 2);
        // Random unit vectors in 256-d are nearly orthogonal.
        assert!(a.dot(&b).abs() < 0.25);
        assert!(a.dot(&c).abs() < 0.25);
    }

    #[test]
    fn components_are_centered() {
        let v = pseudo_unit_vector("statistics", 512, 7);
        let mean: f32 = v.0.iter().sum::<f32>() / v.0.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean} should be near zero");
    }
}
