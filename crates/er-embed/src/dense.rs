//! Dense embedding vectors and their geometry.

/// A dense `f32` embedding vector.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseVector(pub Vec<f32>);

impl DenseVector {
    /// The zero vector of a given dimension.
    pub fn zeros(dim: usize) -> Self {
        DenseVector(vec![0.0; dim])
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Whether all components are zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&x| x == 0.0)
    }

    /// Dot product; panics on dimension mismatch.
    pub fn dot(&self, other: &DenseVector) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.0
            .iter()
            .zip(&other.0)
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Euclidean distance to another vector.
    pub fn euclidean_distance(&self, other: &DenseVector) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.0
            .iter()
            .zip(&other.0)
            .map(|(&a, &b)| {
                let d = a as f64 - b as f64;
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Cosine similarity, clamped to `[0, 1]` (negative cosines are treated
    /// as dissimilarity 0, matching the similarity-graph weight contract).
    pub fn cosine(&self, other: &DenseVector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(0.0, 1.0)
    }

    /// Add another vector in place.
    pub fn add_assign(&mut self, other: &DenseVector) {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        for (a, &b) in self.0.iter_mut().zip(&other.0) {
            *a += b;
        }
    }

    /// Add `scale * other` in place.
    pub fn add_scaled(&mut self, other: &DenseVector, scale: f32) {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        for (a, &b) in self.0.iter_mut().zip(&other.0) {
            *a += scale * b;
        }
    }

    /// Scale in place.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.0 {
            *a *= s;
        }
    }

    /// Normalize to unit length in place (no-op for the zero vector).
    pub fn normalize(&mut self) {
        let n = self.norm() as f32;
        if n > 0.0 {
            self.scale(1.0 / n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_basics() {
        let a = DenseVector(vec![3.0, 4.0]);
        let b = DenseVector(vec![4.0, 3.0]);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.dot(&b), 24.0);
        assert!((a.cosine(&b) - 24.0 / 25.0).abs() < 1e-9);
        assert!((a.euclidean_distance(&b) - 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn cosine_clamps_negatives_and_zero() {
        let a = DenseVector(vec![1.0, 0.0]);
        let b = DenseVector(vec![-1.0, 0.0]);
        assert_eq!(a.cosine(&b), 0.0);
        let z = DenseVector::zeros(2);
        assert_eq!(a.cosine(&z), 0.0);
        assert!(z.is_zero());
    }

    #[test]
    fn mutation_ops() {
        let mut a = DenseVector(vec![1.0, 2.0]);
        a.add_assign(&DenseVector(vec![1.0, 1.0]));
        assert_eq!(a.0, vec![2.0, 3.0]);
        a.add_scaled(&DenseVector(vec![2.0, 2.0]), 0.5);
        assert_eq!(a.0, vec![3.0, 4.0]);
        a.normalize();
        assert!((a.norm() - 1.0).abs() < 1e-6);
        let mut z = DenseVector::zeros(3);
        z.normalize(); // must not NaN
        assert!(z.is_zero());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let _ = DenseVector(vec![1.0]).dot(&DenseVector(vec![1.0, 2.0]));
    }
}
