//! Centroid-ball candidate index for the semantic measures.
//!
//! The PR 5 engine *checks* the [`BagSummary`](crate::BagSummary) centroid
//! bound per enumerated pair; this index **inverts** it. Right-side entries
//! — each a point (a dense entity vector, or a token bag's centroid) with a
//! non-negative self-radius (0 for plain vectors, the bag radius for WMD
//! summaries) — are greedily clustered into *balls* around leader points.
//! Each ball records its `reach`: the largest `d(leader, point) + radius`
//! over its members. By the triangle inequality, for a probe `(q, r_q)` and
//! any member `(p, r_p)` of ball `b`,
//!
//! ```text
//! d(q, p) − r_q − r_p  ≥  d(q, leader_b) − r_q − reach_b
//! ```
//!
//! so one leader distance lower-bounds the *pair-level* distance bound of
//! every member at once. A candidate generator visits balls in ascending
//! lower-bound order, maps each bound through the measure's monotone
//! distance→similarity mapping ([`inverse_distance_bound`] for `1/(1+d)`
//! measures, [`cosine_distance_bound`] for cosine over unit vectors), and
//! stops as soon as the mapped bound falls strictly below a top-k admission
//! bound: all unvisited balls have equal-or-larger distance bounds, hence
//! equal-or-smaller similarity bounds, hence no admissible members.
//!
//! Entries that the mapping's premise does not cover (e.g. a vector that
//! cannot be normalized for the cosine mapping) are indexed with radius
//! `f64::INFINITY`, which drives their ball's lower bound to 0 and the
//! similarity bound to its maximum — they are generated for every probe,
//! never pruned.

use crate::dense::DenseVector;

/// Safety margin of [`VectorBallIndex::distance_lower_bounds`], applied in
/// the scale of the distances themselves (`margin · (d + r_q + reach)`) for
/// the same reason as the per-pair centroid bound margin in
/// [`wmd`](crate::wmd): each computed distance carries rounding error
/// relative to its own magnitude, and a margin relative to the subtracted
/// difference could vanish under catastrophic cancellation.
const BALL_BOUND_MARGIN: f64 = 1e-9;

/// Additive slack of [`cosine_distance_bound`] absorbing the gap between
/// the exact unit-sphere identity `cos = 1 − d²/2` and cosines computed
/// from f32-stored, approximately-normalized vectors. Normalizing a dense
/// vector leaves its norm within ~`√dim · 2⁻²⁴ ≈ 1.6·10⁻⁶` of 1 at our
/// largest dimension (768), perturbing the cosine by the same order;
/// `10⁻⁴` leaves two orders of magnitude of headroom while costing no
/// measurable pruning power.
pub const COSINE_NORMALIZATION_MARGIN: f64 = 1e-4;

/// One greedy ball: its leader point, members, and reach.
#[derive(Debug)]
struct Ball {
    leader: DenseVector,
    /// `max over members of d(leader, point) + radius`.
    reach: f64,
    /// Caller-side slot ids, in insertion order.
    members: Vec<u32>,
}

/// A greedy leader-clustering ball index over dense points with
/// self-radii — the generation-side form of the semantic measures'
/// centroid/triangle-inequality bounds.
///
/// Ball count is capped at `⌈2·√n⌉` so the build costs `O(n·√n·dim)` and a
/// probe costs `O(√n·dim)` leader distances instead of `n` pair distances.
///
/// ```
/// use er_embed::{inverse_distance_bound, DenseVector, VectorBallIndex};
///
/// let points = [
///     DenseVector(vec![0.0, 0.0]),
///     DenseVector(vec![0.1, 0.0]),
///     DenseVector(vec![5.0, 5.0]),
/// ];
/// let entries: Vec<(u32, &DenseVector, f64)> =
///     points.iter().enumerate().map(|(i, p)| (i as u32, p, 0.0)).collect();
/// let index = VectorBallIndex::build(&entries);
/// assert_eq!(index.n_members(), 3);
///
/// // Every member's true distance to a probe dominates its ball's bound.
/// let probe = DenseVector(vec![4.0, 4.0]);
/// let mut bounds = Vec::new();
/// index.distance_lower_bounds(&probe, 0.0, &mut bounds);
/// for &(lb, b) in &bounds {
///     for &slot in index.ball_members(b as usize) {
///         let d = probe.euclidean_distance(&points[slot as usize]);
///         assert!(d >= lb);
///         // ... and so does the mapped similarity bound.
///         assert!(1.0 / (1.0 + d) <= inverse_distance_bound(lb));
///     }
/// }
/// // Bounds come back ascending: a generator stops at the first ball whose
/// // mapped bound falls below its admission bound.
/// assert!(bounds.windows(2).all(|w| w[0].0 <= w[1].0));
/// ```
#[derive(Debug, Default)]
pub struct VectorBallIndex {
    balls: Vec<Ball>,
    n_members: usize,
}

impl VectorBallIndex {
    /// Build over `(slot, point, radius)` entries. Radii must be
    /// non-negative; `f64::INFINITY` marks an entry whose similarity the
    /// caller cannot bound (its ball is generated for every probe).
    pub fn build(entries: &[(u32, &DenseVector, f64)]) -> Self {
        if entries.is_empty() {
            return VectorBallIndex::default();
        }
        let cap = (2.0 * (entries.len() as f64).sqrt()).ceil() as usize;
        // Linkage scale: half the mean distance to the grand centroid.
        let mut grand = entries[0].1.clone();
        for &(_, p, _) in &entries[1..] {
            grand.add_assign(p);
        }
        grand.scale(1.0 / entries.len() as f32);
        let mean_spread = entries
            .iter()
            .map(|&(_, p, _)| p.euclidean_distance(&grand))
            .sum::<f64>()
            / entries.len() as f64;
        let link = mean_spread / 2.0;

        let mut balls: Vec<Ball> = Vec::new();
        for &(slot, point, radius) in entries {
            let nearest = balls
                .iter()
                .enumerate()
                .map(|(b, ball)| (point.euclidean_distance(&ball.leader), b))
                .min_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
            match nearest {
                Some((d, b)) if d <= link || balls.len() >= cap => {
                    let ball = &mut balls[b];
                    ball.members.push(slot);
                    ball.reach = ball.reach.max(d + radius);
                }
                _ => balls.push(Ball {
                    leader: point.clone(),
                    reach: radius,
                    members: vec![slot],
                }),
            }
        }
        VectorBallIndex {
            balls,
            n_members: entries.len(),
        }
    }

    /// Number of balls.
    pub fn n_balls(&self) -> usize {
        self.balls.len()
    }

    /// Number of indexed entries.
    pub fn n_members(&self) -> usize {
        self.n_members
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.n_members == 0
    }

    /// Ball `b`'s member slots, in insertion order.
    pub fn ball_members(&self, b: usize) -> &[u32] {
        &self.balls[b].members
    }

    /// Ball `b`'s reach (`max d(leader, point) + radius` over members).
    pub fn ball_reach(&self, b: usize) -> f64 {
        self.balls[b].reach
    }

    /// Write `(lower_bound, ball)` pairs sorted by ascending bound (ties:
    /// ball id) into `out`. For every member `(p, r_p)` of the ball,
    /// `lower_bound ≤ d(probe, p) − probe_radius − r_p` up to the computed
    /// distances' rounding (absorbed by a margin in the scale of the
    /// distances), and `lower_bound ≥ 0`.
    pub fn distance_lower_bounds(
        &self,
        probe: &DenseVector,
        probe_radius: f64,
        out: &mut Vec<(f64, u32)>,
    ) {
        out.clear();
        out.reserve(self.balls.len());
        for (b, ball) in self.balls.iter().enumerate() {
            let d = probe.euclidean_distance(&ball.leader);
            let slack = BALL_BOUND_MARGIN * (d + probe_radius + ball.reach);
            let lb = (d - probe_radius - ball.reach - slack).max(0.0);
            out.push((lb, b as u32));
        }
        out.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
    }
}

/// Monotone mapping of a distance lower bound to an upper bound on the
/// `1/(1+d)` similarities (Euclidean, Word Mover's).
#[inline]
pub fn inverse_distance_bound(lb: f64) -> f64 {
    if lb <= 0.0 {
        1.0
    } else {
        1.0 / (1.0 + lb)
    }
}

/// Monotone mapping of a distance lower bound between **unit** vectors to
/// an upper bound on their clamped-to-`[0, 1]` cosine: on the unit sphere
/// `cos = 1 − d²/2`, floored at 0 (the clamped cosine never goes below 0
/// even where the bound would) and slackened by
/// [`COSINE_NORMALIZATION_MARGIN`] for approximately-normalized f32
/// vectors.
#[inline]
pub fn cosine_distance_bound(lb: f64) -> f64 {
    (1.0 - lb * lb / 2.0).max(0.0) + COSINE_NORMALIZATION_MARGIN
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasttext::FastTextLike;
    use crate::wmd::{relaxed_wmd, word_movers_similarity, BagSummary};

    fn corpus() -> Vec<Vec<DenseVector>> {
        let ft = FastTextLike::new(96, 0.2);
        [
            "canon powershot camera",
            "canon powershot digital camera black",
            "sigmod conference proceedings",
            "x",
            "alpha beta gamma delta epsilon",
            "digital camera canon",
            "entity resolution survey",
        ]
        .iter()
        .map(|t| ft.token_vectors(t))
        .collect()
    }

    #[test]
    fn balls_partition_members() {
        let bags = corpus();
        let sums: Vec<BagSummary> = bags.iter().map(|b| BagSummary::of(b).unwrap()).collect();
        let entries: Vec<(u32, &DenseVector, f64)> = sums
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.centroid(), s.radius()))
            .collect();
        let index = VectorBallIndex::build(&entries);
        assert_eq!(index.n_members(), bags.len());
        let mut seen = vec![false; bags.len()];
        for b in 0..index.n_balls() {
            for &slot in index.ball_members(b) {
                assert!(!seen[slot as usize], "slot {slot} in two balls");
                seen[slot as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert!(index.n_balls() <= (2.0 * (bags.len() as f64).sqrt()).ceil() as usize);
    }

    #[test]
    fn wmd_ball_bounds_dominate_pair_similarities() {
        let bags = corpus();
        let sums: Vec<BagSummary> = bags.iter().map(|b| BagSummary::of(b).unwrap()).collect();
        let entries: Vec<(u32, &DenseVector, f64)> = sums
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.centroid(), s.radius()))
            .collect();
        let index = VectorBallIndex::build(&entries);
        let mut bounds = Vec::new();
        for (qi, q) in sums.iter().enumerate() {
            index.distance_lower_bounds(q.centroid(), q.radius(), &mut bounds);
            assert!(bounds.windows(2).all(|w| w[0].0 <= w[1].0), "unsorted");
            for &(lb, b) in &bounds {
                for &slot in index.ball_members(b as usize) {
                    let d = relaxed_wmd(&bags[qi], &bags[slot as usize]);
                    assert!(
                        d + 1e-12 >= lb,
                        "probe {qi} member {slot}: rwmd {d} < ball bound {lb}"
                    );
                    let sim = word_movers_similarity(&bags[qi], &bags[slot as usize]);
                    let ub = inverse_distance_bound(lb);
                    assert!(sim <= ub, "probe {qi} member {slot}: {sim} > {ub}");
                    // The ball bound must also be no tighter than the
                    // per-pair centroid bound the scorer itself applies.
                    let pair_ub = q.wms_upper_bound(&sums[slot as usize]);
                    assert!(pair_ub <= ub + 1e-9, "ball bound tighter than pair bound");
                }
            }
        }
    }

    #[test]
    fn cosine_ball_bounds_dominate_unit_vector_pairs() {
        let ft = FastTextLike::new(64, 0.3);
        let raw: Vec<DenseVector> = ["alpha", "alphabet", "zulu", "quebec", "alpine"]
            .iter()
            .map(|t| ft.encode(t))
            .collect();
        let unit: Vec<DenseVector> = raw
            .iter()
            .map(|v| {
                let mut u = v.clone();
                u.normalize();
                u
            })
            .collect();
        let entries: Vec<(u32, &DenseVector, f64)> = unit
            .iter()
            .enumerate()
            .map(|(i, u)| (i as u32, u, 0.0))
            .collect();
        let index = VectorBallIndex::build(&entries);
        let mut bounds = Vec::new();
        for (qi, qu) in unit.iter().enumerate() {
            index.distance_lower_bounds(qu, 0.0, &mut bounds);
            for &(lb, b) in &bounds {
                for &slot in index.ball_members(b as usize) {
                    // Scored on the *raw* vectors, as the scorer does.
                    let sim = raw[qi].cosine(&raw[slot as usize]);
                    let ub = cosine_distance_bound(lb);
                    assert!(sim <= ub, "probe {qi} member {slot}: {sim} > {ub}");
                }
            }
        }
    }

    #[test]
    fn infinite_radius_member_is_never_pruned() {
        let p0 = DenseVector(vec![0.0, 0.0]);
        let p1 = DenseVector(vec![100.0, 0.0]);
        let entries = vec![(0u32, &p0, 0.0), (1u32, &p1, f64::INFINITY)];
        let index = VectorBallIndex::build(&entries);
        let probe = DenseVector(vec![0.0, 1.0]);
        let mut bounds = Vec::new();
        index.distance_lower_bounds(&probe, 0.0, &mut bounds);
        let lb_of = |slot: u32| -> f64 {
            bounds
                .iter()
                .find(|&&(_, b)| index.ball_members(b as usize).contains(&slot))
                .unwrap()
                .0
        };
        assert_eq!(lb_of(1), 0.0, "infinite-radius entry must bound to 0");
        assert_eq!(inverse_distance_bound(lb_of(1)), 1.0);
        // An infinite probe radius likewise disables pruning everywhere.
        index.distance_lower_bounds(&probe, f64::INFINITY, &mut bounds);
        assert!(bounds.iter().all(|&(lb, _)| lb == 0.0));
    }

    #[test]
    fn empty_index_is_harmless() {
        let index = VectorBallIndex::build(&[]);
        assert!(index.is_empty());
        let mut bounds = vec![(1.0, 9u32)];
        index.distance_lower_bounds(&DenseVector(vec![1.0]), 0.0, &mut bounds);
        assert!(bounds.is_empty());
    }
}
