#![warn(missing_docs)]

//! # er-embed — deterministic semantic embedding substrate
//!
//! The paper's semantic similarity graphs use pre-trained **fastText**
//! (300-d, character-level) and **ALBERT** (768-d, transformer) models.
//! Neither is available offline, so this crate provides *hash-kernel*
//! stand-ins that preserve the properties the paper's analysis depends on
//! (see DESIGN.md §3, substitution 2):
//!
//! * [`FastTextLike`] composes a token vector by summing pseudo-random unit
//!   vectors of its character 3–6-grams — fastText's actual composition
//!   rule with hashed instead of learned n-gram tables. Misspelled or OOV
//!   tokens therefore still embed close to their neighbors.
//! * [`AlbertLike`] hashes each token *together with its neighbors*, so the
//!   same surface form in different contexts receives different vectors
//!   (the homonym property) while synonym handling is approximated by
//!   shared sub-word content.
//! * Both add a shared **anisotropy component** to every vector: real
//!   sentence encoders concentrate embeddings in a narrow cone, which is
//!   why the paper finds that "semantic similarities assign relatively
//!   high similarity scores to most pairs of entities". The blend factor
//!   reproduces that cone.
//!
//! Similarities: cosine, Euclidean (`1/(1+d)`) and Word Mover's
//! (`1/(1+RWMD)` with the standard relaxed-WMD bound) — the three semantic
//! measures of Figure 6.

pub mod albert;
pub mod ballindex;
pub mod dense;
pub mod fasttext;
pub mod hashing;
pub mod lanes;
pub mod measures;
pub mod wmd;

pub use albert::AlbertLike;
pub use ballindex::{
    cosine_distance_bound, inverse_distance_bound, VectorBallIndex, COSINE_NORMALIZATION_MARGIN,
};
pub use dense::DenseVector;
pub use fasttext::FastTextLike;
pub use measures::{EmbeddingModel, SemanticMeasure};
pub use wmd::{relaxed_wmd, word_movers_similarity, BagSummary};

#[cfg(test)]
mod sync_tests {
    //! `er-pipeline`'s parallel construction engine shares encoders,
    //! dense vectors and the interned WMD token table immutably across
    //! scoped worker threads. Pin the `Send + Sync` contract at compile
    //! time so an accidental interior-mutability addition fails here, not
    //! in a downstream crate.
    use super::*;
    use crate::measures::Encoder;

    fn assert_shared_read_side<T: Send + Sync>() {}

    #[test]
    fn read_side_structures_are_send_sync() {
        assert_shared_read_side::<Encoder>();
        assert_shared_read_side::<FastTextLike>();
        assert_shared_read_side::<AlbertLike>();
        assert_shared_read_side::<DenseVector>();
        assert_shared_read_side::<EmbeddingModel>();
        assert_shared_read_side::<SemanticMeasure>();
    }
}
