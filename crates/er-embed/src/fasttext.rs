//! FastText-like encoder: sub-word composition with hashed n-gram vectors.
//!
//! fastText "vectorizes a token by summing the embeddings of all its
//! character n-grams" (paper §4, citing Bojanowski et al.). We keep exactly
//! that composition — boundary-marked character 3–6-grams plus the whole
//! word — but draw the n-gram vectors from a deterministic hash kernel.
//! The defining behaviours survive: no out-of-vocabulary failures, and
//! typo'd tokens stay close to their originals because they share most
//! sub-word units.

use er_core::FxHashMap;
use er_textsim::normalize_text;

use crate::dense::DenseVector;
use crate::hashing::{anisotropy_direction, pseudo_unit_vector};

const FASTTEXT_SEED: u64 = 0xfa57_7e87;

/// The paper's fastText dimensionality.
pub const FASTTEXT_DIM: usize = 300;

/// A fastText-like text encoder.
#[derive(Debug, Clone)]
pub struct FastTextLike {
    dim: usize,
    /// Blend factor of the shared anisotropy direction in `[0, 1)`:
    /// higher values push all pairwise similarities up, mimicking the
    /// embedding cone of real pre-trained models.
    anisotropy: f32,
    common: DenseVector,
}

impl Default for FastTextLike {
    fn default() -> Self {
        Self::new(FASTTEXT_DIM, 0.55)
    }
}

impl FastTextLike {
    /// Create an encoder with explicit dimension and anisotropy blend.
    pub fn new(dim: usize, anisotropy: f32) -> Self {
        assert!((0.0..1.0).contains(&anisotropy));
        FastTextLike {
            dim,
            anisotropy,
            common: anisotropy_direction(dim, FASTTEXT_SEED),
        }
    }

    /// Dimensionality of produced vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embed one token: the normalized sum of its boundary-marked character
    /// 3–6-gram vectors plus the full-word vector.
    pub fn token_vector(&self, token: &str) -> DenseVector {
        let marked = format!("<{token}>");
        let chars: Vec<char> = marked.chars().collect();
        let mut sum = DenseVector::zeros(self.dim);
        let mut parts = 0usize;
        for n in 3..=6 {
            if chars.len() < n {
                break;
            }
            for w in chars.windows(n) {
                let gram: String = w.iter().collect();
                sum.add_assign(&pseudo_unit_vector(&gram, self.dim, FASTTEXT_SEED));
                parts += 1;
            }
        }
        // The whole word is always one of the units.
        sum.add_assign(&pseudo_unit_vector(&marked, self.dim, FASTTEXT_SEED));
        parts += 1;
        sum.scale(1.0 / parts as f32);
        sum.normalize();
        sum
    }

    /// Embed a text: mean of token vectors, blended with the anisotropy
    /// direction and re-normalized. Empty text embeds to the zero vector.
    pub fn encode(&self, text: &str) -> DenseVector {
        let normalized = normalize_text(text);
        let toks: Vec<&str> = normalized.split_whitespace().collect();
        if toks.is_empty() {
            return DenseVector::zeros(self.dim);
        }
        let mut mean = DenseVector::zeros(self.dim);
        // Cache repeated tokens within a text (common in concatenated
        // schema-agnostic profiles).
        let mut cache: FxHashMap<&str, DenseVector> = FxHashMap::default();
        for t in &toks {
            let v = cache
                .entry(t)
                .or_insert_with(|| self.token_vector(t))
                .clone();
            mean.add_assign(&v);
        }
        mean.scale(1.0 / toks.len() as f32);
        mean.normalize();
        // Blend into the cone: v ← (1-α)·v + α·common.
        let mut out = self.common.clone();
        out.scale(self.anisotropy);
        out.add_scaled(&mean, 1.0 - self.anisotropy);
        out.normalize();
        out
    }

    /// Per-token context-free vectors of a text (for Word Mover's
    /// similarity). Tokens embed *without* the anisotropy blend so the
    /// transport costs keep their contrast.
    pub fn token_vectors(&self, text: &str) -> Vec<DenseVector> {
        let normalized = normalize_text(text);
        normalized
            .split_whitespace()
            .map(|t| self.token_vector(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_unit_norm() {
        let ft = FastTextLike::default();
        let a = ft.encode("apple iphone 12 pro");
        let b = ft.encode("apple iphone 12 pro");
        assert_eq!(a, b);
        assert!((a.norm() - 1.0).abs() < 1e-5);
        assert_eq!(a.dim(), 300);
    }

    #[test]
    fn typos_stay_close_oov_robustness() {
        // The fastText property the paper selects it for: sub-word sharing
        // keeps misspellings similar.
        let ft = FastTextLike::new(300, 0.0); // raw content, no cone
        let a = ft.encode("panasonic");
        let b = ft.encode("panasonik");
        let c = ft.encode("xerox");
        assert!(
            a.cosine(&b) > a.cosine(&c) + 0.2,
            "typo {:.3} vs unrelated {:.3}",
            a.cosine(&b),
            c.cosine(&a)
        );
    }

    #[test]
    fn anisotropy_raises_all_similarities() {
        let flat = FastTextLike::new(300, 0.0);
        let cone = FastTextLike::default();
        let a_flat = flat.encode("samsung galaxy tab");
        let b_flat = flat.encode("publication database conference");
        let a_cone = cone.encode("samsung galaxy tab");
        let b_cone = cone.encode("publication database conference");
        let s_flat = a_flat.cosine(&b_flat);
        let s_cone = a_cone.cosine(&b_cone);
        assert!(
            s_cone > s_flat + 0.2,
            "cone must raise unrelated-pair similarity: {s_flat:.3} → {s_cone:.3}"
        );
        assert!(s_cone > 0.3, "paper: semantic sims are high for most pairs");
    }

    #[test]
    fn identical_texts_max_similarity() {
        let ft = FastTextLike::default();
        let a = ft.encode("dblp very large databases");
        assert!((a.cosine(&a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_text_is_zero() {
        let ft = FastTextLike::default();
        assert!(ft.encode("").is_zero());
        assert!(ft.encode("   ").is_zero());
        assert!(ft.token_vectors("").is_empty());
    }

    #[test]
    fn token_order_does_not_matter_for_mean() {
        let ft = FastTextLike::default();
        let a = ft.encode("alpha beta gamma");
        let b = ft.encode("gamma alpha beta");
        assert!(a.cosine(&b) > 0.999, "bag-of-tokens mean is order-free");
    }
}
