//! ALBERT-like encoder: context-sensitive token vectors.
//!
//! Transformer language models "vectorize an item based on its context …
//! they assign different vectors to homonyms" (paper §4). We reproduce the
//! *contextuality* property with a hash kernel: a token's vector mixes its
//! own sub-word embedding with hashed signatures of its left and right
//! neighbors, so `bank` next to `river` and `bank` next to `loan` land in
//! different places. Like its real counterpart, the encoder is more
//! aggressive about anisotropy than fastText — sentence embeddings of
//! BERT-family models famously occupy a narrow cone, which is exactly the
//! behaviour behind the paper's weak schema-agnostic semantic results.

use er_textsim::normalize_text;

use crate::dense::DenseVector;
use crate::hashing::{anisotropy_direction, pseudo_unit_vector};

const ALBERT_SEED: u64 = 0xa1be_0007;

/// The paper's ALBERT dimensionality.
pub const ALBERT_DIM: usize = 768;

/// An ALBERT-like contextual text encoder.
#[derive(Debug, Clone)]
pub struct AlbertLike {
    dim: usize,
    anisotropy: f32,
    common: DenseVector,
}

impl Default for AlbertLike {
    fn default() -> Self {
        Self::new(ALBERT_DIM, 0.65)
    }
}

impl AlbertLike {
    /// Create an encoder with explicit dimension and anisotropy blend.
    pub fn new(dim: usize, anisotropy: f32) -> Self {
        assert!((0.0..1.0).contains(&anisotropy));
        AlbertLike {
            dim,
            anisotropy,
            common: anisotropy_direction(dim, ALBERT_SEED),
        }
    }

    /// Dimensionality of produced vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Contextual vector of the token at `idx` within `tokens`:
    /// `0.6·e(token) + 0.2·e(prev⊕token) + 0.2·e(token⊕next)`, normalized.
    fn contextual_token_vector(&self, tokens: &[&str], idx: usize) -> DenseVector {
        let tok = tokens[idx];
        let mut v = pseudo_unit_vector(tok, self.dim, ALBERT_SEED);
        v.scale(0.6);
        let prev = if idx > 0 { tokens[idx - 1] } else { "[CLS]" };
        let next = if idx + 1 < tokens.len() {
            tokens[idx + 1]
        } else {
            "[SEP]"
        };
        v.add_scaled(
            &pseudo_unit_vector(&format!("{prev}\u{1}{tok}"), self.dim, ALBERT_SEED),
            0.2,
        );
        v.add_scaled(
            &pseudo_unit_vector(&format!("{tok}\u{1}{next}"), self.dim, ALBERT_SEED),
            0.2,
        );
        v.normalize();
        v
    }

    /// Embed a text: mean-pooled contextual token vectors blended into the
    /// anisotropy cone. Empty text embeds to the zero vector.
    pub fn encode(&self, text: &str) -> DenseVector {
        let normalized = normalize_text(text);
        let toks: Vec<&str> = normalized.split_whitespace().collect();
        if toks.is_empty() {
            return DenseVector::zeros(self.dim);
        }
        let mut mean = DenseVector::zeros(self.dim);
        for i in 0..toks.len() {
            mean.add_assign(&self.contextual_token_vector(&toks, i));
        }
        mean.scale(1.0 / toks.len() as f32);
        mean.normalize();
        let mut out = self.common.clone();
        out.scale(self.anisotropy);
        out.add_scaled(&mean, 1.0 - self.anisotropy);
        out.normalize();
        out
    }

    /// Contextual per-token vectors (for Word Mover's similarity), without
    /// the anisotropy blend.
    pub fn token_vectors(&self, text: &str) -> Vec<DenseVector> {
        let normalized = normalize_text(text);
        let toks: Vec<&str> = normalized.split_whitespace().collect();
        (0..toks.len())
            .map(|i| self.contextual_token_vector(&toks, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_unit_vectors() {
        let al = AlbertLike::default();
        let a = al.encode("knowledge graph completion");
        assert_eq!(a, al.encode("knowledge graph completion"));
        assert!((a.norm() - 1.0).abs() < 1e-5);
        assert_eq!(a.dim(), 768);
    }

    #[test]
    fn homonyms_in_different_contexts_differ() {
        // The paper's "bank" example: same form, different context vectors.
        let al = AlbertLike::new(768, 0.0);
        let river = al.token_vectors("river bank water");
        let money = al.token_vectors("loan bank money");
        // 'bank' is token index 1 in both.
        let cos = river[1].cosine(&money[1]);
        assert!(
            cos < 0.9,
            "contextual vectors of 'bank' should differ: cos = {cos:.3}"
        );
        // But they still share the dominant self component.
        assert!(cos > 0.2, "same surface form keeps partial similarity");
    }

    #[test]
    fn word_order_matters_unlike_bag_models() {
        let al = AlbertLike::new(768, 0.0);
        let a = al.encode("data base systems");
        let b = al.encode("systems base data");
        assert!(a.cosine(&b) < 0.999, "context encoding is order-sensitive");
    }

    #[test]
    fn anisotropy_is_stronger_than_fasttext() {
        let al = AlbertLike::default();
        let a = al.encode("walmart grill cover");
        let b = al.encode("acm transactions on databases");
        assert!(
            a.cosine(&b) > 0.4,
            "unrelated ALBERT-like texts still score {:.3} — the cone",
            a.cosine(&b)
        );
    }

    #[test]
    fn empty_text_is_zero() {
        let al = AlbertLike::default();
        assert!(al.encode("").is_zero());
        assert!(al.token_vectors(" ").is_empty());
    }
}
