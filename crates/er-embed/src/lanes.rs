//! Lane-parallel dense-vector kernels.
//!
//! The scalar geometry of [`DenseVector`] is a *serial* float chain: a
//! 300-dimension dot product is 300 dependent additions, and every
//! candidate pays the full chain latency before the next one starts.
//! One left row, however, is scored against many independent right
//! candidates — so these kernels restructure the loops to advance up to
//! [`LANE_WIDTH`] candidates per dimension step through `[f64; L]` lane
//! accumulators. The lanes are independent dependency chains, which
//! buys instruction-level parallelism on any core and gives LLVM
//! regular loops to autovectorize — no nightly `core::simd`, no
//! intrinsics.
//!
//! # Exactness contract
//!
//! Each lane performs **exactly the scalar operation sequence**: lane
//! `l`'s accumulator receives the same values, in the same order, with
//! the same rounding steps as `a.dot(&bs[l])` / `a.cosine(&bs[l])` /
//! `a.euclidean_distance(&bs[l])` would produce. Interleaving *between*
//! accumulators never reorders the operations *within* one, and
//! IEEE-754 ops are deterministic — so the batch results equal the
//! scalar results bit for bit (property-pinned in
//! `er-pipeline/tests/kernel_props.rs`). This is what lets the
//! pipeline's `KernelMode::Lanes` stay bit-identical to the scalar
//! engine all the way up to finished graph weights.

use crate::dense::DenseVector;
use crate::measures::SemanticMeasure;

/// Number of candidates one lane step advances — mirrors
/// `er_textsim::lanes::LANE_WIDTH` (eight independent `f64` chains keep
/// a 512-bit FMA pipe busy without spilling lane state to the stack).
pub const LANE_WIDTH: usize = 8;

/// Batched dot products: `out[l] = a.dot(bs[l])` for up to
/// [`LANE_WIDTH`] right-hand vectors, bit-identical to the scalar calls.
/// Panics on dimension mismatch, like [`DenseVector::dot`].
///
/// ```
/// use er_embed::lanes::dot_batch;
/// use er_embed::DenseVector;
///
/// let a = DenseVector(vec![1.0, 2.0]);
/// let bs = [DenseVector(vec![3.0, 4.0]), DenseVector(vec![-1.0, 0.5])];
/// let refs: Vec<&DenseVector> = bs.iter().collect();
/// let mut out = [0.0f64; 2];
/// dot_batch(&a, &refs, &mut out);
/// assert_eq!(out[0].to_bits(), a.dot(&bs[0]).to_bits());
/// assert_eq!(out[1].to_bits(), a.dot(&bs[1]).to_bits());
/// ```
pub fn dot_batch(a: &DenseVector, bs: &[&DenseVector], out: &mut [f64]) {
    let n = bs.len();
    assert!(n <= LANE_WIDTH, "at most {LANE_WIDTH} vectors per batch");
    assert!(out.len() >= n, "output slice too short");
    for b in bs {
        assert_eq!(a.dim(), b.dim(), "dimension mismatch");
    }
    let mut acc = [0.0f64; LANE_WIDTH];
    for (i, &av) in a.0.iter().enumerate() {
        let av = av as f64;
        for l in 0..n {
            acc[l] += av * bs[l].0[i] as f64;
        }
    }
    out[..n].copy_from_slice(&acc[..n]);
}

/// Batched cosine similarities: `out[l] = a.cosine(bs[l])`, bit for
/// bit. `a`'s norm is computed once — the scalar call recomputes it per
/// pair, but the recomputation is deterministic, so one shared value is
/// the same bits.
pub fn cosine_batch(a: &DenseVector, bs: &[&DenseVector], out: &mut [f64]) {
    let n = bs.len();
    assert!(n <= LANE_WIDTH, "at most {LANE_WIDTH} vectors per batch");
    assert!(out.len() >= n, "output slice too short");
    for b in bs {
        assert_eq!(a.dim(), b.dim(), "dimension mismatch");
    }
    let norm_a = a.norm();
    let mut dot = [0.0f64; LANE_WIDTH];
    let mut sq = [0.0f64; LANE_WIDTH];
    for (i, &av) in a.0.iter().enumerate() {
        let av = av as f64;
        for l in 0..n {
            let bv = bs[l].0[i] as f64;
            dot[l] += av * bv;
            sq[l] += bv * bv;
        }
    }
    for l in 0..n {
        let denom = norm_a * sq[l].sqrt();
        out[l] = if denom == 0.0 {
            0.0
        } else {
            (dot[l] / denom).clamp(0.0, 1.0)
        };
    }
}

/// Batched Euclidean distances: `out[l] = a.euclidean_distance(bs[l])`,
/// bit for bit (the squared-difference sum per lane runs in the scalar
/// dimension order; `sqrt` is correctly rounded).
pub fn euclidean_distance_batch(a: &DenseVector, bs: &[&DenseVector], out: &mut [f64]) {
    let n = bs.len();
    assert!(n <= LANE_WIDTH, "at most {LANE_WIDTH} vectors per batch");
    assert!(out.len() >= n, "output slice too short");
    for b in bs {
        assert_eq!(a.dim(), b.dim(), "dimension mismatch");
    }
    let mut acc = [0.0f64; LANE_WIDTH];
    for (i, &av) in a.0.iter().enumerate() {
        let av = av as f64;
        for l in 0..n {
            let d = av - bs[l].0[i] as f64;
            acc[l] += d * d;
        }
    }
    for l in 0..n {
        out[l] = acc[l].sqrt();
    }
}

/// Batched [`SemanticMeasure::similarity_vectors`] for the dense
/// measures (cosine, Euclidean `1/(1+d)`): `out[l]` equals the scalar
/// call bit for bit, zero-vector guards included. Panics for
/// [`SemanticMeasure::WordMovers`], exactly like the scalar method.
pub fn similarity_vectors_batch(
    measure: SemanticMeasure,
    a: &DenseVector,
    bs: &[&DenseVector],
    out: &mut [f64],
) {
    match measure {
        SemanticMeasure::Cosine => cosine_batch(a, bs, out),
        SemanticMeasure::Euclidean => {
            euclidean_distance_batch(a, bs, out);
            let a_zero = a.is_zero();
            for (l, b) in bs.iter().enumerate() {
                out[l] = if a_zero || b.is_zero() {
                    0.0
                } else {
                    1.0 / (1.0 + out[l])
                };
            }
        }
        SemanticMeasure::WordMovers => {
            panic!("WordMovers requires token vectors; use similarity_tokens")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs() -> Vec<DenseVector> {
        vec![
            DenseVector(vec![1.0, 2.0, -3.0]),
            DenseVector(vec![0.5, -0.25, 8.0]),
            DenseVector::zeros(3),
            DenseVector(vec![1e-30, 2e30, 1.0]),
        ]
    }

    #[test]
    fn batches_are_bit_identical_to_scalar() {
        let a = DenseVector(vec![0.1, -7.0, 2.5]);
        let bs = vecs();
        let refs: Vec<&DenseVector> = bs.iter().collect();
        let mut out = [0.0f64; LANE_WIDTH];
        dot_batch(&a, &refs, &mut out);
        for (l, b) in bs.iter().enumerate() {
            assert_eq!(out[l].to_bits(), a.dot(b).to_bits(), "dot lane {l}");
        }
        cosine_batch(&a, &refs, &mut out);
        for (l, b) in bs.iter().enumerate() {
            assert_eq!(out[l].to_bits(), a.cosine(b).to_bits(), "cos lane {l}");
        }
        euclidean_distance_batch(&a, &refs, &mut out);
        for (l, b) in bs.iter().enumerate() {
            assert_eq!(
                out[l].to_bits(),
                a.euclidean_distance(b).to_bits(),
                "dist lane {l}"
            );
        }
        for m in [SemanticMeasure::Cosine, SemanticMeasure::Euclidean] {
            similarity_vectors_batch(m, &a, &refs, &mut out);
            for (l, b) in bs.iter().enumerate() {
                assert_eq!(
                    out[l].to_bits(),
                    m.similarity_vectors(&a, b).to_bits(),
                    "{} lane {l}",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn zero_probe_matches_scalar_guards() {
        let z = DenseVector::zeros(3);
        let bs = vecs();
        let refs: Vec<&DenseVector> = bs.iter().collect();
        let mut out = [0.0f64; LANE_WIDTH];
        for m in [SemanticMeasure::Cosine, SemanticMeasure::Euclidean] {
            similarity_vectors_batch(m, &z, &refs, &mut out);
            for (l, b) in bs.iter().enumerate() {
                assert_eq!(out[l].to_bits(), m.similarity_vectors(&z, b).to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = DenseVector(vec![1.0]);
        let b = DenseVector(vec![1.0, 2.0]);
        let mut out = [0.0f64; 1];
        dot_batch(&a, &[&b], &mut out);
    }
}
