//! The semantic models and measures of the paper's taxonomy (Figure 6).

use serde::{Deserialize, Serialize};

use crate::albert::AlbertLike;
use crate::dense::DenseVector;
use crate::fasttext::FastTextLike;
use crate::wmd::word_movers_similarity;

/// Which pre-trained-model stand-in encodes the texts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EmbeddingModel {
    /// fastText-like sub-word encoder (300-d).
    FastText,
    /// ALBERT-like contextual encoder (768-d).
    Albert,
}

impl EmbeddingModel {
    /// Both models.
    pub fn all() -> [EmbeddingModel; 2] {
        [EmbeddingModel::FastText, EmbeddingModel::Albert]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            EmbeddingModel::FastText => "fastText",
            EmbeddingModel::Albert => "ALBERT",
        }
    }

    /// Instantiate the encoder.
    pub fn encoder(&self) -> Encoder {
        match self {
            EmbeddingModel::FastText => Encoder::FastText(FastTextLike::default()),
            EmbeddingModel::Albert => Encoder::Albert(AlbertLike::default()),
        }
    }
}

/// A constructed encoder of either model.
#[derive(Debug, Clone)]
pub enum Encoder {
    /// fastText-like.
    FastText(FastTextLike),
    /// ALBERT-like.
    Albert(AlbertLike),
}

impl Encoder {
    /// Embed a whole text into one vector.
    pub fn encode(&self, text: &str) -> DenseVector {
        match self {
            Encoder::FastText(m) => m.encode(text),
            Encoder::Albert(m) => m.encode(text),
        }
    }

    /// Per-token vectors for transport-based measures.
    pub fn token_vectors(&self, text: &str) -> Vec<DenseVector> {
        match self {
            Encoder::FastText(m) => m.token_vectors(text),
            Encoder::Albert(m) => m.token_vectors(text),
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        match self {
            Encoder::FastText(m) => m.dim(),
            Encoder::Albert(m) => m.dim(),
        }
    }
}

/// The three semantic similarity measures of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SemanticMeasure {
    /// Cosine similarity of text embeddings.
    Cosine,
    /// Euclidean similarity: `1 / (1 + ‖a − b‖₂)`.
    Euclidean,
    /// Word Mover's similarity: `1 / (1 + RWMD)` over token vectors.
    WordMovers,
}

impl SemanticMeasure {
    /// All three measures.
    pub fn all() -> [SemanticMeasure; 3] {
        [
            SemanticMeasure::Cosine,
            SemanticMeasure::Euclidean,
            SemanticMeasure::WordMovers,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SemanticMeasure::Cosine => "Cosine",
            SemanticMeasure::Euclidean => "Euclidean",
            SemanticMeasure::WordMovers => "WordMovers",
        }
    }

    /// Whether the measure consumes per-token vectors rather than a single
    /// text embedding.
    pub fn needs_token_vectors(&self) -> bool {
        matches!(self, SemanticMeasure::WordMovers)
    }

    /// Similarity of two pre-encoded texts.
    pub fn similarity_vectors(&self, a: &DenseVector, b: &DenseVector) -> f64 {
        match self {
            SemanticMeasure::Cosine => a.cosine(b),
            SemanticMeasure::Euclidean => {
                if a.is_zero() || b.is_zero() {
                    return 0.0;
                }
                1.0 / (1.0 + a.euclidean_distance(b))
            }
            SemanticMeasure::WordMovers => {
                panic!("WordMovers requires token vectors; use similarity_tokens")
            }
        }
    }

    /// Similarity of two token-vector bags (Word Mover's only).
    pub fn similarity_tokens(&self, a: &[DenseVector], b: &[DenseVector]) -> f64 {
        match self {
            SemanticMeasure::WordMovers => word_movers_similarity(a, b),
            _ => panic!("{} operates on text embeddings", self.name()),
        }
    }

    /// End-to-end similarity of two texts under an encoder.
    pub fn similarity(&self, enc: &Encoder, a: &str, b: &str) -> f64 {
        if self.needs_token_vectors() {
            self.similarity_tokens(&enc.token_vectors(a), &enc.token_vectors(b))
        } else {
            self.similarity_vectors(&enc.encode(a), &enc.encode(b))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rosters() {
        assert_eq!(EmbeddingModel::all().len(), 2);
        assert_eq!(SemanticMeasure::all().len(), 3);
        assert_eq!(EmbeddingModel::FastText.encoder().dim(), 300);
        assert_eq!(EmbeddingModel::Albert.encoder().dim(), 768);
    }

    #[test]
    fn all_measures_bounded_and_reflexive() {
        for model in EmbeddingModel::all() {
            let enc = model.encoder();
            for m in SemanticMeasure::all() {
                let s = m.similarity(&enc, "canon eos camera", "canon eos camera");
                assert!(
                    (s - 1.0).abs() < 1e-6,
                    "{}/{} reflexive",
                    model.name(),
                    m.name()
                );
                let d = m.similarity(&enc, "canon eos camera", "acm sigmod record");
                assert!(
                    (0.0..=1.0).contains(&d),
                    "{}/{} bounded",
                    model.name(),
                    m.name()
                );
                assert!(d < 1.0, "distinct texts are not identical");
            }
        }
    }

    #[test]
    fn similar_texts_score_higher() {
        let enc = EmbeddingModel::FastText.encoder();
        for m in SemanticMeasure::all() {
            let close = m.similarity(&enc, "apple iphone 12", "apple iphone 12 pro");
            let far = m.similarity(&enc, "apple iphone 12", "restaurant thai cuisine");
            assert!(close > far, "{}: {close:.3} vs {far:.3}", m.name());
        }
    }

    #[test]
    fn empty_text_conventions() {
        let enc = EmbeddingModel::Albert.encoder();
        assert_eq!(SemanticMeasure::Euclidean.similarity(&enc, "", "text"), 0.0);
        assert_eq!(SemanticMeasure::Cosine.similarity(&enc, "", "text"), 0.0);
        assert_eq!(
            SemanticMeasure::WordMovers.similarity(&enc, "", "text"),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "token vectors")]
    fn wmd_requires_token_vectors() {
        let a = DenseVector::zeros(4);
        SemanticMeasure::WordMovers.similarity_vectors(&a, &a);
    }
}
