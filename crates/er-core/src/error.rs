//! Error type shared across the workspace's core layer.

use std::fmt;

/// Errors raised while constructing or validating core data structures.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An edge referenced a node id outside of its collection's bounds.
    NodeOutOfBounds {
        /// Which side of the bipartite graph the offending id belongs to.
        side: &'static str,
        /// The offending node id.
        id: u32,
        /// The size of that collection.
        len: u32,
    },
    /// An edge weight was not a finite number in `[0, 1]`.
    InvalidWeight(f64),
    /// A duplicate edge (same left and right endpoint) was inserted.
    DuplicateEdge {
        /// Left endpoint of the duplicated edge.
        left: u32,
        /// Right endpoint of the duplicated edge.
        right: u32,
    },
    /// The operation needs a non-empty graph.
    EmptyGraph,
    /// The operation referenced a tombstoned (deleted) node id.
    DeadNode {
        /// Which side of the bipartite graph the id belongs to.
        side: &'static str,
        /// The tombstoned node id.
        id: u32,
    },
    /// A delta carried an id other than the store's next append id.
    DeltaIdMismatch {
        /// The id the store would assign (its side's current size).
        expected: u32,
        /// The id the delta carried.
        got: u32,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NodeOutOfBounds { side, id, len } => write!(
                f,
                "node {id} out of bounds for {side} collection of size {len}"
            ),
            CoreError::InvalidWeight(w) => {
                write!(f, "edge weight {w} is not a finite value in [0, 1]")
            }
            CoreError::DuplicateEdge { left, right } => {
                write!(f, "duplicate edge ({left}, {right})")
            }
            CoreError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            CoreError::DeadNode { side, id } => {
                write!(f, "{side} node {id} is tombstoned (deleted)")
            }
            CoreError::DeltaIdMismatch { expected, got } => write!(
                f,
                "delta id {got} does not match the next append id {expected}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias used across the core layer.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::NodeOutOfBounds {
            side: "left",
            id: 7,
            len: 3,
        };
        assert!(e.to_string().contains("node 7"));
        assert!(e.to_string().contains("size 3"));
        assert!(CoreError::InvalidWeight(2.0).to_string().contains("2"));
        assert!(CoreError::DuplicateEdge { left: 1, right: 2 }
            .to_string()
            .contains("(1, 2)"));
        assert!(CoreError::EmptyGraph.to_string().contains("non-empty"));
    }
}
