//! The output of a bipartite graph matching algorithm.
//!
//! For Clean-Clean ER the output clustering consists of 2-node clusters (one
//! entity from each collection) plus singletons. Singletons never influence
//! pair-level precision/recall, so [`Matching`] stores only the matched
//! pairs; the unique-mapping constraint (each entity appears in at most one
//! pair) is validated on construction in debug builds and checkable
//! explicitly via [`Matching::is_unique_mapping`].

use serde::{Deserialize, Serialize};

use crate::graph::SimilarityGraph;
use crate::hash::FxHashSet;

/// A set of matched (left, right) entity pairs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Matching {
    pairs: Vec<(u32, u32)>,
}

impl Matching {
    /// Create a matching from pairs.
    ///
    /// Debug builds assert the unique-mapping constraint; release builds
    /// accept the pairs as-is (the algorithms guarantee it by construction).
    pub fn new(mut pairs: Vec<(u32, u32)>) -> Self {
        pairs.sort_unstable();
        let m = Matching { pairs };
        debug_assert!(m.is_unique_mapping(), "matching violates unique mapping");
        m
    }

    /// The empty matching.
    pub fn empty() -> Self {
        Matching { pairs: Vec::new() }
    }

    /// Matched pairs, sorted by (left, right).
    #[inline]
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Number of matched pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pairs were matched.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Whether the pairs satisfy the CCER unique-mapping constraint:
    /// each left id and each right id appears at most once.
    pub fn is_unique_mapping(&self) -> bool {
        let mut lefts = FxHashSet::default();
        let mut rights = FxHashSet::default();
        for &(l, r) in &self.pairs {
            if !lefts.insert(l) || !rights.insert(r) {
                return false;
            }
        }
        true
    }

    /// Whether a specific pair is in the matching (binary search).
    pub fn contains(&self, left: u32, right: u32) -> bool {
        self.pairs.binary_search(&(left, right)).is_ok()
    }

    /// Sum of graph weights over the matched pairs.
    ///
    /// Pairs that are not edges of `g` contribute 0 (this can happen for
    /// assignment-style algorithms before their final threshold filter, and
    /// deliberately scores them as worthless).
    pub fn total_weight(&self, g: &SimilarityGraph) -> f64 {
        // Build a hash of the graph edges once; O(m + k).
        let mut weights: crate::hash::FxHashMap<(u32, u32), f64> =
            crate::hash::FxHashMap::default();
        weights.reserve(g.n_edges());
        for e in g.edges() {
            weights.insert((e.left, e.right), e.weight);
        }
        self.pairs.iter().filter_map(|p| weights.get(p)).sum()
    }

    /// Iterate over the pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.pairs.iter().copied()
    }
}

impl FromIterator<(u32, u32)> for Matching {
    fn from_iter<I: IntoIterator<Item = (u32, u32)>>(iter: I) -> Self {
        Matching::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn pairs_are_sorted_and_queryable() {
        let m = Matching::new(vec![(2, 1), (0, 3), (1, 0)]);
        assert_eq!(m.pairs(), &[(0, 3), (1, 0), (2, 1)]);
        assert!(m.contains(1, 0));
        assert!(!m.contains(1, 1));
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn unique_mapping_detects_violations() {
        let ok = Matching {
            pairs: vec![(0, 0), (1, 1)],
        };
        assert!(ok.is_unique_mapping());
        let dup_left = Matching {
            pairs: vec![(0, 0), (0, 1)],
        };
        assert!(!dup_left.is_unique_mapping());
        let dup_right = Matching {
            pairs: vec![(0, 0), (1, 0)],
        };
        assert!(!dup_right.is_unique_mapping());
    }

    #[test]
    #[should_panic(expected = "unique mapping")]
    #[cfg(debug_assertions)]
    fn constructor_asserts_in_debug() {
        let _ = Matching::new(vec![(0, 0), (0, 1)]);
    }

    #[test]
    fn total_weight_sums_graph_edges() {
        let mut b = GraphBuilder::new(2, 2);
        b.add_edge(0, 0, 0.9).unwrap();
        b.add_edge(1, 1, 0.4).unwrap();
        let g = b.build();
        let m = Matching::new(vec![(0, 0), (1, 1)]);
        assert!((m.total_weight(&g) - 1.3).abs() < 1e-12);
        // A pair without a graph edge contributes nothing.
        let m2 = Matching::new(vec![(0, 1)]);
        assert_eq!(m2.total_weight(&g), 0.0);
    }

    #[test]
    fn from_iterator_collects() {
        let m: Matching = vec![(3u32, 3u32), (1, 1)].into_iter().collect();
        assert_eq!(m.pairs(), &[(1, 1), (3, 3)]);
    }

    #[test]
    fn empty_matching() {
        let m = Matching::empty();
        assert!(m.is_empty());
        assert!(m.is_unique_mapping());
    }
}
